"""RouterInfo: the netDb record describing a single I2P router.

A RouterInfo is the unit of observation for the entire measurement study.
The paper collects, per peer and per day, exactly the fields modelled here:

* the router hash (permanent identity),
* the published addresses (IPv4/IPv6, port, transport style),
* the capacity flags (bandwidth tier ``K``–``X``, floodfill ``f``,
  reachability ``R``/``U``),
* introducer entries for firewalled peers (Section 5.1), and
* the publication timestamp.

Hidden peers publish a RouterInfo *without* any address and *without*
introducers; firewalled peers publish no direct address but do list
introducers.  The classification logic in
:mod:`repro.core.population` relies on this distinction, exactly as the
paper does in Section 5.1.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .identity import RouterIdentity

__all__ = [
    "BandwidthTier",
    "TransportStyle",
    "RouterAddress",
    "Introducer",
    "RouterInfo",
    "CapacityFlags",
    "parse_capacity_string",
]


class BandwidthTier(str, enum.Enum):
    """Shared-bandwidth tiers, as published in the capacity field.

    The ranges follow Section 5.3.1 of the paper:

    ========  =====================
    letter    shared bandwidth
    ========  =====================
    ``K``     < 12 KB/s
    ``L``     12–48 KB/s (default)
    ``M``     48–64 KB/s
    ``N``     64–128 KB/s
    ``O``     128–256 KB/s
    ``P``     256–2000 KB/s
    ``X``     > 2000 KB/s
    ========  =====================
    """

    K = "K"
    L = "L"
    M = "M"
    N = "N"
    O = "O"  # noqa: E741 - letter mandated by the I2P spec
    P = "P"
    X = "X"

    @property
    def min_kbps(self) -> float:
        return _TIER_RANGES[self][0]

    @property
    def max_kbps(self) -> float:
        return _TIER_RANGES[self][1]

    @classmethod
    def for_bandwidth(cls, kbps: float) -> "BandwidthTier":
        """Return the tier a router advertising ``kbps`` KB/s belongs to."""
        if kbps < 0:
            raise ValueError("bandwidth must be non-negative")
        for tier in (cls.K, cls.L, cls.M, cls.N, cls.O, cls.P):
            if kbps < _TIER_RANGES[tier][1]:
                return tier
        return cls.X

    @classmethod
    def ordered(cls) -> Tuple["BandwidthTier", ...]:
        """Tiers from slowest to fastest."""
        return (cls.K, cls.L, cls.M, cls.N, cls.O, cls.P, cls.X)


_TIER_RANGES: Dict[BandwidthTier, Tuple[float, float]] = {
    BandwidthTier.K: (0.0, 12.0),
    BandwidthTier.L: (12.0, 48.0),
    BandwidthTier.M: (48.0, 64.0),
    BandwidthTier.N: (64.0, 128.0),
    BandwidthTier.O: (128.0, 256.0),
    BandwidthTier.P: (256.0, 2000.0),
    BandwidthTier.X: (2000.0, float("inf")),
}

#: Minimum shared bandwidth (KB/s) for a router to qualify for automatic
#: floodfill promotion (Section 5.3.1: "a peer needs to have at least an N
#: flag in order to become a floodfill router automatically").
FLOODFILL_MIN_KBPS = 128.0

#: Tiers that qualify a router for automatic floodfill promotion.
QUALIFIED_FLOODFILL_TIERS = (
    BandwidthTier.N,
    BandwidthTier.O,
    BandwidthTier.P,
    BandwidthTier.X,
)


class TransportStyle(str, enum.Enum):
    """Transport protocols advertised in RouterAddress entries."""

    NTCP = "NTCP"
    NTCP2 = "NTCP2"
    SSU = "SSU"


@dataclass(frozen=True)
class Introducer:
    """An introduction point for a firewalled router (SSU introducers).

    Section 5.1: *"A firewalled peer has information about its introducers
    embedded in the RouterInfo, while a hidden peer does not."*
    """

    introducer_hash: bytes
    ip: str
    port: int
    tag: int

    def __post_init__(self) -> None:
        if len(self.introducer_hash) != 32:
            raise ValueError("introducer hash must be 32 bytes")
        if not (0 < self.port < 65536):
            raise ValueError("port must be in (0, 65536)")
        if self.tag < 0:
            raise ValueError("introduction tag must be non-negative")


@dataclass(frozen=True)
class RouterAddress:
    """A single published transport address.

    ``host`` is ``None`` for firewalled routers: the address block is still
    present (it carries the introducer list) but no direct IP is exposed.
    """

    style: TransportStyle
    host: Optional[str]
    port: Optional[int]
    introducers: Tuple[Introducer, ...] = ()
    cost: int = 10

    def __post_init__(self) -> None:
        if self.port is not None and not (0 < self.port < 65536):
            raise ValueError("port must be in (0, 65536)")
        if self.host is None and self.port is not None and not self.introducers:
            # A port without a host and without introducers carries no
            # contact information; normalise it away.
            object.__setattr__(self, "port", None)

    @property
    def is_direct(self) -> bool:
        """Whether the address exposes a publicly reachable endpoint."""
        return self.host is not None and self.port is not None

    @property
    def is_ipv6(self) -> bool:
        return self.host is not None and ":" in self.host


@dataclass(frozen=True)
class CapacityFlags:
    """The parsed capacity field of a RouterInfo.

    The raw capacity string concatenates single-letter flags, e.g. ``OfR``
    for a reachable floodfill router with 128–256 KB/s shared bandwidth.
    Since version 0.9.20, ``P``/``X`` routers also publish ``O`` for
    backwards compatibility (Section 5.3.1), so ``tiers`` may contain more
    than one letter.
    """

    tiers: Tuple[BandwidthTier, ...]
    floodfill: bool
    reachable: bool
    unreachable: bool

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("capacity flags must include a bandwidth tier")
        if self.reachable and self.unreachable:
            raise ValueError("a router cannot be both reachable and unreachable")

    @property
    def primary_tier(self) -> BandwidthTier:
        """The highest advertised tier (the router's actual bandwidth class)."""
        order = {tier: i for i, tier in enumerate(BandwidthTier.ordered())}
        return max(self.tiers, key=lambda t: order[t])

    def as_string(self) -> str:
        """Render the canonical capacity string (e.g. ``"OfR"`` or ``"POfR"``)."""
        parts = [tier.value for tier in self.tiers]
        if self.floodfill:
            parts.append("f")
        if self.reachable:
            parts.append("R")
        elif self.unreachable:
            parts.append("U")
        return "".join(parts)


def parse_capacity_string(caps: str) -> CapacityFlags:
    """Parse a raw capacity string into :class:`CapacityFlags`.

    Unknown characters are ignored, matching the lenient behaviour of the
    Java router.  Raises :class:`ValueError` when no bandwidth tier is
    present.
    """
    tiers: List[BandwidthTier] = []
    floodfill = False
    reachable = False
    unreachable = False
    valid_tiers = {t.value for t in BandwidthTier}
    for char in caps:
        if char in valid_tiers:
            tier = BandwidthTier(char)
            if tier not in tiers:
                tiers.append(tier)
        elif char == "f":
            floodfill = True
        elif char == "R":
            reachable = True
        elif char == "U":
            unreachable = True
    if not tiers:
        raise ValueError(f"capacity string {caps!r} has no bandwidth tier")
    return CapacityFlags(
        tiers=tuple(tiers),
        floodfill=floodfill,
        reachable=reachable,
        unreachable=unreachable,
    )


@dataclass(frozen=True)
class RouterInfo:
    """A published netDb record for one router.

    Parameters
    ----------
    identity:
        The router's long-term identity.
    addresses:
        Published transport addresses.  Empty for hidden routers.
    capacity:
        The parsed capacity flags.
    published_at:
        Publication time in seconds of simulation time (or epoch seconds
        when used against real data).
    options:
        Free-form key/value options (netDb version, stats, ...).
    """

    identity: RouterIdentity
    addresses: Tuple[RouterAddress, ...]
    capacity: CapacityFlags
    published_at: float
    options: Tuple[Tuple[str, str], ...] = ()

    # ------------------------------------------------------------------ #
    # Identity helpers
    # ------------------------------------------------------------------ #
    @property
    def hash(self) -> bytes:
        return self.identity.hash

    @property
    def hash_b64(self) -> str:
        return self.identity.hash_b64

    # ------------------------------------------------------------------ #
    # Address helpers (used heavily by the population analysis)
    # ------------------------------------------------------------------ #
    @property
    def direct_addresses(self) -> Tuple[RouterAddress, ...]:
        return tuple(addr for addr in self.addresses if addr.is_direct)

    @property
    def ip_addresses(self) -> Tuple[str, ...]:
        """All distinct public IPs published in this RouterInfo."""
        seen: List[str] = []
        for addr in self.direct_addresses:
            if addr.host not in seen:
                seen.append(addr.host)  # type: ignore[arg-type]
        return tuple(seen)

    @property
    def ipv4_addresses(self) -> Tuple[str, ...]:
        return tuple(ip for ip in self.ip_addresses if ":" not in ip)

    @property
    def ipv6_addresses(self) -> Tuple[str, ...]:
        return tuple(ip for ip in self.ip_addresses if ":" in ip)

    @property
    def introducers(self) -> Tuple[Introducer, ...]:
        result: List[Introducer] = []
        for addr in self.addresses:
            result.extend(addr.introducers)
        return tuple(result)

    # ------------------------------------------------------------------ #
    # Classification (Section 5.1)
    # ------------------------------------------------------------------ #
    @property
    def has_valid_ip(self) -> bool:
        """Whether the RouterInfo exposes at least one public IP address."""
        return len(self.ip_addresses) > 0

    @property
    def is_firewalled(self) -> bool:
        """Unknown-IP peer that publishes introducers (behind NAT/firewall)."""
        return not self.has_valid_ip and len(self.introducers) > 0

    @property
    def is_hidden(self) -> bool:
        """Unknown-IP peer with no introducers (hidden mode)."""
        return not self.has_valid_ip and len(self.introducers) == 0

    @property
    def is_floodfill(self) -> bool:
        return self.capacity.floodfill

    @property
    def is_reachable(self) -> bool:
        return self.capacity.reachable

    @property
    def bandwidth_tier(self) -> BandwidthTier:
        return self.capacity.primary_tier

    @property
    def option_dict(self) -> Dict[str, str]:
        return dict(self.options)

    # ------------------------------------------------------------------ #
    # Mutation helpers (RouterInfos are republished on change)
    # ------------------------------------------------------------------ #
    def republished(self, published_at: float, **changes) -> "RouterInfo":
        """Return a copy with a new publication time and optional changes.

        The no-``changes`` form is the message plane's per-round re-stamp
        (one per router per publish round), so it bypasses
        :func:`dataclasses.replace` field introspection with a shallow
        copy — safe because the class has no ``__post_init__``.
        """
        if not changes:
            clone = copy.copy(self)
            object.__setattr__(clone, "published_at", published_at)
            return clone
        return replace(self, published_at=published_at, **changes)

    def with_addresses(
        self, addresses: Sequence[RouterAddress], published_at: float
    ) -> "RouterInfo":
        return replace(self, addresses=tuple(addresses), published_at=published_at)

    def summary(self) -> str:
        """One-line human-readable summary used by example scripts."""
        if self.has_valid_ip:
            location = ",".join(self.ip_addresses)
        elif self.is_firewalled:
            location = "firewalled"
        else:
            location = "hidden"
        return (
            f"{self.identity.short_hash} caps={self.capacity.as_string()} "
            f"addr={location} published={self.published_at:.0f}"
        )
