"""Daily-rotating routing keys for netDb entry placement.

Section 2.1.2 of the paper: *"these keys are calculated by a SHA256 hash
function of a 32-byte binary search key which is concatenated with a UTC
date string.  As a result, these hash values change every day at UTC
00:00."*

Floodfill selection for storing and looking up a netDb entry therefore
depends on the calendar day.  The simulator uses simulation-time seconds
measured from an epoch that starts at UTC midnight, so the date-string
derivation below is an exact analogue of the real algorithm.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterable, List, Sequence, Tuple

from .identity import sha256
from .kademlia import xor_distance

__all__ = [
    "SECONDS_PER_DAY",
    "date_string_for_time",
    "routing_key",
    "select_closest",
]

SECONDS_PER_DAY = 86_400.0

#: Simulation epoch used to render UTC date strings.  The value matches the
#: start of the paper's main measurement campaign (1 February 2018).
SIMULATION_EPOCH = _dt.datetime(2018, 2, 1, tzinfo=_dt.timezone.utc)


def date_string_for_time(sim_time: float) -> str:
    """Return the UTC date string (``YYYYMMDD``) for a simulation time.

    ``sim_time`` is in seconds since :data:`SIMULATION_EPOCH`.  Negative
    times are allowed (they simply map to earlier dates), which keeps
    property-based tests simple.
    """
    moment = SIMULATION_EPOCH + _dt.timedelta(seconds=sim_time)
    return moment.strftime("%Y%m%d")


def routing_key(search_key: bytes, sim_time: float) -> bytes:
    """Compute the daily routing key for a 32-byte search key.

    The routing key is ``SHA256(search_key || date_string)``; all XOR
    distance comparisons between netDb entries and floodfill routers use
    this derived key rather than the raw hash.
    """
    if len(search_key) != 32:
        raise ValueError("search key must be 32 bytes")
    return sha256(search_key + date_string_for_time(sim_time).encode("ascii"))


def select_closest(
    target_routing_key: bytes,
    candidate_hashes: Iterable[bytes],
    count: int,
    sim_time: float,
) -> List[bytes]:
    """Select the ``count`` candidates whose *routing keys* are closest.

    Each candidate hash is first converted to its daily routing key, and
    candidates are ranked by XOR distance to ``target_routing_key``.  Ties
    (which require identical distances, i.e. identical keys) are broken by
    the raw hash to keep the function deterministic.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    ranked: List[Tuple[int, bytes]] = []
    for candidate in candidate_hashes:
        candidate_key = routing_key(candidate, sim_time)
        ranked.append((xor_distance(target_routing_key, candidate_key), candidate))
    ranked.sort(key=lambda item: (item[0], item[1]))
    return [candidate for _, candidate in ranked[:count]]


def keys_rotate_between(time_a: float, time_b: float) -> bool:
    """Whether the routing keyspace rotates between two simulation times."""
    return date_string_for_time(time_a) != date_string_for_time(time_b)
