"""Daily-rotating routing keys for netDb entry placement.

Section 2.1.2 of the paper: *"these keys are calculated by a SHA256 hash
function of a 32-byte binary search key which is concatenated with a UTC
date string.  As a result, these hash values change every day at UTC
00:00."*

Floodfill selection for storing and looking up a netDb entry therefore
depends on the calendar day.  The simulator uses simulation-time seconds
measured from an epoch that starts at UTC midnight, so the date-string
derivation below is an exact analogue of the real algorithm.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Dict, Iterable, List, Sequence, Tuple

from .identity import sha256
from .kademlia import pack_keys, xor_distance

__all__ = [
    "SECONDS_PER_DAY",
    "date_string_for_time",
    "routing_key",
    "routing_keys_packed",
    "select_closest",
    "clear_routing_key_cache",
]

SECONDS_PER_DAY = 86_400.0

#: Simulation epoch used to render UTC date strings.  The value matches the
#: start of the paper's main measurement campaign (1 February 2018).
SIMULATION_EPOCH = _dt.datetime(2018, 2, 1, tzinfo=_dt.timezone.utc)

#: Memoised ``day index -> YYYYMMDD`` strings.  The simulator asks for the
#: date string once per candidate per lookup, so rendering it through
#: ``strftime`` every time dominated `select_closest` profiles.
_DATE_BY_DAY: Dict[int, str] = {}

#: Memoised ``(search_key, date_string) -> routing key``.  Keys rotate at
#: UTC midnight, so only the most recent date strings stay useful; the
#: cache evicts older dates whenever a new one shows up (keeping two covers
#: code that compares "today" against "yesterday/tomorrow").
_KEY_CACHE: Dict[Tuple[bytes, str], bytes] = {}
_KEY_CACHE_DATES: List[str] = []
_KEY_CACHE_MAX_DATES = 2

#: Hard cap on cached keys.  The cache is process-global and date eviction
#: alone cannot bound it (many short-lived networks sharing the same
#: simulated dates would accumulate forever), so it is flushed wholesale
#: when it grows past this — far above any single network's working set.
_KEY_CACHE_MAX_ENTRIES = 1 << 18


def clear_routing_key_cache() -> None:
    """Drop all memoised date strings and routing keys (for tests)."""
    _DATE_BY_DAY.clear()
    _KEY_CACHE.clear()
    _KEY_CACHE_DATES.clear()


def date_string_for_time(sim_time: float) -> str:
    """Return the UTC date string (``YYYYMMDD``) for a simulation time.

    ``sim_time`` is in seconds since :data:`SIMULATION_EPOCH`.  Negative
    times are allowed (they simply map to earlier dates), which keeps
    property-based tests simple.  Results are memoised per simulation day
    (the epoch is midnight-aligned, so the day index determines the date).
    """
    day = math.floor(sim_time / SECONDS_PER_DAY)
    cached = _DATE_BY_DAY.get(day)
    if cached is None:
        moment = SIMULATION_EPOCH + _dt.timedelta(days=day)
        cached = moment.strftime("%Y%m%d")
        _DATE_BY_DAY[day] = cached
    return cached


def _evict_stale_dates(date_string: str) -> None:
    if date_string in _KEY_CACHE_DATES:
        return
    _KEY_CACHE_DATES.append(date_string)
    while len(_KEY_CACHE_DATES) > _KEY_CACHE_MAX_DATES:
        stale = _KEY_CACHE_DATES.pop(0)
        for cache_key in [k for k in _KEY_CACHE if k[1] == stale]:
            del _KEY_CACHE[cache_key]


def routing_key(search_key: bytes, sim_time: float) -> bytes:
    """Compute the daily routing key for a 32-byte search key.

    The routing key is ``SHA256(search_key || date_string)``; all XOR
    distance comparisons between netDb entries and floodfill routers use
    this derived key rather than the raw hash.  Keys are memoised per
    ``(search_key, date)`` — `select_closest` and `publish_all` hash the
    same candidate set over and over within a day, so the cache turns the
    per-candidate SHA256 into a dict hit.
    """
    if len(search_key) != 32:
        raise ValueError("search key must be 32 bytes")
    date_string = date_string_for_time(sim_time)
    cache_key = (search_key, date_string)
    cached = _KEY_CACHE.get(cache_key)
    if cached is None:
        _evict_stale_dates(date_string)
        if len(_KEY_CACHE) >= _KEY_CACHE_MAX_ENTRIES:
            _KEY_CACHE.clear()
        cached = sha256(search_key + date_string.encode("ascii"))
        _KEY_CACHE[cache_key] = cached
    return cached


def select_closest(
    target_routing_key: bytes,
    candidate_hashes: Iterable[bytes],
    count: int,
    sim_time: float,
) -> List[bytes]:
    """Select the ``count`` candidates whose *routing keys* are closest.

    Each candidate hash is first converted to its daily routing key, and
    candidates are ranked by XOR distance to ``target_routing_key``.  Ties
    (which require identical distances, i.e. identical keys) are broken by
    the raw hash to keep the function deterministic.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    ranked: List[Tuple[int, bytes]] = []
    for candidate in candidate_hashes:
        candidate_key = routing_key(candidate, sim_time)
        ranked.append((xor_distance(target_routing_key, candidate_key), candidate))
    ranked.sort(key=lambda item: (item[0], item[1]))
    return [candidate for _, candidate in ranked[:count]]


def routing_keys_packed(search_keys: Sequence[bytes], sim_time: float):
    """Daily routing keys for ``search_keys``, packed for vectorised XOR.

    Returns an ``(n, 4)`` uint64 word matrix (see
    :func:`repro.netdb.kademlia.pack_keys`); row ``i`` is the routing key
    of ``search_keys[i]``.  Keys come from the same memoised cache as
    :func:`routing_key`, so repeated packing within a simulated day costs
    one dict hit per key.
    """
    return pack_keys([routing_key(key, sim_time) for key in search_keys])


def keys_rotate_between(time_a: float, time_b: float) -> bool:
    """Whether the routing keyspace rotates between two simulation times."""
    return date_string_for_time(time_a) != date_string_for_time(time_b)
