"""LeaseSets: the netDb records describing hidden-service destinations.

A LeaseSet tells a client which inbound-tunnel gateways can be used to reach
a destination (Section 2.1.2: *"Bob's LeaseSet tells Alice the contact
information of the tunnel gateway of Bob's inbound tunnel"*).  The
measurement study itself collects RouterInfos rather than LeaseSets, but the
usability experiment (Section 6.2.3) fetches eepsites, which requires
LeaseSet lookups — so the substrate models them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .identity import RouterIdentity, sha256, to_i2p_base64

__all__ = ["Lease", "LeaseSet", "Destination", "LEASE_DURATION"]

#: Lease lifetime in seconds.  Real I2P leases last ten minutes, matching
#: the tunnel rotation interval.
LEASE_DURATION = 600.0


@dataclass(frozen=True)
class Destination:
    """A hidden-service destination (e.g. an eepsite).

    Destinations have their own identity, independent from the identity of
    the router hosting them.
    """

    identity: RouterIdentity
    name: str = ""

    @property
    def hash(self) -> bytes:
        return self.identity.hash

    @property
    def b32_address(self) -> str:
        """A short, deterministic ``.b32.i2p``-style address."""
        digest = sha256(self.identity.hash)
        return to_i2p_base64(digest)[:52].lower().replace("=", "") + ".b32.i2p"


@dataclass(frozen=True)
class Lease:
    """A single lease: one inbound-tunnel gateway valid until ``expires_at``."""

    gateway_hash: bytes
    tunnel_id: int
    expires_at: float

    def __post_init__(self) -> None:
        if len(self.gateway_hash) != 32:
            raise ValueError("gateway hash must be 32 bytes")
        if self.tunnel_id < 0:
            raise ValueError("tunnel id must be non-negative")

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass(frozen=True)
class LeaseSet:
    """The set of leases published for one destination."""

    destination: Destination
    leases: Tuple[Lease, ...]
    published_at: float

    def __post_init__(self) -> None:
        if not self.leases:
            raise ValueError("a LeaseSet must contain at least one lease")

    @property
    def hash(self) -> bytes:
        return self.destination.hash

    @property
    def expires_at(self) -> float:
        """A LeaseSet expires when its last lease expires."""
        return max(lease.expires_at for lease in self.leases)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def active_leases(self, now: float) -> Tuple[Lease, ...]:
        return tuple(lease for lease in self.leases if not lease.is_expired(now))

    def gateway_hashes(self, now: float = float("-inf")) -> Tuple[bytes, ...]:
        """Gateway router hashes of all (optionally still-active) leases."""
        if now == float("-inf"):
            return tuple(lease.gateway_hash for lease in self.leases)
        return tuple(lease.gateway_hash for lease in self.active_leases(now))
