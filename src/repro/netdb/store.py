"""Local netDb store: the per-router database of RouterInfos and LeaseSets.

The store models the on-disk ``netDb`` directory that the paper's
monitoring routers snapshot hourly (Section 4.3): *"As RouterInfos are
written to disk by design so that they are available after a restart, we
keep track of the netDb directory where these records are stored."*

Expiry semantics follow the paper:

* floodfill routers expire locally stored RouterInfos after one hour
  (Section 4.3), while non-floodfill routers keep them much longer;
* LeaseSets expire with their last lease (ten minutes);
* the RouterInfo ``expiration`` field itself is unused by the real router,
  so presence of a record only indicates the peer existed at publication
  time — exactly the caveat the paper raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .leaseset import LeaseSet
from .routerinfo import RouterInfo

__all__ = [
    "FLOODFILL_ROUTERINFO_EXPIRY",
    "ROUTERINFO_EXPIRY",
    "NetDbStore",
    "StoreStats",
]

#: RouterInfo expiry applied by floodfill routers (one hour, Section 4.3).
FLOODFILL_ROUTERINFO_EXPIRY = 3_600.0

#: RouterInfo expiry applied by regular routers.  The Java router keeps
#: RouterInfos for many hours; the daily netDb cleanup performed by the
#: measurement pipeline makes the precise value unimportant, but it must be
#: much larger than the floodfill expiry.
ROUTERINFO_EXPIRY = 27 * 3_600.0


@dataclass
class StoreStats:
    """Counters describing store activity, useful for tests and reporting."""

    stores_accepted: int = 0
    stores_refreshed: int = 0
    stores_rejected_stale: int = 0
    expirations: int = 0
    leaseset_stores: int = 0
    leaseset_expirations: int = 0
    #: Store messages addressed to this router that the fault plane
    #: dropped in flight (the write never reached the store).
    stores_dropped: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "stores_accepted": self.stores_accepted,
            "stores_refreshed": self.stores_refreshed,
            "stores_rejected_stale": self.stores_rejected_stale,
            "expirations": self.expirations,
            "leaseset_stores": self.leaseset_stores,
            "leaseset_expirations": self.leaseset_expirations,
            "stores_dropped": self.stores_dropped,
        }


class NetDbStore:
    """The netDb of a single router.

    Parameters
    ----------
    floodfill:
        Whether the owning router runs in floodfill mode; controls the
        RouterInfo expiry window.
    routerinfo_expiry / leaseset_grace:
        Overrides for expiry windows, mostly useful in tests.
    """

    def __init__(
        self,
        floodfill: bool = False,
        routerinfo_expiry: Optional[float] = None,
        leaseset_grace: float = 0.0,
    ) -> None:
        self.floodfill = floodfill
        if routerinfo_expiry is not None:
            self._routerinfo_expiry = routerinfo_expiry
        else:
            self._routerinfo_expiry = (
                FLOODFILL_ROUTERINFO_EXPIRY if floodfill else ROUTERINFO_EXPIRY
            )
        self._leaseset_grace = leaseset_grace
        self._routerinfos: Dict[bytes, RouterInfo] = {}
        self._leasesets: Dict[bytes, LeaseSet] = {}
        self.stats = StoreStats()
        #: Lower bound on the oldest stored publication time.  Lets
        #: :meth:`expire` skip the full scan when nothing can be stale —
        #: the dominant case inside convergence rounds, where every entry
        #: was published within the last simulated hour.  Removals leave
        #: the bound conservatively low; only a real expiry scan tightens
        #: it again.
        self._min_published = float("inf")
        #: Upper bound on the newest stored publication time (monotone —
        #: removals never lower it).  The batched message plane's replay
        #: fast path uses it to prove a whole publish round is strictly
        #: fresher than anything any store holds.
        self._max_published = float("-inf")
        #: Number of full expiry scans actually performed (perf tests
        #: assert the skip path holds during steady-state rounds).
        self.expiry_scan_passes = 0
        #: Bumped whenever entries are *removed* (expiry / remove / clear).
        #: Insertion order of surviving keys only changes on removal, so
        #: caches of the store's leading key prefix key on this.
        self.order_epoch = 0

    # ------------------------------------------------------------------ #
    # RouterInfo handling
    # ------------------------------------------------------------------ #
    @property
    def routerinfo_expiry(self) -> float:
        return self._routerinfo_expiry

    def store_routerinfo(self, info: RouterInfo) -> bool:
        """Store ``info`` unless a newer record for the same hash exists.

        Returns ``True`` when the store's view changed (new entry or newer
        publication), which is the condition under which a floodfill router
        floods the entry onward (Section 4.2).
        """
        router_hash = info.hash
        existing = self._routerinfos.get(router_hash)
        if existing is None:
            self._routerinfos[router_hash] = info
            self.stats.stores_accepted += 1
            if info.published_at < self._min_published:
                self._min_published = info.published_at
            if info.published_at > self._max_published:
                self._max_published = info.published_at
            return True
        if info.published_at > existing.published_at:
            self._routerinfos[router_hash] = info
            self.stats.stores_refreshed += 1
            if info.published_at < self._min_published:
                self._min_published = info.published_at
            if info.published_at > self._max_published:
                self._max_published = info.published_at
            return True
        self.stats.stores_rejected_stale += 1
        return False

    def store_routerinfos_batch(self, infos: Iterable[RouterInfo]) -> None:
        """Apply a queue of store messages in delivery order.

        Semantically identical to calling :meth:`store_routerinfo` per
        entry; the loop is inlined with local bindings because the batched
        message plane funnels every store message of a round through here.
        """
        routerinfos = self._routerinfos
        get = routerinfos.get
        accepted = refreshed = stale = 0
        min_published = self._min_published
        max_published = self._max_published
        for info in infos:
            router_hash = info.identity._hash
            existing = get(router_hash)
            if existing is None:
                routerinfos[router_hash] = info
                accepted += 1
                if info.published_at < min_published:
                    min_published = info.published_at
                if info.published_at > max_published:
                    max_published = info.published_at
            elif info.published_at > existing.published_at:
                routerinfos[router_hash] = info
                refreshed += 1
                if info.published_at < min_published:
                    min_published = info.published_at
                if info.published_at > max_published:
                    max_published = info.published_at
            else:
                stale += 1
        stats = self.stats
        stats.stores_accepted += accepted
        stats.stores_refreshed += refreshed
        stats.stores_rejected_stale += stale
        self._min_published = min_published
        self._max_published = max_published

    def get_routerinfo(self, router_hash: bytes) -> Optional[RouterInfo]:
        return self._routerinfos.get(router_hash)

    def published_at_of(self, router_hash: bytes) -> Optional[float]:
        """Publication time of the stored record for ``router_hash``, if any."""
        info = self._routerinfos.get(router_hash)
        return None if info is None else info.published_at

    def __contains__(self, router_hash: bytes) -> bool:
        return router_hash in self._routerinfos

    def __len__(self) -> int:
        return len(self._routerinfos)

    def routerinfos(self) -> List[RouterInfo]:
        """All currently stored RouterInfos (a copy)."""
        return list(self._routerinfos.values())

    def router_hashes(self) -> List[bytes]:
        return list(self._routerinfos.keys())

    def iter_router_hashes(self) -> Iterator[bytes]:
        """Iterate stored router hashes without copying the key set."""
        return iter(self._routerinfos.keys())

    def router_hashes_view(self):
        """Live, set-like view of the stored router hashes (no copy)."""
        return self._routerinfos.keys()

    def iter_routerinfos(self) -> Iterator[RouterInfo]:
        """Iterate stored RouterInfos without copying the value list.

        Callers must not mutate the store while iterating (none of the
        netDb handlers do — exploration replies only read).
        """
        return iter(self._routerinfos.values())

    def remove_routerinfo(self, router_hash: bytes) -> bool:
        if router_hash in self._routerinfos:
            del self._routerinfos[router_hash]
            self.order_epoch += 1
            return True
        return False

    def expire(self, now: float) -> int:
        """Expire stale RouterInfos and LeaseSets; return how many were removed."""
        removed = 0
        cutoff = now - self._routerinfo_expiry
        if self._routerinfos and self._min_published < cutoff:
            self.expiry_scan_passes += 1
            min_published = float("inf")
            for router_hash, info in list(self._routerinfos.items()):
                if info.published_at < cutoff:
                    del self._routerinfos[router_hash]
                    removed += 1
                elif info.published_at < min_published:
                    min_published = info.published_at
            self._min_published = min_published
            if removed:
                self.order_epoch += 1
        self.stats.expirations += removed

        leaseset_removed = 0
        if self._leasesets:
            for dest_hash, leaseset in list(self._leasesets.items()):
                if leaseset.is_expired(now - self._leaseset_grace):
                    del self._leasesets[dest_hash]
                    leaseset_removed += 1
        self.stats.leaseset_expirations += leaseset_removed
        return removed + leaseset_removed

    def clear_routerinfos(self) -> int:
        """Wipe all RouterInfos (the measurement pipeline's daily cleanup)."""
        count = len(self._routerinfos)
        self._routerinfos.clear()
        self._min_published = float("inf")
        if count:
            self.order_epoch += 1
        return count

    # ------------------------------------------------------------------ #
    # LeaseSet handling
    # ------------------------------------------------------------------ #
    def store_leaseset(self, leaseset: LeaseSet) -> bool:
        existing = self._leasesets.get(leaseset.hash)
        if existing is not None and existing.published_at >= leaseset.published_at:
            return False
        self._leasesets[leaseset.hash] = leaseset
        self.stats.leaseset_stores += 1
        return True

    def get_leaseset(self, destination_hash: bytes) -> Optional[LeaseSet]:
        return self._leasesets.get(destination_hash)

    def leasesets(self) -> List[LeaseSet]:
        return list(self._leasesets.values())

    def leaseset_count(self) -> int:
        return len(self._leasesets)

    # ------------------------------------------------------------------ #
    # Snapshots (the unit of observation for the measurement pipeline)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Tuple[RouterInfo, ...]:
        """An immutable snapshot of the RouterInfos currently on disk."""
        return tuple(self._routerinfos.values())

    def merge(self, other: "NetDbStore") -> int:
        """Merge another store's RouterInfos into this one (newest wins)."""
        merged = 0
        for info in other.routerinfos():
            if self.store_routerinfo(info):
                merged += 1
        return merged
