"""I2P network database (netDb) substrate.

This package models the data structures and protocol behaviour of I2P's
distributed network database, as described in Section 2.1.2 of the paper:
router identities, RouterInfos, LeaseSets, daily-rotating routing keys,
Kademlia XOR metric / k-buckets, per-router stores, DSM/DLM messages, and
floodfill store/flood/lookup logic.
"""

from .identity import (
    HASH_LENGTH,
    RouterIdentity,
    from_i2p_base64,
    sha256,
    to_i2p_base64,
)
from .kademlia import (
    KEY_BITS,
    KBucket,
    RoutingTable,
    bucket_index,
    closest_nodes,
    xor_distance,
)
from .leaseset import LEASE_DURATION, Destination, Lease, LeaseSet
from .messages import (
    DatabaseLookupMessage,
    DatabaseSearchReplyMessage,
    DatabaseStoreMessage,
    LookupType,
    MessageType,
)
from .floodfill import (
    FLOOD_REDUNDANCY,
    FloodfillHealth,
    FloodfillRouterState,
    is_qualified_floodfill,
)
from .routerinfo import (
    FLOODFILL_MIN_KBPS,
    QUALIFIED_FLOODFILL_TIERS,
    BandwidthTier,
    CapacityFlags,
    Introducer,
    RouterAddress,
    RouterInfo,
    TransportStyle,
    parse_capacity_string,
)
from .routing_key import (
    SECONDS_PER_DAY,
    date_string_for_time,
    keys_rotate_between,
    routing_key,
    select_closest,
)
from .store import (
    FLOODFILL_ROUTERINFO_EXPIRY,
    ROUTERINFO_EXPIRY,
    NetDbStore,
    StoreStats,
)

__all__ = [
    # identity
    "HASH_LENGTH",
    "RouterIdentity",
    "sha256",
    "to_i2p_base64",
    "from_i2p_base64",
    # kademlia
    "KEY_BITS",
    "KBucket",
    "RoutingTable",
    "bucket_index",
    "closest_nodes",
    "xor_distance",
    # leaseset
    "LEASE_DURATION",
    "Destination",
    "Lease",
    "LeaseSet",
    # messages
    "DatabaseLookupMessage",
    "DatabaseSearchReplyMessage",
    "DatabaseStoreMessage",
    "LookupType",
    "MessageType",
    # floodfill
    "FLOOD_REDUNDANCY",
    "FloodfillHealth",
    "FloodfillRouterState",
    "is_qualified_floodfill",
    # routerinfo
    "FLOODFILL_MIN_KBPS",
    "QUALIFIED_FLOODFILL_TIERS",
    "BandwidthTier",
    "CapacityFlags",
    "Introducer",
    "RouterAddress",
    "RouterInfo",
    "TransportStyle",
    "parse_capacity_string",
    # routing keys
    "SECONDS_PER_DAY",
    "date_string_for_time",
    "keys_rotate_between",
    "routing_key",
    "select_closest",
    # store
    "FLOODFILL_ROUTERINFO_EXPIRY",
    "ROUTERINFO_EXPIRY",
    "NetDbStore",
    "StoreStats",
]
