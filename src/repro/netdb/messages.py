"""netDb protocol messages: DatabaseStore, DatabaseLookup, SearchReply.

Section 2.1.2 of the paper describes the two message types the measurement
methodology depends on:

* ``DatabaseStoreMessage`` (DSM) — used by a router to publish its
  RouterInfo or LeaseSet to floodfill routers, and by floodfill routers to
  flood fresh entries to their closest neighbours.
* ``DatabaseLookupMessage`` (DLM) — used by a router that *"does not have
  enough RouterInfos in its local storage"* to ask floodfill routers for
  more, and for LeaseSet lookups when contacting a destination.

A ``DatabaseSearchReplyMessage`` is returned when a floodfill does not have
the requested entry; it carries hashes of closer floodfills, which is how
iterative lookups proceed.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from .leaseset import LeaseSet
from .routerinfo import RouterInfo

__all__ = [
    "MessageType",
    "LookupType",
    "DatabaseStoreMessage",
    "DatabaseLookupMessage",
    "DatabaseSearchReplyMessage",
    "NetDbMessage",
    "next_message_id",
]

_message_counter = itertools.count(1)


def next_message_id() -> int:
    """Allocate a process-wide unique message id (monotonic)."""
    return next(_message_counter)


class MessageType(str, enum.Enum):
    DATABASE_STORE = "DatabaseStore"
    DATABASE_LOOKUP = "DatabaseLookup"
    DATABASE_SEARCH_REPLY = "DatabaseSearchReply"


class LookupType(str, enum.Enum):
    """What a DatabaseLookupMessage is asking for."""

    ROUTERINFO = "RouterInfo"
    LEASESET = "LeaseSet"
    EXPLORATION = "Exploration"


@dataclass(frozen=True)
class DatabaseStoreMessage:
    """A DSM carrying either a RouterInfo or a LeaseSet.

    ``reply_token`` is non-zero when the sender requests a delivery
    confirmation, which is also the signal for the receiving floodfill to
    flood the entry onward.
    """

    from_hash: bytes
    entry: Union[RouterInfo, LeaseSet]
    reply_token: int = 0
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if len(self.from_hash) != 32:
            raise ValueError("from_hash must be 32 bytes")
        if self.reply_token < 0:
            raise ValueError("reply_token must be non-negative")

    @property
    def type(self) -> MessageType:
        return MessageType.DATABASE_STORE

    @property
    def key(self) -> bytes:
        return self.entry.hash

    @property
    def is_routerinfo(self) -> bool:
        return isinstance(self.entry, RouterInfo)

    @property
    def is_leaseset(self) -> bool:
        return isinstance(self.entry, LeaseSet)

    @property
    def wants_reply(self) -> bool:
        return self.reply_token != 0


@dataclass(frozen=True)
class DatabaseLookupMessage:
    """A DLM requesting a netDb entry (or exploration of the keyspace).

    ``exclude_hashes`` lists floodfills already queried, so an iterative
    lookup does not revisit them; exploration lookups use it to ask for
    "random" RouterInfos the requester does not yet know.
    """

    from_hash: bytes
    key: bytes
    lookup_type: LookupType = LookupType.ROUTERINFO
    exclude_hashes: Tuple[bytes, ...] = ()
    max_results: int = 16
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if len(self.from_hash) != 32:
            raise ValueError("from_hash must be 32 bytes")
        if len(self.key) != 32:
            raise ValueError("lookup key must be 32 bytes")
        if self.max_results <= 0:
            raise ValueError("max_results must be positive")
        for excluded in self.exclude_hashes:
            if len(excluded) != 32:
                raise ValueError("excluded hashes must be 32 bytes")

    @property
    def type(self) -> MessageType:
        return MessageType.DATABASE_LOOKUP

    def excludes(self, router_hash: bytes) -> bool:
        return router_hash in self.exclude_hashes


@dataclass(frozen=True)
class DatabaseSearchReplyMessage:
    """Reply to a lookup that could not be satisfied locally.

    Carries the hashes of floodfill routers closer to the requested key,
    allowing the requester to continue the iterative search.
    """

    from_hash: bytes
    key: bytes
    closer_hashes: Tuple[bytes, ...]
    message_id: int = field(default_factory=next_message_id)

    def __post_init__(self) -> None:
        if len(self.from_hash) != 32:
            raise ValueError("from_hash must be 32 bytes")
        if len(self.key) != 32:
            raise ValueError("key must be 32 bytes")
        for closer in self.closer_hashes:
            if len(closer) != 32:
                raise ValueError("closer hashes must be 32 bytes")

    @property
    def type(self) -> MessageType:
        return MessageType.DATABASE_SEARCH_REPLY


NetDbMessage = Union[
    DatabaseStoreMessage, DatabaseLookupMessage, DatabaseSearchReplyMessage
]
