"""Router identities and cryptographic hashes.

Every I2P router is identified by a cryptographic identity whose SHA-256
hash is the router's permanent identifier.  The paper (Section 5.1) relies
on this property: *"an I2P peer is identified by a cryptographic identifier,
which is a unique hash value encapsulated in its RouterInfo.  This
identifier is generated the first time the I2P router software is installed,
and never changes throughout its lifetime."*

This module provides a faithful-but-lightweight implementation: identities
are generated from a deterministic random stream (so simulations are
reproducible), hashed with SHA-256, and rendered in the I2P-style base64
alphabet (which replaces ``+`` and ``/`` with ``-`` and ``~``).
"""

from __future__ import annotations

import base64
import hashlib
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "HASH_LENGTH",
    "IDENTITY_KEY_LENGTH",
    "RouterIdentity",
    "sha256",
    "to_i2p_base64",
    "from_i2p_base64",
]

#: Length, in bytes, of a router hash (SHA-256 digest).
HASH_LENGTH = 32

#: Length, in bytes, of the synthetic identity keying material.  The real
#: router identity is 387+ bytes (ElGamal public key, signing key, cert);
#: for the purposes of the measurement study only the hash of the identity
#: matters, so we keep a compact stand-in.
IDENTITY_KEY_LENGTH = 64

# The I2P base64 alphabet substitutes characters that are unsafe in file
# names and URLs.
_STD_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
_I2P_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-~"
_TO_I2P = str.maketrans(_STD_ALPHABET, _I2P_ALPHABET)
_FROM_I2P = str.maketrans(_I2P_ALPHABET, _STD_ALPHABET)


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def to_i2p_base64(data: bytes) -> str:
    """Encode ``data`` using I2P's modified base64 alphabet."""
    return base64.b64encode(data).decode("ascii").translate(_TO_I2P)


def from_i2p_base64(text: str) -> bytes:
    """Decode a string produced by :func:`to_i2p_base64`."""
    return base64.b64decode(text.translate(_FROM_I2P))


@dataclass(frozen=True)
class RouterIdentity:
    """A router's long-term identity.

    Attributes
    ----------
    key_material:
        Synthetic public-key bytes.  Only their hash is ever used by the
        measurement pipeline, mirroring how the paper only collects the
        hash value from each RouterInfo.
    """

    key_material: bytes
    _hash: bytes = field(init=False, repr=False, compare=False, default=b"")

    def __post_init__(self) -> None:
        if not isinstance(self.key_material, (bytes, bytearray)):
            raise TypeError("key_material must be bytes")
        if len(self.key_material) == 0:
            raise ValueError("key_material must not be empty")
        object.__setattr__(self, "_hash", sha256(bytes(self.key_material)))

    @property
    def hash(self) -> bytes:
        """The router's permanent 32-byte identifier."""
        return self._hash

    @property
    def hash_b64(self) -> str:
        """The router hash in I2P base64 (as it appears in netDb file names)."""
        return to_i2p_base64(self._hash)

    @property
    def short_hash(self) -> str:
        """First 8 base64 characters of the hash, for logging."""
        return self.hash_b64[:8]

    @classmethod
    def generate(cls, rng: Optional["random.Random"] = None) -> "RouterIdentity":
        """Generate a fresh identity.

        Parameters
        ----------
        rng:
            Optional :class:`random.Random` used to derive the key material
            deterministically.  When omitted, OS entropy is used.
        """
        if rng is None:
            material = os.urandom(IDENTITY_KEY_LENGTH)
        else:
            material = rng.getrandbits(IDENTITY_KEY_LENGTH * 8).to_bytes(
                IDENTITY_KEY_LENGTH, "big"
            )
        return cls(material)

    @classmethod
    def from_seed(cls, seed: str) -> "RouterIdentity":
        """Derive an identity deterministically from a text seed.

        Useful in tests where stable hashes are required.
        """
        if not seed:
            raise ValueError("seed must be a non-empty string")
        material = hashlib.sha512(seed.encode("utf-8")).digest()
        return cls(material)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"RouterIdentity({self.short_hash})"


# Imported late to avoid polluting the public namespace; only used for the
# type reference in ``generate``.
import random  # noqa: E402  (intentional late import for typing only)
