"""Kademlia XOR metric and k-bucket routing table.

The I2P netDb is *"implemented as a distributed hash table using a
variation of the Kademlia algorithm"* (Section 2.1.2).  Floodfill routers
store RouterInfos/LeaseSets whose routing keys are close to their own under
the XOR metric, and flood fresh entries to their three closest floodfill
neighbours.

This module provides the XOR metric, bucket-based routing tables, and the
iterative closest-node selection used by the store/lookup logic in
:mod:`repro.netdb.floodfill`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "KEY_BITS",
    "xor_distance",
    "bucket_index",
    "KBucket",
    "RoutingTable",
    "closest_nodes",
]

#: Width of netDb keys in bits (SHA-256).
KEY_BITS = 256


def xor_distance(key_a: bytes, key_b: bytes) -> int:
    """XOR distance between two equal-length keys, as an integer."""
    if len(key_a) != len(key_b):
        raise ValueError("keys must have equal length")
    return int.from_bytes(key_a, "big") ^ int.from_bytes(key_b, "big")


def bucket_index(local_key: bytes, remote_key: bytes) -> int:
    """Index of the k-bucket a remote key falls into, relative to a local key.

    Bucket ``i`` holds keys whose XOR distance has its highest set bit at
    position ``i`` (0-based from the least-significant bit).  Identical keys
    raise :class:`ValueError` because a node never stores itself.
    """
    distance = xor_distance(local_key, remote_key)
    if distance == 0:
        raise ValueError("a node does not bucket its own key")
    return distance.bit_length() - 1


def closest_nodes(
    target: bytes, candidates: Iterable[bytes], count: int
) -> List[bytes]:
    """Return up to ``count`` candidate keys closest to ``target`` (XOR)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ranked = sorted(candidates, key=lambda key: (xor_distance(target, key), key))
    return ranked[:count]


@dataclass
class KBucket:
    """A single k-bucket holding up to ``capacity`` node keys (LRU order).

    The freshest node is at the end of the list.  When the bucket is full,
    new entries displace the least-recently-seen entry only if
    ``evict_stale`` is set; otherwise insertion is refused, matching
    Kademlia's preference for long-lived nodes.
    """

    capacity: int = 20
    evict_stale: bool = True
    _entries: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("bucket capacity must be positive")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[bytes, ...]:
        return tuple(self._entries)

    def touch(self, key: bytes) -> bool:
        """Insert ``key`` or refresh its recency.

        Returns ``True`` if the key is present in the bucket afterwards.
        """
        if key in self._entries:
            self._entries.remove(key)
            self._entries.append(key)
            return True
        if len(self._entries) < self.capacity:
            self._entries.append(key)
            return True
        if self.evict_stale:
            self._entries.pop(0)
            self._entries.append(key)
            return True
        return False

    def remove(self, key: bytes) -> bool:
        """Remove ``key`` if present; return whether it was removed."""
        if key in self._entries:
            self._entries.remove(key)
            return True
        return False

    def oldest(self) -> Optional[bytes]:
        return self._entries[0] if self._entries else None


class RoutingTable:
    """A Kademlia routing table keyed on a local node's routing key.

    The table maintains :data:`KEY_BITS` buckets.  It deliberately stores
    only the 32-byte keys (not full RouterInfos): callers keep their own
    key → record mapping, which mirrors how the Java router separates the
    peer-selection data structures from the netDb store.
    """

    def __init__(
        self, local_key: bytes, bucket_capacity: int = 20, evict_stale: bool = True
    ) -> None:
        if len(local_key) != KEY_BITS // 8:
            raise ValueError("local key must be 32 bytes")
        self._local_key = local_key
        self._buckets: Dict[int, KBucket] = {}
        self._bucket_capacity = bucket_capacity
        self._evict_stale = evict_stale

    @property
    def local_key(self) -> bytes:
        return self._local_key

    def _bucket_for(self, key: bytes) -> KBucket:
        index = bucket_index(self._local_key, key)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = KBucket(
                capacity=self._bucket_capacity, evict_stale=self._evict_stale
            )
            self._buckets[index] = bucket
        return bucket

    def add(self, key: bytes) -> bool:
        """Add or refresh a remote key.  The local key is never stored."""
        if key == self._local_key:
            return False
        return self._bucket_for(key).touch(key)

    def remove(self, key: bytes) -> bool:
        if key == self._local_key:
            return False
        try:
            index = bucket_index(self._local_key, key)
        except ValueError:
            return False
        bucket = self._buckets.get(index)
        if bucket is None:
            return False
        return bucket.remove(key)

    def __contains__(self, key: bytes) -> bool:
        if key == self._local_key:
            return False
        index = bucket_index(self._local_key, key)
        bucket = self._buckets.get(index)
        return bucket is not None and key in bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def all_keys(self) -> List[bytes]:
        keys: List[bytes] = []
        for index in sorted(self._buckets):
            keys.extend(self._buckets[index].entries)
        return keys

    def closest(self, target: bytes, count: int) -> List[bytes]:
        """The ``count`` known keys closest to ``target`` under XOR."""
        return closest_nodes(target, self.all_keys(), count)

    def bucket_sizes(self) -> Dict[int, int]:
        """Mapping of bucket index → number of entries (for diagnostics)."""
        return {index: len(bucket) for index, bucket in self._buckets.items()}
