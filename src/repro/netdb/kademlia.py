"""Kademlia XOR metric and k-bucket routing table.

The I2P netDb is *"implemented as a distributed hash table using a
variation of the Kademlia algorithm"* (Section 2.1.2).  Floodfill routers
store RouterInfos/LeaseSets whose routing keys are close to their own under
the XOR metric, and flood fresh entries to their three closest floodfill
neighbours.

This module provides the XOR metric, bucket-based routing tables, and the
iterative closest-node selection used by the store/lookup logic in
:mod:`repro.netdb.floodfill`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "KEY_BITS",
    "xor_distance",
    "bucket_index",
    "KBucket",
    "RoutingTable",
    "closest_nodes",
    "pack_keys",
    "select_closest_shared",
    "select_closest_segmented",
]

#: Width of netDb keys in bits (SHA-256).
KEY_BITS = 256


def xor_distance(key_a: bytes, key_b: bytes) -> int:
    """XOR distance between two equal-length keys, as an integer."""
    if len(key_a) != len(key_b):
        raise ValueError("keys must have equal length")
    return int.from_bytes(key_a, "big") ^ int.from_bytes(key_b, "big")


def bucket_index(local_key: bytes, remote_key: bytes) -> int:
    """Index of the k-bucket a remote key falls into, relative to a local key.

    Bucket ``i`` holds keys whose XOR distance has its highest set bit at
    position ``i`` (0-based from the least-significant bit).  Identical keys
    raise :class:`ValueError` because a node never stores itself.
    """
    distance = xor_distance(local_key, remote_key)
    if distance == 0:
        raise ValueError("a node does not bucket its own key")
    return distance.bit_length() - 1


def closest_nodes(
    target: bytes, candidates: Iterable[bytes], count: int
) -> List[bytes]:
    """Return up to ``count`` candidate keys closest to ``target`` (XOR)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    ranked = sorted(candidates, key=lambda key: (xor_distance(target, key), key))
    return ranked[:count]


# --------------------------------------------------------------------- #
# Vectorised batch selection
#
# The message-plane engine ranks thousands of (target, candidate-set)
# pairs per convergence round.  Keys are packed as rows of four
# big-endian uint64 words; the top word of the XOR distance orders
# almost every comparison (two random SHA-256 keys collide in the top
# 64 bits with probability 2^-64), so selection argpartitions on word 0
# alone and falls back to an exact 256-bit ranking only for rows where
# word 0 leaves the outcome ambiguous.
# --------------------------------------------------------------------- #


def pack_keys(keys: Sequence[bytes]) -> np.ndarray:
    """Pack 32-byte keys into an ``(n, 4)`` matrix of big-endian uint64 words.

    Row ``i`` holds key ``i`` split into four words, most-significant
    first, so lexicographic comparison of rows matches integer
    comparison of the keys.
    """
    if not keys:
        return np.empty((0, 4), dtype=np.uint64)
    joined = b"".join(keys)
    if len(joined) != 32 * len(keys):
        raise ValueError("all keys must be 32 bytes")
    return np.frombuffer(joined, dtype=">u8").astype(np.uint64).reshape(-1, 4)


def _rank_exact(
    target_words: np.ndarray,
    pool_words: np.ndarray,
    pool_ids: Sequence[bytes],
    cand_idx: Iterable[int],
    count: int,
) -> List[int]:
    """Exact 256-bit ranking of ``cand_idx`` (pool indices) for one target.

    Matches :func:`repro.netdb.routing_key.select_closest`: candidates
    are ordered by full XOR distance, ties broken by the raw candidate
    id bytes.
    """
    t0, t1, t2, t3 = (int(w) for w in target_words)

    def sort_key(i: int) -> Tuple[int, bytes]:
        w = pool_words[i]
        distance = (
            ((t0 ^ int(w[0])) << 192)
            | ((t1 ^ int(w[1])) << 128)
            | ((t2 ^ int(w[2])) << 64)
            | (t3 ^ int(w[3]))
        )
        return (distance, pool_ids[i])

    ranked = sorted((int(i) for i in cand_idx), key=sort_key)
    return ranked[:count]


def _fill_row(out_row: np.ndarray, selected: Sequence[int]) -> None:
    for j, idx in enumerate(selected):
        out_row[j] = idx


def _unambiguous_rows(svals: np.ndarray, count: int) -> np.ndarray:
    """Rows whose word-0 ordering provably equals the full-key ordering.

    ``svals`` holds each row's ``count + 1`` smallest word-0 distances in
    ascending order.  The top-k set and its internal order are decided by
    word 0 alone iff those ``count + 1`` values are pairwise distinct.
    """
    good = svals[:, count] > svals[:, count - 1]
    if count > 1:
        good &= np.all(svals[:, 1:count] > svals[:, : count - 1], axis=1)
    return good


def select_closest_shared(
    target_words: np.ndarray,
    pool_words: np.ndarray,
    pool_ids: Sequence[bytes],
    cols: np.ndarray,
    count: int,
    chunk_rows: int = 1024,
) -> np.ndarray:
    """Rank-ordered closest pool indices for targets sharing one candidate set.

    ``target_words`` is ``(r, 4)``; every row selects from the same
    candidate columns ``cols`` (indices into ``pool_words`` /
    ``pool_ids``).  Returns an ``(r, count)`` int64 matrix of pool
    indices, ``-1``-padded when fewer than ``count`` candidates exist.
    Results match per-row :func:`closest_nodes` over the pool keys with
    raw-id tie-breaking, bit for bit.
    """
    n_rows = len(target_words)
    out = np.full((n_rows, count), -1, dtype=np.int64)
    if n_rows == 0 or count <= 0 or len(cols) == 0:
        return out
    n_cols = len(cols)
    if n_cols <= count + 1:
        for i in range(n_rows):
            _fill_row(out[i], _rank_exact(target_words[i], pool_words, pool_ids, cols, count))
        return out

    col_w0 = pool_words[cols, 0]
    target_w0 = target_words[:, 0]
    for start in range(0, n_rows, chunk_rows):
        stop = min(start + chunk_rows, n_rows)
        d0 = target_w0[start:stop, None] ^ col_w0[None, :]
        part = np.argpartition(d0, count, axis=1)[:, : count + 1]
        vals = np.take_along_axis(d0, part, axis=1)
        order = np.argsort(vals, axis=1, kind="stable")
        svals = np.take_along_axis(vals, order, axis=1)
        sel_pos = np.take_along_axis(part, order[:, :count], axis=1)
        out[start:stop] = cols[sel_pos]
        good = _unambiguous_rows(svals, count)
        for local_i in np.flatnonzero(~good):
            row = start + int(local_i)
            _fill_row(
                out[row],
                _rank_exact(target_words[row], pool_words, pool_ids, cols, count),
            )
    return out


def select_closest_segmented(
    target_words: np.ndarray,
    pool_words: np.ndarray,
    pool_ids: Sequence[bytes],
    cand_concat: np.ndarray,
    row_splits: np.ndarray,
    count: int,
) -> np.ndarray:
    """Per-row closest selection when every target has its own candidate set.

    Candidates for row ``i`` are
    ``cand_concat[row_splits[i]:row_splits[i + 1]]`` (pool indices).
    Semantics and return shape match :func:`select_closest_shared`.
    Designed for sparse rows (bootstrap-era views of a handful of
    floodfills); cost is ``O(total candidates log total candidates)``.
    """
    n_rows = len(row_splits) - 1
    out = np.full((n_rows, count), -1, dtype=np.int64)
    if n_rows == 0 or count <= 0 or cand_concat.size == 0:
        return out
    lens = np.diff(row_splits)
    pool_w0 = pool_words[:, 0]
    target_w0 = target_words[:, 0]
    umax = np.uint64(0xFFFFFFFFFFFFFFFF)
    # Chunk rows by ascending candidate count so each padded chunk wastes
    # little space, then argpartition the padded (rows, max_len) distance
    # matrix; padding slots carry UMAX, which sorts last.  Any row where a
    # selected/boundary value collides (including with padding) drops to
    # the exact 256-bit ranking.
    by_len = np.argsort(lens, kind="stable")
    by_len = by_len[lens[by_len] > 0]
    chunk_rows = 1024
    for start in range(0, len(by_len), chunk_rows):
        rows = by_len[start : start + chunk_rows]
        max_len = int(lens[rows].max())
        if max_len <= count + 1:
            for row in rows:
                row = int(row)
                cands = cand_concat[row_splits[row] : row_splits[row + 1]]
                _fill_row(
                    out[row],
                    _rank_exact(target_words[row], pool_words, pool_ids, cands, count),
                )
            continue
        cmat = np.full((len(rows), max_len), -1, dtype=np.int64)
        for i, row in enumerate(rows):
            lo, hi = row_splits[row], row_splits[row + 1]
            cmat[i, : hi - lo] = cand_concat[lo:hi]
        valid = cmat >= 0
        d0 = np.where(
            valid,
            pool_w0[np.maximum(cmat, 0)] ^ target_w0[rows][:, None],
            umax,
        )
        part = np.argpartition(d0, count, axis=1)[:, : count + 1]
        vals = np.take_along_axis(d0, part, axis=1)
        order = np.argsort(vals, axis=1, kind="stable")
        svals = np.take_along_axis(vals, order, axis=1)
        sel_pos = np.take_along_axis(part, order[:, :count], axis=1)
        out[rows] = np.take_along_axis(cmat, sel_pos, axis=1)
        good = _unambiguous_rows(svals, count)
        for local_i in np.flatnonzero(~good):
            row = int(rows[local_i])
            cands = cand_concat[row_splits[row] : row_splits[row + 1]]
            _fill_row(
                out[row],
                _rank_exact(target_words[row], pool_words, pool_ids, cands, count),
            )
    return out


@dataclass
class KBucket:
    """A single k-bucket holding up to ``capacity`` node keys (LRU order).

    The freshest node is at the end of the list.  When the bucket is full,
    new entries displace the least-recently-seen entry only if
    ``evict_stale`` is set; otherwise insertion is refused, matching
    Kademlia's preference for long-lived nodes.
    """

    capacity: int = 20
    evict_stale: bool = True
    _entries: List[bytes] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("bucket capacity must be positive")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._entries)

    @property
    def entries(self) -> Tuple[bytes, ...]:
        return tuple(self._entries)

    def touch(self, key: bytes) -> bool:
        """Insert ``key`` or refresh its recency.

        Returns ``True`` if the key is present in the bucket afterwards.
        """
        if key in self._entries:
            self._entries.remove(key)
            self._entries.append(key)
            return True
        if len(self._entries) < self.capacity:
            self._entries.append(key)
            return True
        if self.evict_stale:
            self._entries.pop(0)
            self._entries.append(key)
            return True
        return False

    def remove(self, key: bytes) -> bool:
        """Remove ``key`` if present; return whether it was removed."""
        if key in self._entries:
            self._entries.remove(key)
            return True
        return False

    def oldest(self) -> Optional[bytes]:
        return self._entries[0] if self._entries else None


class RoutingTable:
    """A Kademlia routing table keyed on a local node's routing key.

    The table maintains :data:`KEY_BITS` buckets.  It deliberately stores
    only the 32-byte keys (not full RouterInfos): callers keep their own
    key → record mapping, which mirrors how the Java router separates the
    peer-selection data structures from the netDb store.
    """

    def __init__(
        self, local_key: bytes, bucket_capacity: int = 20, evict_stale: bool = True
    ) -> None:
        if len(local_key) != KEY_BITS // 8:
            raise ValueError("local key must be 32 bytes")
        self._local_key = local_key
        self._buckets: Dict[int, KBucket] = {}
        self._bucket_capacity = bucket_capacity
        self._evict_stale = evict_stale

    @property
    def local_key(self) -> bytes:
        return self._local_key

    def _bucket_for(self, key: bytes) -> KBucket:
        index = bucket_index(self._local_key, key)
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = KBucket(
                capacity=self._bucket_capacity, evict_stale=self._evict_stale
            )
            self._buckets[index] = bucket
        return bucket

    def add(self, key: bytes) -> bool:
        """Add or refresh a remote key.  The local key is never stored."""
        if key == self._local_key:
            return False
        return self._bucket_for(key).touch(key)

    def remove(self, key: bytes) -> bool:
        if key == self._local_key:
            return False
        try:
            index = bucket_index(self._local_key, key)
        except ValueError:
            return False
        bucket = self._buckets.get(index)
        if bucket is None:
            return False
        return bucket.remove(key)

    def __contains__(self, key: bytes) -> bool:
        if key == self._local_key:
            return False
        index = bucket_index(self._local_key, key)
        bucket = self._buckets.get(index)
        return bucket is not None and key in bucket

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def all_keys(self) -> List[bytes]:
        keys: List[bytes] = []
        for index in sorted(self._buckets):
            keys.extend(self._buckets[index].entries)
        return keys

    def closest(self, target: bytes, count: int) -> List[bytes]:
        """The ``count`` known keys closest to ``target`` under XOR."""
        return closest_nodes(target, self.all_keys(), count)

    def bucket_sizes(self) -> Dict[int, int]:
        """Mapping of bucket index → number of entries (for diagnostics)."""
        return {index: len(bucket) for index, bucket in self._buckets.items()}
