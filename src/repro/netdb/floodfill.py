"""Floodfill behaviour: storing, flooding, and answering lookups.

Floodfill routers *"play an essential role in maintaining the netDb"*
(Section 2.1.2).  The behaviours modelled here are the ones the paper's
measurement and blocking analyses depend on:

* a floodfill stores entries whose routing key falls near its own key;
* on receiving a DSM with a *newer* entry than it has, it floods the entry
  to its ``FLOOD_REDUNDANCY`` (three) closest floodfill neighbours
  (Section 4.2, fourth discovery mechanism);
* on receiving a DLM it answers from its store, or returns a search reply
  listing closer floodfills;
* routers below the automatic-promotion bandwidth can still be *manually*
  flagged floodfill (Section 5.3.1's "unqualified" floodfills).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .kademlia import closest_nodes
from .leaseset import LeaseSet
from .messages import (
    DatabaseLookupMessage,
    DatabaseSearchReplyMessage,
    DatabaseStoreMessage,
    LookupType,
)
from .routerinfo import (
    QUALIFIED_FLOODFILL_TIERS,
    BandwidthTier,
    RouterInfo,
)
from .routing_key import routing_key, select_closest
from .store import NetDbStore

__all__ = [
    "FLOOD_REDUNDANCY",
    "LOOKUP_CLOSER_COUNT",
    "FloodfillRouterState",
    "FloodfillHealth",
    "is_qualified_floodfill",
]

#: Number of closest floodfill neighbours an entry is flooded to.
FLOOD_REDUNDANCY = 3

#: Number of closer-floodfill hashes returned in a search reply.
LOOKUP_CLOSER_COUNT = 3


def is_qualified_floodfill(info: RouterInfo) -> bool:
    """Whether a floodfill-flagged router meets the bandwidth requirement.

    Section 5.3.1: only N/O/P/X routers qualify for automatic floodfill
    promotion; K/L/M floodfills must have been enabled manually.
    """
    if not info.is_floodfill:
        return False
    return info.bandwidth_tier in QUALIFIED_FLOODFILL_TIERS


@dataclass
class FloodfillHealth:
    """The "health" checks gating automatic floodfill promotion.

    Section 2.1.2: *"a high-bandwidth router could become a floodfill
    router automatically after passing several health tests, such as
    stability and uptime in the network, outbound message queue throughput,
    delay, and so on."*
    """

    uptime_hours: float = 0.0
    shared_bandwidth_kbps: float = 0.0
    message_queue_delay_ms: float = 0.0
    job_lag_ms: float = 0.0
    tunnel_build_success: float = 1.0

    #: Promotion thresholds (values follow the Java router's defaults in
    #: spirit: 2 h uptime, >=128 KB/s share, low lag, healthy builds).
    MIN_UPTIME_HOURS: float = 2.0
    MIN_BANDWIDTH_KBPS: float = 128.0
    MAX_QUEUE_DELAY_MS: float = 500.0
    MAX_JOB_LAG_MS: float = 500.0
    MIN_BUILD_SUCCESS: float = 0.4

    def passes(self) -> bool:
        return (
            self.uptime_hours >= self.MIN_UPTIME_HOURS
            and self.shared_bandwidth_kbps >= self.MIN_BANDWIDTH_KBPS
            and self.message_queue_delay_ms <= self.MAX_QUEUE_DELAY_MS
            and self.job_lag_ms <= self.MAX_JOB_LAG_MS
            and self.tunnel_build_success >= self.MIN_BUILD_SUCCESS
        )

    def failing_checks(self) -> List[str]:
        failures: List[str] = []
        if self.uptime_hours < self.MIN_UPTIME_HOURS:
            failures.append("uptime")
        if self.shared_bandwidth_kbps < self.MIN_BANDWIDTH_KBPS:
            failures.append("bandwidth")
        if self.message_queue_delay_ms > self.MAX_QUEUE_DELAY_MS:
            failures.append("queue_delay")
        if self.job_lag_ms > self.MAX_JOB_LAG_MS:
            failures.append("job_lag")
        if self.tunnel_build_success < self.MIN_BUILD_SUCCESS:
            failures.append("tunnel_build_success")
        return failures


@dataclass
class FloodResult:
    """Outcome of handling a DatabaseStoreMessage at a floodfill."""

    stored: bool
    flooded_to: Tuple[bytes, ...] = ()


class FloodfillRouterState:
    """netDb-serving state of a floodfill router.

    The class is transport-agnostic: callers (the network simulator, or a
    unit test) deliver messages and receive the floodfill's responses /
    flood targets as return values.
    """

    def __init__(
        self,
        router_hash: bytes,
        store: Optional[NetDbStore] = None,
        known_floodfills: Optional[Iterable[bytes]] = None,
    ) -> None:
        if len(router_hash) != 32:
            raise ValueError("router hash must be 32 bytes")
        self.router_hash = router_hash
        self.store = store if store is not None else NetDbStore(floodfill=True)
        self._known_floodfills: Set[bytes] = set(known_floodfills or ())
        self._known_floodfills.discard(router_hash)
        #: Bumped whenever the neighbour set actually changes; external
        #: caches (the network's per-round flood tables) key on it.
        self.neighbours_version = 0
        #: Set by the network's fault plane while this floodfill is inside
        #: an active crash window.  A crashed floodfill neither accepts
        #: stores nor answers lookups; its store keeps expiring, so a long
        #: outage genuinely loses state.
        self.crashed = False

    # ------------------------------------------------------------------ #
    # Floodfill peer bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def known_floodfills(self) -> Set[bytes]:
        return set(self._known_floodfills)

    @property
    def known_floodfill_count(self) -> int:
        """Number of known floodfill neighbours, without copying the set."""
        return len(self._known_floodfills)

    def iter_known_floodfills(self) -> Iterable[bytes]:
        """Iterate known floodfill hashes without copying the set.

        Callers must not mutate the neighbour set while iterating; the
        batched message plane uses this to build flood tables once per
        round instead of copying the set per delivered store.
        """
        return iter(self._known_floodfills)

    def learn_floodfill(self, router_hash: bytes) -> None:
        if router_hash != self.router_hash and router_hash not in self._known_floodfills:
            self._known_floodfills.add(router_hash)
            self.neighbours_version += 1

    def forget_floodfill(self, router_hash: bytes) -> None:
        if router_hash in self._known_floodfills:
            self._known_floodfills.discard(router_hash)
            self.neighbours_version += 1

    def flood_targets(self, key: bytes, sim_time: float) -> List[bytes]:
        """The floodfills an entry with search-key ``key`` is flooded to."""
        if not self._known_floodfills:
            return []
        target_key = routing_key(key, sim_time)
        return select_closest(
            target_key, self._known_floodfills, FLOOD_REDUNDANCY, sim_time
        )

    # ------------------------------------------------------------------ #
    # Message handling
    # ------------------------------------------------------------------ #
    def handle_store(
        self, message: DatabaseStoreMessage, sim_time: float
    ) -> FloodResult:
        """Store the entry; flood it if it is new/updated and flooding applies.

        Flooding is triggered when the DSM carries a reply token (i.e. it is
        a direct publication from the owner rather than an incoming flood)
        and the entry was fresher than the stored one — Section 4.2.
        """
        if self.crashed:
            return FloodResult(stored=False)
        if message.is_routerinfo:
            changed = self.store.store_routerinfo(message.entry)  # type: ignore[arg-type]
        else:
            changed = self.store.store_leaseset(message.entry)  # type: ignore[arg-type]

        flooded_to: Tuple[bytes, ...] = ()
        if changed and message.wants_reply:
            flooded_to = tuple(self.flood_targets(message.key, sim_time))
        return FloodResult(stored=changed, flooded_to=flooded_to)

    def handle_lookup(
        self, message: DatabaseLookupMessage, sim_time: float
    ) -> Optional[
        Union[DatabaseStoreMessage, DatabaseSearchReplyMessage, List[RouterInfo]]
    ]:
        """Answer a DLM.

        * RouterInfo lookups return a DSM with the entry if known, else a
          search reply with closer floodfills.
        * LeaseSet lookups behave the same with LeaseSets.
        * Exploration lookups return a list of RouterInfos the requester
          does not already know (bounded by ``max_results``) — this is the
          mechanism non-floodfill routers use to grow their netDb
          (Section 4.2, second discovery mechanism).

        A crashed floodfill returns ``None`` — the requester times out.
        """
        if self.crashed:
            return None
        if message.lookup_type is LookupType.EXPLORATION:
            return self._handle_exploration(message)

        if message.lookup_type is LookupType.ROUTERINFO:
            entry: Optional[Union[RouterInfo, LeaseSet]]
            entry = self.store.get_routerinfo(message.key)
        else:
            entry = self.store.get_leaseset(message.key)

        if entry is not None:
            return DatabaseStoreMessage(
                from_hash=self.router_hash, entry=entry, reply_token=0
            )
        return self._closer_reply(message, sim_time)

    def _handle_exploration(
        self, message: DatabaseLookupMessage
    ) -> List[RouterInfo]:
        excluded = set(message.exclude_hashes)
        excluded.add(message.from_hash)
        return self.exploration_infos(excluded, message.max_results)

    def exploration_infos(
        self, excluded: Set[bytes], max_results: int
    ) -> List[RouterInfo]:
        """RouterInfos for an exploration reply, skipping ``excluded``.

        The store is scanned in insertion order and the scan stops at
        ``max_results`` hits, so a reply touches at most
        ``max_results + len(excluded)`` entries regardless of store size.
        The batched message plane calls this directly with a reusable
        exclude set, bypassing per-lookup message construction.
        """
        if max_results <= 0 or self.crashed:
            return []
        results: List[RouterInfo] = []
        for info in self.store.iter_routerinfos():
            if info.hash in excluded:
                continue
            results.append(info)
            if len(results) >= max_results:
                break
        return results

    def _closer_reply(
        self, message: DatabaseLookupMessage, sim_time: float
    ) -> DatabaseSearchReplyMessage:
        candidates = [
            ff
            for ff in self._known_floodfills
            if ff not in message.exclude_hashes and ff != message.from_hash
        ]
        target_key = routing_key(message.key, sim_time)
        closer = select_closest(target_key, candidates, LOOKUP_CLOSER_COUNT, sim_time)
        return DatabaseSearchReplyMessage(
            from_hash=self.router_hash,
            key=message.key,
            closer_hashes=tuple(closer),
        )

    # ------------------------------------------------------------------ #
    # Responsibility checks
    # ------------------------------------------------------------------ #
    def is_responsible_for(
        self,
        key: bytes,
        all_floodfills: Sequence[bytes],
        sim_time: float,
        redundancy: int = FLOOD_REDUNDANCY,
    ) -> bool:
        """Whether this floodfill is among the ``redundancy`` closest to a key."""
        if self.router_hash not in all_floodfills:
            candidates = list(all_floodfills) + [self.router_hash]
        else:
            candidates = list(all_floodfills)
        target_key = routing_key(key, sim_time)
        closest = select_closest(target_key, candidates, redundancy, sim_time)
        return self.router_hash in closest
