"""Network usability under address-based blocking (Section 6.2.3, Figure 14).

The paper configures its upstream router to null-route (silently drop)
packets towards blocked peer IPs, hosts three small test eepsites, and
measures the page-load time and the fraction of timed-out requests as the
blocking rate increases.  Reported behaviour: ~3.4 s page loads without
blocking, >20 s and ~40 % timeouts at a 65 % blocking rate, >40 s and >60 %
timeouts between 70 % and 90 %, and a practically unusable network above
90 % (95–100 % of requests time out).

The model here reproduces the client-side mechanics that produce that
shape:

* loading an eepsite requires an outbound and an inbound client tunnel, a
  LeaseSet lookup at a floodfill, and the HTTP round trip through the
  tunnels;
* the censor's null-routing only affects the victim's *direct* connections,
  i.e. the tunnel hop adjacent to the client and the floodfill it queries
  directly; blocked peers silently drop, so each failed attempt costs a
  timeout before the client retries with another peer;
* the whole page load is abandoned after a 60-second deadline (the HTTP
  proxy returns 504, counted as a timed-out request).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.series import FigureData
from ..netdb.routerinfo import RouterInfo
from ..sim.peer import build_routerinfo
from ..sim.population import DayView, I2PPopulation
from ..sim.tunnels import PeerSelector

__all__ = [
    "PageLoadConfig",
    "PageLoadResult",
    "EepsiteFetchModel",
    "client_netdb_from_dayview",
    "usability_curve",
]


@dataclass(frozen=True)
class PageLoadConfig:
    """Timing parameters of the page-load model (seconds)."""

    hop_latency: float = 0.35
    build_timeout: float = 8.0
    lookup_latency: float = 0.5
    lookup_timeout: float = 4.0
    http_round_trip: float = 1.2
    deadline: float = 60.0
    tunnels_required: int = 2
    tunnel_length: int = 2
    max_lookup_attempts: int = 3


@dataclass
class PageLoadResult:
    """Outcome of one simulated eepsite request."""

    seconds: float
    timed_out: bool
    tunnel_build_attempts: int
    lookup_attempts: int

    @property
    def http_status(self) -> int:
        return 504 if self.timed_out else 200


class EepsiteFetchModel:
    """Simulates eepsite page loads from a client with a given netDb."""

    def __init__(
        self,
        netdb: Sequence[RouterInfo],
        config: Optional[PageLoadConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not netdb:
            raise ValueError("the client netDb must contain at least one RouterInfo")
        self.netdb = list(netdb)
        self.config = config or PageLoadConfig()
        self._rng = rng or random.Random()
        self._selector = PeerSelector(self._rng)
        self._floodfills = [info for info in self.netdb if info.is_floodfill]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_blocked(info: RouterInfo, blocked_ips: Set[str]) -> bool:
        ips = set(info.ip_addresses)
        return bool(ips) and ips.issubset(blocked_ips)

    def _build_tunnel(
        self, blocked_ips: Set[str], budget: float
    ) -> Tuple[bool, float, int]:
        """Build one client tunnel within a time budget.

        Only the hop adjacent to the client needs direct reachability; a
        blocked adjacent hop silently drops the build request and the
        attempt times out.
        Returns (succeeded, elapsed, attempts).
        """
        cfg = self.config
        elapsed = 0.0
        attempts = 0
        while elapsed < budget:
            attempts += 1
            hops = self._selector.select_hops(self.netdb, cfg.tunnel_length)
            if len(hops) < cfg.tunnel_length:
                return False, budget, attempts
            elapsed += cfg.hop_latency * cfg.tunnel_length
            adjacent = hops[0]
            if self._is_blocked(adjacent, blocked_ips):
                elapsed += cfg.build_timeout
                continue
            elapsed += cfg.hop_latency
            return True, elapsed, attempts
        return False, budget, attempts

    def _lookup_leaseset(
        self, blocked_ips: Set[str], budget: float
    ) -> Tuple[bool, float, int]:
        """Resolve the eepsite's LeaseSet through a directly queried floodfill."""
        cfg = self.config
        candidates = self._floodfills or self.netdb
        elapsed = 0.0
        attempts = 0
        while attempts < cfg.max_lookup_attempts and elapsed < budget:
            attempts += 1
            target = self._rng.choice(candidates)
            if self._is_blocked(target, blocked_ips):
                elapsed += cfg.lookup_timeout
                continue
            elapsed += cfg.lookup_latency
            return True, elapsed, attempts
        return False, min(elapsed, budget), attempts

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def fetch(self, blocked_ips: Optional[Set[str]] = None) -> PageLoadResult:
        """Simulate one page load; returns timing and timeout status."""
        blocked_ips = blocked_ips or set()
        cfg = self.config
        elapsed = 0.0
        tunnel_attempts = 0

        for _ in range(cfg.tunnels_required):
            ok, spent, attempts = self._build_tunnel(
                blocked_ips, cfg.deadline - elapsed
            )
            elapsed += spent
            tunnel_attempts += attempts
            if not ok or elapsed >= cfg.deadline:
                return PageLoadResult(
                    seconds=min(elapsed, cfg.deadline),
                    timed_out=True,
                    tunnel_build_attempts=tunnel_attempts,
                    lookup_attempts=0,
                )

        ok, spent, lookup_attempts = self._lookup_leaseset(
            blocked_ips, cfg.deadline - elapsed
        )
        elapsed += spent
        if not ok or elapsed >= cfg.deadline:
            return PageLoadResult(
                seconds=min(elapsed, cfg.deadline),
                timed_out=True,
                tunnel_build_attempts=tunnel_attempts,
                lookup_attempts=lookup_attempts,
            )

        elapsed += cfg.http_round_trip
        timed_out = elapsed >= cfg.deadline
        return PageLoadResult(
            seconds=min(elapsed, cfg.deadline),
            timed_out=timed_out,
            tunnel_build_attempts=tunnel_attempts,
            lookup_attempts=lookup_attempts,
        )

    def fetch_many(
        self, count: int, blocked_ips: Optional[Set[str]] = None
    ) -> List[PageLoadResult]:
        return [self.fetch(blocked_ips) for _ in range(count)]


def client_netdb_from_dayview(
    population: I2PPopulation,
    view: DayView,
    size: int,
    rng: Optional[random.Random] = None,
) -> List[RouterInfo]:
    """Build a realistic client netDb from one day of the synthetic network.

    Entries are sampled with a bias towards well-integrated peers (the same
    capacity-driven bias a real client's netDb exhibits) and materialised as
    RouterInfos via :func:`repro.sim.peer.build_routerinfo`.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    rng = rng or random.Random(0)
    snapshots = view.snapshots
    if not snapshots:
        raise ValueError("the day view contains no online peers")
    weights = [max(0.01, s.base_visibility) for s in snapshots]
    total = sum(weights)
    netdb: List[RouterInfo] = []
    chosen: Set[bytes] = set()
    attempts = 0
    limit = size * 20
    while len(netdb) < min(size, len(snapshots)) and attempts < limit:
        attempts += 1
        point = rng.random() * total
        acc = 0.0
        for snapshot, weight in zip(snapshots, weights):
            acc += weight
            if point <= acc:
                if snapshot.peer_id not in chosen:
                    chosen.add(snapshot.peer_id)
                    identity = population.peer(snapshot.peer_id).identity
                    netdb.append(
                        build_routerinfo(snapshot, identity, published_at=float(view.day))
                    )
                break
    return netdb


def usability_curve(
    netdb: Sequence[RouterInfo],
    blocking_rates: Sequence[float] = (
        0.0, 0.65, 0.67, 0.69, 0.71, 0.73, 0.75, 0.77, 0.79, 0.81,
        0.83, 0.85, 0.87, 0.89, 0.91, 0.93, 0.95, 0.97,
    ),
    fetches_per_rate: int = 10,
    config: Optional[PageLoadConfig] = None,
    seed: int = 0,
) -> FigureData:
    """Figure 14: timed-out requests and page-load latency vs blocking rate.

    For each blocking rate the corresponding fraction of the client's known
    peer IPs is null-routed (chosen uniformly at random, as the censor
    blocks addresses regardless of their role), then ``fetches_per_rate``
    page loads are simulated.
    """
    rng = random.Random(seed)
    known_ips = sorted({ip for info in netdb for ip in info.ip_addresses})
    if not known_ips:
        raise ValueError("the client netDb exposes no peer IPs to block")

    figure = FigureData(
        figure_id="figure_14",
        title="Timed-out requests and page-load latency under blocking",
        x_label="blocking rate (%)",
        y_label="timeouts (%) / page load time (s)",
    )
    timeout_series = figure.new_series("timed out requests (%)")
    latency_series = figure.new_series("page load time (s)")

    for rate in blocking_rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("blocking rates must be within [0, 1]")
        blocked_count = int(round(rate * len(known_ips)))
        blocked_ips = set(rng.sample(known_ips, blocked_count)) if blocked_count else set()
        model = EepsiteFetchModel(
            netdb, config=config, rng=random.Random(rng.randint(0, 2**31))
        )
        results = model.fetch_many(fetches_per_rate, blocked_ips)
        timeout_share = sum(1 for r in results if r.timed_out) / len(results)
        load_times = [r.seconds for r in results]
        timeout_series.add(rate * 100.0, timeout_share * 100.0)
        latency_series.add(rate * 100.0, float(np.mean(load_times)))
    figure.add_note(
        f"client netDb: {len(netdb)} RouterInfos, {len(known_ips)} blockable IPs; "
        f"{fetches_per_rate} fetches per blocking rate"
    )
    return figure
