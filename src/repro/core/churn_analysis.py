"""Churn and longevity analysis: Figures 7 and 8 of the paper.

Figure 7 — *peer longevity*: for each number of days *n*, the percentage of
observed peers that were seen in the network for at least *n* days, both
*continuously* (a run of consecutive observed days of length ≥ n) and
*intermittently* (the span between first and last observation ≥ n).  The
paper reports 56.36 % / 73.93 % for n > 7 days and 20.03 % / 31.15 % for
n > 30 days.

Figure 8 — *IP address churn*: the distribution of how many distinct IP
addresses each known-IP peer was associated with over the campaign
(45 % exactly one, 55 % two or more, and a small group with more than one
hundred addresses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis.series import FigureData
from .monitor import ObservationLog

__all__ = [
    "LongevitySummary",
    "IpChurnSummary",
    "longevity",
    "longevity_figure",
    "ip_churn",
    "ip_churn_figure",
]


@dataclass(frozen=True)
class LongevitySummary:
    """Longevity percentages at the thresholds the paper highlights."""

    total_peers: int
    continuous_over_7_days: float
    intermittent_over_7_days: float
    continuous_over_30_days: float
    intermittent_over_30_days: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_peers": self.total_peers,
            "continuous_over_7_days": self.continuous_over_7_days,
            "intermittent_over_7_days": self.intermittent_over_7_days,
            "continuous_over_30_days": self.continuous_over_30_days,
            "intermittent_over_30_days": self.intermittent_over_30_days,
        }


@dataclass(frozen=True)
class IpChurnSummary:
    """IP-address churn statistics over known-IP peers."""

    known_ip_peers: int
    single_ip_peers: int
    multi_ip_peers: int
    peers_over_100_ips: int

    @property
    def single_ip_share(self) -> float:
        if self.known_ip_peers == 0:
            return 0.0
        return self.single_ip_peers / self.known_ip_peers

    @property
    def multi_ip_share(self) -> float:
        if self.known_ip_peers == 0:
            return 0.0
        return self.multi_ip_peers / self.known_ip_peers

    @property
    def over_100_share(self) -> float:
        if self.known_ip_peers == 0:
            return 0.0
        return self.peers_over_100_ips / self.known_ip_peers

    def as_dict(self) -> Dict[str, float]:
        return {
            "known_ip_peers": self.known_ip_peers,
            "single_ip_peers": self.single_ip_peers,
            "multi_ip_peers": self.multi_ip_peers,
            "peers_over_100_ips": self.peers_over_100_ips,
            "single_ip_share": self.single_ip_share,
            "multi_ip_share": self.multi_ip_share,
            "over_100_share": self.over_100_share,
        }


# --------------------------------------------------------------------------- #
# Longevity (Figure 7)
# --------------------------------------------------------------------------- #
def longevity(
    log: ObservationLog, thresholds: Sequence[int] = (7, 30)
) -> Dict[int, Dict[str, float]]:
    """Percentage of peers seen at least ``n`` days, per threshold.

    Returns ``{n: {"continuous": pct, "intermittent": pct}}`` with
    percentages in the 0–100 range (matching the paper's reporting).
    Computed straight off the observation log's columnar accumulators —
    no per-peer aggregate objects are materialised for columnar runs.
    """
    continuous, intermittent = log.presence_lengths()
    if not continuous.size:
        raise ValueError("no peers were observed")
    result: Dict[int, Dict[str, float]] = {}
    for threshold in thresholds:
        result[int(threshold)] = {
            "continuous": float((continuous > threshold).mean() * 100.0),
            "intermittent": float((intermittent > threshold).mean() * 100.0),
        }
    return result


def longevity_summary(log: ObservationLog) -> LongevitySummary:
    values = longevity(log, thresholds=(7, 30))
    return LongevitySummary(
        total_peers=log.unique_peer_count,
        continuous_over_7_days=values[7]["continuous"],
        intermittent_over_7_days=values[7]["intermittent"],
        continuous_over_30_days=values[30]["continuous"],
        intermittent_over_30_days=values[30]["intermittent"],
    )


def longevity_figure(
    log: ObservationLog, max_days: Optional[int] = None, step: int = 5
) -> FigureData:
    """Figure 7: survival curves of continuous and intermittent presence."""
    continuous, intermittent = log.presence_lengths()
    if not continuous.size:
        raise ValueError("no peers were observed")
    max_days = max_days or log.days_recorded
    figure = FigureData(
        figure_id="figure_07",
        title="Percentage of peers seen continuously / intermittently for n days",
        x_label="number of days",
        y_label="percentage",
    )
    continuous_series = figure.new_series("continuously")
    intermittent_series = figure.new_series("intermittently")
    thresholds = list(range(step, max_days + 1, step)) or [max_days]
    total = int(continuous.size)
    for threshold in thresholds:
        continuous_series.add(
            threshold, float((continuous >= threshold).sum()) / total * 100.0
        )
        intermittent_series.add(
            threshold, float((intermittent >= threshold).sum()) / total * 100.0
        )
    return figure


# --------------------------------------------------------------------------- #
# IP churn (Figure 8)
# --------------------------------------------------------------------------- #
def ip_churn(log: ObservationLog, over_threshold: int = 100) -> IpChurnSummary:
    """Campaign-level IP-address churn statistics (Section 5.2.2).

    Works off the per-peer distinct-address counters the columnar
    observation log accumulates while recording, so no aggregate objects
    are materialised for columnar runs.
    """
    counts = log.ipv4_address_counts()
    return IpChurnSummary(
        known_ip_peers=int(counts.size),
        single_ip_peers=int(np.count_nonzero(counts == 1)),
        multi_ip_peers=int(np.count_nonzero(counts >= 2)),
        peers_over_100_ips=int(np.count_nonzero(counts > over_threshold)),
    )


def ip_churn_figure(log: ObservationLog, max_addresses: int = 16) -> FigureData:
    """Figure 8: number of peers associated with 1..N IP addresses."""
    counts = log.ipv4_address_counts()
    figure = FigureData(
        figure_id="figure_08",
        title="Number of IP addresses I2P peers are associated with",
        x_label="number of IP addresses",
        y_label="observed peers",
    )
    counts_series = figure.new_series("observed peers")
    share_series = figure.new_series("percentage")
    total = int(counts.size)
    histogram = (
        np.bincount(np.minimum(counts, max_addresses), minlength=max_addresses + 1)
        if total
        else np.zeros(max_addresses + 1, dtype=np.int64)
    )
    for addresses in range(1, max_addresses + 1):
        count = int(histogram[addresses])
        counts_series.add(addresses, count)
        share_series.add(addresses, (count / total * 100.0) if total else 0.0)
    if total:
        multi_share = float(np.count_nonzero(counts >= 2)) / total * 100.0
        figure.add_note(
            f"known-IP peers: {total}; multi-IP share: {multi_share:.1f}%"
        )
    return figure
