"""Measurement campaigns: the paper's methodology experiments (Section 4)
and the three-month main campaign (Section 5).

Every experiment here mirrors one of the paper's methodology steps:

* :func:`single_router_experiment` — Figure 2: a single high-end router run
  for five days in floodfill mode and five days in non-floodfill mode.
* :func:`bandwidth_sweep` — Figure 3: seven floodfill and seven
  non-floodfill routers with shared bandwidths from 128 KB/s to 5 MB/s.
* :func:`router_count_sweep` — Figure 4: cumulative peers observed while
  operating 1–40 routers.
* :func:`run_main_campaign` — the 20-router (10 + 10) campaign whose
  observations feed Figures 5–12 and the censorship analyses.

All experiments accept a ``scale`` parameter that shrinks the synthetic
population proportionally (1.0 reproduces the paper's ~30.5K daily peers);
analyses report shares as well as absolute counts so results remain
comparable across scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.series import FigureData
from ..sim.observation import (
    MonitorMode,
    MonitorSpec,
    ObservationModel,
    standard_monitor_fleet,
)
from ..sim.population import DayView, I2PPopulation, PopulationConfig
from ..sim.rng import derive_seed
from .monitor import MonitoringRouter, ObservationLog

__all__ = [
    "FULL_SCALE_DAILY_POPULATION",
    "CampaignConfig",
    "CampaignResult",
    "MeasurementCampaign",
    "scaled_population_config",
    "single_router_experiment",
    "bandwidth_sweep",
    "router_count_sweep",
    "run_main_campaign",
]

#: Daily population of the paper's measurement (Section 5.1).
FULL_SCALE_DAILY_POPULATION = 30_500

#: The shared bandwidth the paper configures on its monitoring routers
#: (8 MB/s, the limit of the router's built-in bloom filter).
MONITOR_BANDWIDTH_KBPS = 8_000.0


def scaled_population_config(
    scale: float = 1.0, days: int = 90, seed: int = 2018
) -> PopulationConfig:
    """A population config whose daily population is ``scale`` × full size."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return PopulationConfig(
        target_daily_population=max(200, int(round(FULL_SCALE_DAILY_POPULATION * scale))),
        horizon_days=days,
        seed=seed,
    )


@dataclass
class CampaignConfig:
    """Configuration of one measurement campaign."""

    population: PopulationConfig
    monitors: List[MonitorSpec]
    days: int
    seed: int = 2018
    collect_daily_ips: bool = False
    collect_daily_peers: bool = False
    include_victim_client: bool = False
    victim_bandwidth_kbps: float = 256.0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("a campaign needs at least one day")
        if self.days > self.population.horizon_days:
            raise ValueError("campaign days exceed the population horizon")
        if not self.monitors:
            raise ValueError("a campaign needs at least one monitoring router")


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    population: I2PPopulation
    monitors: List[MonitoringRouter]
    victim: Optional[MonitoringRouter]
    log: ObservationLog
    #: Per day: cumulative union sizes when adding monitors in fleet order.
    cumulative_union_by_day: List[List[int]]
    #: Ground-truth daily online population (from the simulator).
    daily_online_population: List[int]

    @property
    def mean_daily_online(self) -> float:
        if not self.daily_online_population:
            return 0.0
        return float(np.mean(self.daily_online_population))

    def mean_cumulative_union(self) -> List[float]:
        """Cumulative-union curve averaged over campaign days (Figure 4)."""
        if not self.cumulative_union_by_day:
            return []
        array = np.asarray(self.cumulative_union_by_day, dtype=float)
        return [float(x) for x in array.mean(axis=0)]

    def coverage_of_population(self) -> float:
        """Observed unique peers / mean daily ground-truth population."""
        if self.mean_daily_online == 0:
            return 0.0
        return self.log.mean_daily_observed() / self.mean_daily_online


class MeasurementCampaign:
    """Runs a monitor fleet against a synthetic population, day by day."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.population = I2PPopulation(config=config.population)
        self.observation_model = ObservationModel(
            seed=derive_seed(config.seed, "observation")
        )
        self.monitors = [
            MonitoringRouter(
                spec=spec,
                collect_daily_ips=config.collect_daily_ips,
                collect_daily_peers=config.collect_daily_peers,
            )
            for spec in config.monitors
        ]
        self.victim: Optional[MonitoringRouter] = None
        if config.include_victim_client:
            self.victim = MonitoringRouter(
                spec=MonitorSpec(
                    "victim-client", MonitorMode.CLIENT, config.victim_bandwidth_kbps
                ),
                collect_daily_ips=True,
                collect_daily_peers=True,
            )
        self.log = ObservationLog()

    def run(self, days: Optional[int] = None) -> CampaignResult:
        days = self.config.days if days is None else days
        cumulative_union_by_day: List[List[int]] = []
        daily_online: List[int] = []
        monitor_specs = [m.spec for m in self.monitors]
        for view in self.population.iter_days(0, days):
            daily_online.append(view.online_count)
            exposure = self.observation_model.day_exposure(view)
            masks = self.observation_model.observe_day_masks(
                view, monitor_specs, exposure=exposure
            )
            for monitor, mask in zip(self.monitors, masks):
                monitor.record_day(view, mask)
            cumulative_union_by_day.append(
                ObservationModel.cumulative_union_sizes_from_masks(masks)
            )
            union_mask = np.logical_or.reduce(masks, axis=0)
            self.log.record_day(view, union_mask)
            if self.victim is not None:
                victim_mask = self.observation_model.observe_day_masks(
                    view, [self.victim.spec], exposure=exposure
                )[0]
                self.victim.record_day(view, victim_mask)
        return CampaignResult(
            config=self.config,
            population=self.population,
            monitors=self.monitors,
            victim=self.victim,
            log=self.log,
            cumulative_union_by_day=cumulative_union_by_day,
            daily_online_population=daily_online,
        )


# --------------------------------------------------------------------------- #
# Methodology experiments (Section 4)
# --------------------------------------------------------------------------- #
def single_router_experiment(
    days_per_mode: int = 5,
    scale: float = 1.0,
    seed: int = 2018,
    shared_kbps: float = MONITOR_BANDWIDTH_KBPS,
) -> FigureData:
    """Figure 2: one high-end router, floodfill then non-floodfill mode."""
    total_days = days_per_mode * 2
    figure = FigureData(
        figure_id="figure_02",
        title="Peers observed by a single high-end router",
        x_label="day",
        y_label="observed peers",
    )
    floodfill_series = figure.new_series("floodfill")
    non_floodfill_series = figure.new_series("non-floodfill")

    config = CampaignConfig(
        population=scaled_population_config(scale, days=total_days, seed=seed),
        monitors=[MonitorSpec("single-ff", MonitorMode.FLOODFILL, shared_kbps)],
        days=total_days,
        seed=seed,
    )
    # One population, one router; mode switches halfway, exactly like the
    # paper's 10-day calibration run.
    population = I2PPopulation(config=config.population)
    model = ObservationModel(seed=derive_seed(seed, "figure2"))
    for view in population.iter_days(0, total_days):
        day = view.day
        if day < days_per_mode:
            spec = MonitorSpec("single-ff", MonitorMode.FLOODFILL, shared_kbps)
        else:
            spec = MonitorSpec("single-nff", MonitorMode.NON_FLOODFILL, shared_kbps)
        observed = model.observe_day(view, [spec])[0]
        if day < days_per_mode:
            floodfill_series.add(day + 1, len(observed))
        else:
            non_floodfill_series.add(day + 1, len(observed))
    figure.add_note(
        f"population scale={scale:g} (daily ground truth ≈ "
        f"{config.population.target_daily_population})"
    )
    return figure


def bandwidth_sweep(
    bandwidths_kbps: Sequence[float] = (128, 256, 1000, 2000, 3000, 4000, 5000),
    days: int = 3,
    scale: float = 1.0,
    seed: int = 2018,
) -> FigureData:
    """Figure 3: observed peers vs shared bandwidth, per mode and combined."""
    figure = FigureData(
        figure_id="figure_03",
        title="Observed peers vs shared bandwidth (7 floodfill + 7 non-floodfill)",
        x_label="shared bandwidth (KB/s)",
        y_label="observed peers",
    )
    both = figure.new_series("both")
    floodfill_series = figure.new_series("floodfill")
    non_floodfill_series = figure.new_series("non-floodfill")

    monitors: List[MonitorSpec] = []
    for bandwidth in bandwidths_kbps:
        monitors.append(MonitorSpec(f"ff-{int(bandwidth)}", MonitorMode.FLOODFILL, bandwidth))
        monitors.append(
            MonitorSpec(f"nff-{int(bandwidth)}", MonitorMode.NON_FLOODFILL, bandwidth)
        )
    config = CampaignConfig(
        population=scaled_population_config(scale, days=days, seed=seed),
        monitors=monitors,
        days=days,
        seed=seed,
        collect_daily_peers=True,
    )
    result = MeasurementCampaign(config).run()

    by_name = {monitor.name: monitor for monitor in result.monitors}
    for bandwidth in bandwidths_kbps:
        ff = by_name[f"ff-{int(bandwidth)}"]
        nff = by_name[f"nff-{int(bandwidth)}"]
        ff_mean = ff.mean_daily_observed()
        nff_mean = nff.mean_daily_observed()
        union_sizes = [
            len(ff_day | nff_day)
            for ff_day, nff_day in zip(ff.daily_peer_sets, nff.daily_peer_sets)
        ]
        floodfill_series.add(bandwidth, ff_mean)
        non_floodfill_series.add(bandwidth, nff_mean)
        both.add(bandwidth, float(np.mean(union_sizes)) if union_sizes else 0.0)
    figure.add_note(
        f"population scale={scale:g}; daily ground truth ≈ "
        f"{config.population.target_daily_population}"
    )
    return figure


def router_count_sweep(
    max_routers: int = 40,
    days: int = 5,
    scale: float = 1.0,
    seed: int = 2018,
    shared_kbps: float = MONITOR_BANDWIDTH_KBPS,
) -> Tuple[FigureData, CampaignResult]:
    """Figure 4: cumulative observed peers when operating 1..N routers."""
    if max_routers < 1:
        raise ValueError("max_routers must be at least 1")
    floodfill_count = max_routers // 2
    non_floodfill_count = max_routers - floodfill_count
    monitors = standard_monitor_fleet(floodfill_count, non_floodfill_count, shared_kbps)
    config = CampaignConfig(
        population=scaled_population_config(scale, days=days, seed=seed),
        monitors=monitors,
        days=days,
        seed=seed,
    )
    result = MeasurementCampaign(config).run()

    figure = FigureData(
        figure_id="figure_04",
        title="Cumulative peers observed by operating 1..N routers",
        x_label="routers under our control",
        y_label="observed peers",
    )
    series = figure.new_series("cumulative observed")
    for count, value in enumerate(result.mean_cumulative_union(), start=1):
        series.add(count, value)
    figure.add_note(
        f"mean daily ground-truth population = {result.mean_daily_online:.0f}"
    )
    return figure, result


# --------------------------------------------------------------------------- #
# Main campaign (Section 5)
# --------------------------------------------------------------------------- #
def run_main_campaign(
    days: int = 90,
    scale: float = 1.0,
    seed: int = 2018,
    floodfill_monitors: int = 10,
    non_floodfill_monitors: int = 10,
    collect_daily_ips: bool = True,
    include_victim_client: bool = True,
) -> CampaignResult:
    """Run the paper's main 20-router campaign (Figures 5–12, Section 6)."""
    monitors = standard_monitor_fleet(
        floodfill_monitors, non_floodfill_monitors, MONITOR_BANDWIDTH_KBPS
    )
    config = CampaignConfig(
        population=scaled_population_config(scale, days=days, seed=seed),
        monitors=monitors,
        days=days,
        seed=seed,
        collect_daily_ips=collect_daily_ips,
        include_victim_client=include_victim_client,
    )
    return MeasurementCampaign(config).run()
