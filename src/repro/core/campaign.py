"""Measurement campaigns: the paper's methodology experiments (Section 4)
and the three-month main campaign (Section 5).

Every experiment here mirrors one of the paper's methodology steps:

* :func:`single_router_experiment` — Figure 2: a single high-end router run
  for five days in floodfill mode and five days in non-floodfill mode.
* :func:`bandwidth_sweep` — Figure 3: seven floodfill and seven
  non-floodfill routers with shared bandwidths from 128 KB/s to 5 MB/s.
* :func:`router_count_sweep` — Figure 4: cumulative peers observed while
  operating 1–40 routers.
* :func:`run_main_campaign` — the 20-router (10 + 10) campaign whose
  observations feed Figures 5–12 and the censorship analyses.

All experiments accept a ``scale`` parameter that shrinks the synthetic
population proportionally (1.0 reproduces the paper's ~30.5K daily peers);
analyses report shares as well as absolute counts so results remain
comparable across scales.

Every experiment is a thin consumer of the shared exposure engine
(:mod:`repro.sim.exposure`): populations, daily exposure draws, and
per-monitor observation masks are computed once per
``(population config, observation seed)`` and served from a keyed cache,
so experiments that share a seed and horizon (pass ``engine=`` and
``horizon_days=``, or use :func:`run_figure_suite`) cost only their own
monitor-selection/union step.  Cached and rebuilt-from-scratch runs are
byte-identical at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.series import FigureData
from ..sim.exposure import ExposureEngine, SharedExposure, default_engine
from ..sim.observation import (
    MonitorMode,
    MonitorSpec,
    ObservationModel,
    standard_monitor_fleet,
)
from ..sim.population import I2PPopulation, PopulationConfig
from ..sim.rng import derive_seed
from .capacity_analysis import bandwidth_breakdown, flag_distribution
from .churn_analysis import IpChurnSummary, ip_churn, longevity
from .monitor import MonitoringRouter, ObservationLog

__all__ = [
    "FULL_SCALE_DAILY_POPULATION",
    "CampaignConfig",
    "CampaignResult",
    "FigureSuiteResult",
    "MeasurementCampaign",
    "campaign_observation_seed",
    "scaled_population_config",
    "single_router_experiment",
    "bandwidth_sweep",
    "router_count_sweep",
    "run_main_campaign",
    "run_figure_suite",
]

#: Daily population of the paper's measurement (Section 5.1).
FULL_SCALE_DAILY_POPULATION = 30_500

#: The shared bandwidth the paper configures on its monitoring routers
#: (8 MB/s, the limit of the router's built-in bloom filter).
MONITOR_BANDWIDTH_KBPS = 8_000.0


def scaled_population_config(
    scale: float = 1.0,
    days: int = 90,
    seed: int = 2018,
    horizon_days: Optional[int] = None,
) -> PopulationConfig:
    """A population config whose daily population is ``scale`` × full size.

    ``horizon_days`` (≥ ``days``) widens the population horizon beyond the
    campaign length; experiments that share one :class:`ExposureEngine`
    pass the suite-wide horizon here so their population configs — and
    therefore their cache keys — coincide.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    horizon = days if horizon_days is None else max(days, horizon_days)
    return PopulationConfig(
        target_daily_population=max(200, int(round(FULL_SCALE_DAILY_POPULATION * scale))),
        horizon_days=horizon,
        seed=seed,
    )


def campaign_observation_seed(seed: int) -> int:
    """The observation-stream seed a campaign seed resolves to.

    This derivation is half of the exposure cache key; every consumer
    (campaigns, the scenario engine) must share it so experiments over the
    same population config resolve to the same ``SharedExposure`` entry.
    """
    return derive_seed(seed, "observation")


def _campaign_exposure(
    config: CampaignConfig, engine: Optional[ExposureEngine]
) -> SharedExposure:
    """The shared exposure a campaign config resolves to."""
    if engine is None:
        engine = default_engine()
    return engine.get(
        config.population, campaign_observation_seed(config.seed), days=config.days
    )


@dataclass
class CampaignConfig:
    """Configuration of one measurement campaign."""

    population: PopulationConfig
    monitors: List[MonitorSpec]
    days: int
    seed: int = 2018
    collect_daily_ips: bool = False
    collect_daily_peers: bool = False
    include_victim_client: bool = False
    victim_bandwidth_kbps: float = 256.0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("a campaign needs at least one day")
        if self.days > self.population.horizon_days:
            raise ValueError("campaign days exceed the population horizon")
        if not self.monitors:
            raise ValueError("a campaign needs at least one monitoring router")


@dataclass
class CampaignResult:
    """Everything a campaign produced.

    ``population`` is the exposure engine's *shared* population: treat it
    as read-only.  Advancing it directly (``population.day_view``) would
    poison the cache entry for every other experiment on the same key —
    the engine detects that and refuses to extend its day state; read
    day views through the campaign's ``exposure`` instead.
    """

    config: CampaignConfig
    population: I2PPopulation
    monitors: List[MonitoringRouter]
    victim: Optional[MonitoringRouter]
    log: ObservationLog
    #: Per day: cumulative union sizes when adding monitors in fleet order.
    cumulative_union_by_day: List[List[int]]
    #: Ground-truth daily online population (from the simulator).
    daily_online_population: List[int]

    @property
    def mean_daily_online(self) -> float:
        if not self.daily_online_population:
            return 0.0
        return float(np.mean(self.daily_online_population))

    def mean_cumulative_union(self) -> List[float]:
        """Cumulative-union curve averaged over campaign days (Figure 4)."""
        if not self.cumulative_union_by_day:
            return []
        array = np.asarray(self.cumulative_union_by_day, dtype=float)
        return [float(x) for x in array.mean(axis=0)]

    def coverage_of_population(self) -> float:
        """Observed unique peers / mean daily ground-truth population."""
        if self.mean_daily_online == 0:
            return 0.0
        return self.log.mean_daily_observed() / self.mean_daily_online


class MeasurementCampaign:
    """Runs a monitor fleet against a synthetic population, day by day.

    The campaign is a thin consumer of a :class:`SharedExposure`: the
    population, the daily exposure draws, and every per-monitor observation
    mask come from the engine's keyed cache, so campaigns that share a
    population config and seed (the whole figure suite) share all of that
    work.  The campaign itself only varies the monitor-selection and union
    step over the cached masks.
    """

    def __init__(
        self,
        config: CampaignConfig,
        engine: Optional[ExposureEngine] = None,
        mask_workers: Optional[int] = None,
    ) -> None:
        self.config = config
        self.exposure = _campaign_exposure(config, engine)
        self.population = self.exposure.population
        self._mask_workers = mask_workers
        self.monitors = [
            MonitoringRouter(
                spec=spec,
                collect_daily_ips=config.collect_daily_ips,
                collect_daily_peers=config.collect_daily_peers,
            )
            for spec in config.monitors
        ]
        self.victim: Optional[MonitoringRouter] = None
        if config.include_victim_client:
            self.victim = MonitoringRouter(
                spec=MonitorSpec(
                    "victim-client", MonitorMode.CLIENT, config.victim_bandwidth_kbps
                ),
                collect_daily_ips=True,
                collect_daily_peers=True,
            )
        self.log = ObservationLog()

    def run(self, days: Optional[int] = None) -> CampaignResult:
        days = self.config.days if days is None else days
        cumulative_union_by_day: List[List[int]] = []
        monitor_specs = [m.spec for m in self.monitors]
        all_specs = list(monitor_specs)
        if self.victim is not None:
            all_specs.append(self.victim.spec)
        # Disk-backed exposures advertise a shard size; in-memory ones
        # report 0 and the loop below degenerates to one shard covering
        # the whole campaign (identical behaviour to the pre-sharded
        # code path).  Streaming shard-by-shard keeps only one window of
        # day columns and masks resident at a time.
        shard = getattr(self.exposure, "day_shard_size", 0) or days
        for start in range(0, days, shard):
            stop = min(start + shard, days)
            self.exposure.prefetch_masks(
                all_specs, stop, workers=self._mask_workers, start_day=start
            )
            for day in range(start, stop):
                view = self.exposure.view(day)
                masks = self.exposure.fleet_day_masks(monitor_specs, day)
                for monitor, mask in zip(self.monitors, masks):
                    monitor.record_day(view, mask)
                cumulative_union_by_day.append(
                    ObservationModel.cumulative_union_sizes_from_masks(masks)
                )
                union_mask = np.logical_or.reduce(masks, axis=0)
                self.log.record_day(view, union_mask)
                if self.victim is not None:
                    self.victim.record_day(
                        view, self.exposure.monitor_day_mask(self.victim.spec, day)
                    )
            self.exposure.release_day_state(stop)
        return CampaignResult(
            config=self.config,
            population=self.population,
            monitors=self.monitors,
            victim=self.victim,
            log=self.log,
            cumulative_union_by_day=cumulative_union_by_day,
            daily_online_population=self.exposure.daily_online(days),
        )


# --------------------------------------------------------------------------- #
# Methodology experiments (Section 4)
# --------------------------------------------------------------------------- #
def single_router_experiment(
    days_per_mode: int = 5,
    scale: float = 1.0,
    seed: int = 2018,
    shared_kbps: float = MONITOR_BANDWIDTH_KBPS,
    engine: Optional[ExposureEngine] = None,
    horizon_days: Optional[int] = None,
) -> FigureData:
    """Figure 2: one high-end router, floodfill then non-floodfill mode."""
    total_days = days_per_mode * 2
    figure = FigureData(
        figure_id="figure_02",
        title="Peers observed by a single high-end router",
        x_label="day",
        y_label="observed peers",
    )
    floodfill_series = figure.new_series("floodfill")
    non_floodfill_series = figure.new_series("non-floodfill")

    ff_spec = MonitorSpec("single-ff", MonitorMode.FLOODFILL, shared_kbps)
    nff_spec = MonitorSpec("single-nff", MonitorMode.NON_FLOODFILL, shared_kbps)
    config = CampaignConfig(
        population=scaled_population_config(
            scale, days=total_days, seed=seed, horizon_days=horizon_days
        ),
        monitors=[ff_spec],
        days=total_days,
        seed=seed,
    )
    # One population, one router; mode switches halfway, exactly like the
    # paper's 10-day calibration run.
    exposure = _campaign_exposure(config, engine)
    for day in range(total_days):
        if day < days_per_mode:
            observed = int(np.count_nonzero(exposure.monitor_day_mask(ff_spec, day)))
            floodfill_series.add(day + 1, observed)
        else:
            observed = int(np.count_nonzero(exposure.monitor_day_mask(nff_spec, day)))
            non_floodfill_series.add(day + 1, observed)
    figure.add_note(
        f"population scale={scale:g} (daily ground truth ≈ "
        f"{config.population.target_daily_population})"
    )
    return figure


def bandwidth_sweep(
    bandwidths_kbps: Sequence[float] = (128, 256, 1000, 2000, 3000, 4000, 5000),
    days: int = 3,
    scale: float = 1.0,
    seed: int = 2018,
    engine: Optional[ExposureEngine] = None,
    horizon_days: Optional[int] = None,
) -> FigureData:
    """Figure 3: observed peers vs shared bandwidth, per mode and combined.

    A pure mask consumer: per-pair daily counts and unions are boolean
    reductions over the shared exposure's cached monitor masks — no
    monitoring routers or observation logs are materialised at all.
    """
    figure = FigureData(
        figure_id="figure_03",
        title="Observed peers vs shared bandwidth (7 floodfill + 7 non-floodfill)",
        x_label="shared bandwidth (KB/s)",
        y_label="observed peers",
    )
    both = figure.new_series("both")
    floodfill_series = figure.new_series("floodfill")
    non_floodfill_series = figure.new_series("non-floodfill")

    pairs: List[Tuple[MonitorSpec, MonitorSpec]] = [
        (
            MonitorSpec(f"ff-{int(bandwidth)}", MonitorMode.FLOODFILL, bandwidth),
            MonitorSpec(f"nff-{int(bandwidth)}", MonitorMode.NON_FLOODFILL, bandwidth),
        )
        for bandwidth in bandwidths_kbps
    ]
    monitors: List[MonitorSpec] = [spec for pair in pairs for spec in pair]
    config = CampaignConfig(
        population=scaled_population_config(
            scale, days=days, seed=seed, horizon_days=horizon_days
        ),
        monitors=monitors,
        days=days,
        seed=seed,
    )
    exposure = _campaign_exposure(config, engine)
    exposure.prefetch_masks(monitors, days)

    for bandwidth, (ff_spec, nff_spec) in zip(bandwidths_kbps, pairs):
        ff_counts: List[int] = []
        nff_counts: List[int] = []
        union_sizes: List[int] = []
        for day in range(days):
            ff_mask = exposure.monitor_day_mask(ff_spec, day)
            nff_mask = exposure.monitor_day_mask(nff_spec, day)
            ff_counts.append(int(np.count_nonzero(ff_mask)))
            nff_counts.append(int(np.count_nonzero(nff_mask)))
            union_sizes.append(int(np.count_nonzero(ff_mask | nff_mask)))
        floodfill_series.add(bandwidth, float(np.mean(ff_counts)))
        non_floodfill_series.add(bandwidth, float(np.mean(nff_counts)))
        both.add(bandwidth, float(np.mean(union_sizes)) if union_sizes else 0.0)
    figure.add_note(
        f"population scale={scale:g}; daily ground truth ≈ "
        f"{config.population.target_daily_population}"
    )
    return figure


def router_count_sweep(
    max_routers: int = 40,
    days: int = 5,
    scale: float = 1.0,
    seed: int = 2018,
    shared_kbps: float = MONITOR_BANDWIDTH_KBPS,
    engine: Optional[ExposureEngine] = None,
    horizon_days: Optional[int] = None,
) -> Tuple[FigureData, CampaignResult]:
    """Figure 4: cumulative observed peers when operating 1..N routers."""
    if max_routers < 1:
        raise ValueError("max_routers must be at least 1")
    floodfill_count = max_routers // 2
    non_floodfill_count = max_routers - floodfill_count
    monitors = standard_monitor_fleet(floodfill_count, non_floodfill_count, shared_kbps)
    config = CampaignConfig(
        population=scaled_population_config(
            scale, days=days, seed=seed, horizon_days=horizon_days
        ),
        monitors=monitors,
        days=days,
        seed=seed,
    )
    result = MeasurementCampaign(config, engine=engine).run()

    figure = FigureData(
        figure_id="figure_04",
        title="Cumulative peers observed by operating 1..N routers",
        x_label="routers under our control",
        y_label="observed peers",
    )
    series = figure.new_series("cumulative observed")
    for count, value in enumerate(result.mean_cumulative_union(), start=1):
        series.add(count, value)
    figure.add_note(
        f"mean daily ground-truth population = {result.mean_daily_online:.0f}"
    )
    return figure, result


# --------------------------------------------------------------------------- #
# Main campaign (Section 5)
# --------------------------------------------------------------------------- #
def run_main_campaign(
    days: int = 90,
    scale: float = 1.0,
    seed: int = 2018,
    floodfill_monitors: int = 10,
    non_floodfill_monitors: int = 10,
    collect_daily_ips: bool = True,
    include_victim_client: bool = True,
    engine: Optional[ExposureEngine] = None,
    horizon_days: Optional[int] = None,
) -> CampaignResult:
    """Run the paper's main 20-router campaign (Figures 5–12, Section 6)."""
    monitors = standard_monitor_fleet(
        floodfill_monitors, non_floodfill_monitors, MONITOR_BANDWIDTH_KBPS
    )
    config = CampaignConfig(
        population=scaled_population_config(
            scale, days=days, seed=seed, horizon_days=horizon_days
        ),
        monitors=monitors,
        days=days,
        seed=seed,
        collect_daily_ips=collect_daily_ips,
        include_victim_client=include_victim_client,
    )
    return MeasurementCampaign(config, engine=engine).run()


# --------------------------------------------------------------------------- #
# Figure suite (one shared exposure for the whole paper)
# --------------------------------------------------------------------------- #
@dataclass
class FigureSuiteResult:
    """Everything a shared-exposure figure-suite run produced."""

    campaign: CampaignResult
    figure2: FigureData
    figure3: FigureData
    figure4: FigureData
    figure4_result: CampaignResult
    longevity: Dict[int, Dict[str, float]]
    ip_churn: IpChurnSummary
    flag_distribution: Dict[str, float]
    bandwidth_breakdown: Dict[str, Dict[str, float]]
    engine: ExposureEngine


def run_figure_suite(
    days: int = 10,
    scale: float = 1.0,
    seed: int = 2018,
    sweep_days: int = 3,
    router_sweep_days: int = 5,
    max_routers: int = 40,
    engine: Optional[ExposureEngine] = None,
) -> FigureSuiteResult:
    """Run the paper's whole figure pipeline off ONE shared exposure.

    The main campaign, the bandwidth sweep (Figure 3), the router-count
    sweep (Figure 4), the single-router calibration (Figure 2), and the
    heavy campaign analyses (longevity, IP churn, capacity) all resolve to
    the same ``(population config, observation seed)`` cache key: the
    sweeps pass ``horizon_days=days`` so they consume a prefix of the main
    campaign's population instead of rebuilding their own.  The whole suite
    therefore costs roughly one campaign's wall time — the property
    ``benchmarks/test_perf_budget.py`` tracks.
    """
    if days < 2:
        raise ValueError("a figure suite needs at least two days")
    if engine is None:
        engine = ExposureEngine()
    campaign = run_main_campaign(
        days=days, scale=scale, seed=seed, engine=engine, horizon_days=days
    )
    figure2 = single_router_experiment(
        days_per_mode=days // 2, scale=scale, seed=seed, engine=engine, horizon_days=days
    )
    figure3 = bandwidth_sweep(
        days=min(sweep_days, days), scale=scale, seed=seed, engine=engine, horizon_days=days
    )
    figure4, figure4_result = router_count_sweep(
        max_routers=max_routers,
        days=min(router_sweep_days, days),
        scale=scale,
        seed=seed,
        engine=engine,
        horizon_days=days,
    )
    thresholds = (7, 30) if days > 30 else ((7,) if days > 7 else (max(1, days // 2),))
    return FigureSuiteResult(
        campaign=campaign,
        figure2=figure2,
        figure3=figure3,
        figure4=figure4,
        figure4_result=figure4_result,
        longevity=longevity(campaign.log, thresholds=thresholds),
        ip_churn=ip_churn(campaign.log),
        flag_distribution=flag_distribution(campaign.log),
        bandwidth_breakdown=bandwidth_breakdown(campaign.log),
        engine=engine,
    )
