"""Probabilistic address-based blocking model (Section 6.2, Figure 13).

The model has two sides:

* a **censor** operating *k* monitoring routers inside the network.  Every
  peer IP address the censor observes is added to a blacklist; the blacklist
  can retain addresses for a configurable number of days (the paper
  evaluates windows of 1, 5, 10, 20, and 30 days);
* a **victim**: a long-term, stable I2P client whose netDb contains the
  RouterInfos (and therefore the peer IPs) it needs to build tunnels.

The *blocking rate* is the fraction of the victim's known peer IPs that
also appear in the censor's blacklist — precisely the paper's metric
("the rate of peer IP addresses seen in the netDb of the victim, which can
also be found in the netDb of routers that are controlled by the censor").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..analysis.series import FigureData
from ..enrichment.base import GeoProvider, ipv4_to_int
from ..enrichment.provider import resolve_provider
from ..enrichment.radix import PrefixIndex
from ..sim.geo import GeoRegistry
from .campaign import CampaignResult
from .monitor import MonitoringRouter

__all__ = [
    "BlockingAssessment",
    "CensorProfile",
    "blocking_rate",
    "censor_blacklist",
    "victim_known_ips",
    "blocking_assessment",
    "blocking_curve",
    "country_blocking_curve",
    "censor_profiles",
    "prefix_blocking_curve",
]


def blocking_rate(censor_ips: Set[str], victim_ips: Set[str]) -> float:
    """Fraction of the victim's known peer IPs covered by the censor."""
    if not victim_ips:
        return 0.0
    return len(censor_ips & victim_ips) / len(victim_ips)


def _validate_router_count(
    monitors: Sequence[MonitoringRouter], router_count: int
) -> None:
    if router_count <= 0:
        raise ValueError("router_count must be positive")
    if router_count > len(monitors):
        raise ValueError(
            f"censor has only {len(monitors)} routers, requested {router_count}"
        )


def censor_blacklist(
    monitors: Sequence[MonitoringRouter],
    router_count: int,
    evaluation_day: int,
    window_days: int,
) -> Set[str]:
    """The censor's blacklist using its first ``router_count`` routers and a
    ``window_days``-day retention window ending on ``evaluation_day``."""
    _validate_router_count(monitors, router_count)
    blacklist: Set[str] = set()
    for monitor in monitors[:router_count]:
        blacklist.update(monitor.ips_in_window(evaluation_day, window_days))
    return blacklist


def victim_known_ips(
    victim: MonitoringRouter, evaluation_day: int, history_days: int = 7
) -> Set[str]:
    """The peer IPs present in the victim's netDb on the evaluation day.

    A stable client accumulates RouterInfos over its recent participation;
    ``history_days`` bounds how far back entries are retained (RouterInfos
    of long-gone peers are eventually dropped from the netDb).
    """
    return victim.ips_in_window(evaluation_day, history_days)


@dataclass(frozen=True)
class BlockingAssessment:
    """One evaluated censor configuration."""

    router_count: int
    window_days: int
    evaluation_day: int
    censor_ip_count: int
    victim_ip_count: int
    blocked_ip_count: int
    rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_count": self.router_count,
            "window_days": self.window_days,
            "evaluation_day": self.evaluation_day,
            "censor_ip_count": self.censor_ip_count,
            "victim_ip_count": self.victim_ip_count,
            "blocked_ip_count": self.blocked_ip_count,
            "rate": self.rate,
        }


def blocking_assessment(
    result: CampaignResult,
    router_count: int,
    window_days: int = 1,
    evaluation_day: Optional[int] = None,
    victim_history_days: int = 2,
) -> BlockingAssessment:
    """Evaluate one (router count, blacklist window) censor configuration."""
    if result.victim is None:
        raise ValueError("the campaign was run without a victim client")
    if evaluation_day is None:
        evaluation_day = len(result.log.daily) - 1
    censor_ips = censor_blacklist(
        result.monitors, router_count, evaluation_day, window_days
    )
    victim_ips = victim_known_ips(result.victim, evaluation_day, victim_history_days)
    blocked = censor_ips & victim_ips
    return BlockingAssessment(
        router_count=router_count,
        window_days=window_days,
        evaluation_day=evaluation_day,
        censor_ip_count=len(censor_ips),
        victim_ip_count=len(victim_ips),
        blocked_ip_count=len(blocked),
        rate=blocking_rate(censor_ips, victim_ips),
    )


def blocking_curve(
    result: CampaignResult,
    router_counts: Optional[Sequence[int]] = None,
    windows: Sequence[int] = (1, 5, 10, 20, 30),
    evaluation_day: Optional[int] = None,
    victim_history_days: int = 2,
) -> FigureData:
    """Figure 13: blocking rate vs censor routers, one series per window.

    Blacklists are accumulated incrementally in fleet order, so evaluating
    N router counts costs one window union per monitor instead of N;
    points are emitted in the caller's ``router_counts`` order.
    """
    if result.victim is None:
        raise ValueError("the campaign was run without a victim client")
    if router_counts is None:
        router_counts = list(range(1, len(result.monitors) + 1))
    if evaluation_day is None:
        evaluation_day = len(result.log.daily) - 1
    max_window = max(windows)
    if evaluation_day + 1 < max_window:
        # Not enough history for the longest window; windows simply use
        # whatever history exists (same behaviour as a censor that started
        # collecting late).
        pass

    figure = FigureData(
        figure_id="figure_13",
        title="Blocking rates under different blacklist time windows",
        x_label="routers under censor control",
        y_label="blocking rate (%)",
    )
    victim_ips = victim_known_ips(result.victim, evaluation_day, victim_history_days)
    figure.add_note(
        f"victim netDb: {len(victim_ips)} peer IPs "
        f"(history window {victim_history_days} days, evaluation day {evaluation_day + 1})"
    )
    counts = [int(count) for count in router_counts]
    for count in counts:
        _validate_router_count(result.monitors, count)
    wanted = set(counts)
    max_count = max(counts, default=0)
    for window in windows:
        series = figure.new_series(f"{window} day" + ("s" if window > 1 else ""))
        # Stream the blacklist incrementally: each additional censor router
        # adds its window union once, instead of rebuilding the full union
        # from scratch at every router count.
        blacklist: Set[str] = set()
        rates: Dict[int, float] = {}
        for count, monitor in enumerate(result.monitors[:max_count], start=1):
            blacklist |= monitor.ips_in_window(evaluation_day, window)
            if count in wanted:
                rates[count] = blocking_rate(blacklist, victim_ips) * 100.0
        for count in counts:
            series.add(count, rates[count])
    return figure


def country_blocking_curve(
    result: CampaignResult,
    countries: Sequence[str],
    evaluation_day: Optional[int] = None,
    victim_history_days: int = 2,
    registry: Optional[GeoRegistry] = None,
    provider: Optional[GeoProvider] = None,
) -> FigureData:
    """Country-level (GeoIP) blocking: netDb loss under national address blocks.

    Models a censor that blocks by *geolocation* instead of an observed
    blacklist: every address that resolves to a blocked country is
    unreachable, no in-network monitoring required.  For each prefix of
    ``countries`` the curve reports the fraction of the victim client's
    known peer IPs that the combined country block removes — the
    country-level analogue of Figure 13's address-blacklist rates.
    """
    if result.victim is None:
        raise ValueError("the campaign was run without a victim client")
    if not countries:
        raise ValueError("at least one country is required")
    if evaluation_day is None:
        evaluation_day = len(result.log.daily) - 1
    geo = resolve_provider(registry, provider)
    victim_ips = victim_known_ips(result.victim, evaluation_day, victim_history_days)
    figure = FigureData(
        figure_id="scenario_country_blocking",
        title="Victim netDb loss under country-level address blocking",
        x_label="countries blocked (cumulative)",
        y_label="victim netDb IPs blocked (%)",
    )
    per_country = figure.new_series("single country")
    cumulative = figure.new_series("cumulative block")
    country_of: Dict[str, Optional[str]] = {
        ip: geo.lookup(ip).country for ip in victim_ips
    }
    total = len(victim_ips)
    blocked_cumulative: Set[str] = set()
    for rank, country in enumerate(countries, start=1):
        in_country = {ip for ip, code in country_of.items() if code == country}
        blocked_cumulative |= in_country
        per_country.add(rank, (len(in_country) / total * 100.0) if total else 0.0)
        cumulative.add(
            rank, (len(blocked_cumulative) / total * 100.0) if total else 0.0
        )
    figure.add_note(
        "countries by rank: "
        + " ".join(f"{rank}:{code}" for rank, code in enumerate(countries, start=1))
    )
    figure.add_note(
        f"victim netDb: {total} peer IPs (evaluation day {evaluation_day + 1})"
    )
    return figure


# --------------------------------------------------------------------------- #
# Prefix-granular censorship (the enrichment plane's blocking model)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CensorProfile:
    """One national censor's block policy: a set of CIDR prefixes.

    Real-world blocking operates at announcement granularity — a censor
    null-routes or filters the prefixes originating in (or serving) its
    jurisdiction, not individual addresses.  The profile carries the
    prefixes the enrichment provider attributes to the censor's country.
    """

    country: str
    prefixes: Tuple[str, ...]

    @property
    def prefix_count(self) -> int:
        return len(self.prefixes)


def censor_profiles(
    countries: Sequence[str],
    registry: Optional[GeoRegistry] = None,
    provider: Optional[GeoProvider] = None,
) -> List[CensorProfile]:
    """Per-country censor profiles from the enrichment provider's tables."""
    if not countries:
        raise ValueError("at least one country is required")
    geo = resolve_provider(registry, provider)
    return [
        CensorProfile(country=country, prefixes=geo.country_prefixes(country))
        for country in countries
    ]


def prefix_blocking_curve(
    result: CampaignResult,
    countries: Sequence[str],
    evaluation_day: Optional[int] = None,
    victim_history_days: int = 2,
    registry: Optional[GeoRegistry] = None,
    provider: Optional[GeoProvider] = None,
) -> FigureData:
    """Victim netDb loss under prefix-granular censorship.

    The prefix-level analogue of :func:`country_blocking_curve`: each
    censor blocks the CIDR prefixes its country originates (its
    :class:`CensorProfile`), and membership is evaluated with the
    longest-prefix-match index over the victim's known peer addresses.
    The x axis is the *cumulative number of blocked prefixes* as censors
    join the blocking coalition in the given order; the two series report
    each censor's own coverage and the coalition's combined coverage of
    the victim's netDb.
    """
    if result.victim is None:
        raise ValueError("the campaign was run without a victim client")
    if evaluation_day is None:
        evaluation_day = len(result.log.daily) - 1
    profiles = censor_profiles(countries, registry, provider)
    victim_ips = victim_known_ips(result.victim, evaluation_day, victim_history_days)
    total = len(victim_ips)
    # IPv6 addresses fall outside an IPv4 prefix block: they stay reachable
    # and only contribute to the denominator.
    addr_values = [
        value
        for value in (ipv4_to_int(ip) for ip in sorted(victim_ips))
        if value is not None
    ]
    addrs = np.asarray(addr_values, dtype=np.uint32)

    figure = FigureData(
        figure_id="scenario_prefix_blocking",
        title="Victim netDb loss under prefix-granular censorship",
        x_label="prefixes blocked (cumulative)",
        y_label="victim netDb IPs blocked (%)",
    )
    per_censor = figure.new_series("single censor")
    cumulative = figure.new_series("cumulative block")
    blocked = np.zeros(addrs.size, dtype=bool)
    prefix_cursor = 0
    labels: List[str] = []
    for rank, profile in enumerate(profiles, start=1):
        if profile.prefixes and addrs.size:
            index = PrefixIndex((prefix, 1) for prefix in profile.prefixes)
            own = index.lookup_batch(addrs) != 0
        else:
            own = np.zeros(addrs.size, dtype=bool)
        blocked |= own
        prefix_cursor += profile.prefix_count
        per_censor.add(
            prefix_cursor, (int(own.sum()) / total * 100.0) if total else 0.0
        )
        cumulative.add(
            prefix_cursor, (int(blocked.sum()) / total * 100.0) if total else 0.0
        )
        labels.append(f"{rank}:{profile.country}({profile.prefix_count})")
    figure.add_note("censors by rank (prefixes): " + " ".join(labels))
    figure.add_note(
        f"victim netDb: {total} peer IPs (evaluation day {evaluation_day + 1})"
    )
    return figure
