"""Declarative scenario engine: experiment specs over the shared exposure cache.

The paper's results are one instantiation of a general measurement design —
N floodfill monitors observing a churning peer population, then deriving
geography, longevity, blocking, and bridge analyses from the observation
logs.  Historically every experiment was a bespoke function
(``run_main_campaign``, the two sweeps, the figure suite); this module
turns each of them — plus new what-if designs — into **data**:

* :class:`ScenarioSpec` describes one experiment declaratively: the
  population scale/horizon, the monitor fleet, interventions
  (blocking windows, country blocks, reseed denial), the sweep axis, and
  the analyses to run on the resulting observation log;
* a process-wide **registry** (:func:`register_scenario`,
  :func:`get_scenario`, :func:`list_scenarios`) names every spec so the CLI
  can enumerate and run them (``repro scenarios`` / ``repro run <name>``);
* :func:`run_scenario` is the one engine that executes any spec on top of a
  shared :class:`~repro.sim.exposure.ExposureEngine` — so every scenario
  benefits from the in-process exposure LRU *and* the on-disk npz cache,
  and scenarios that share a population config share all of its work.

Adding a new experiment is a registry entry, not a new module: pick a
``kind`` (the execution template), parameterise it, and choose analyses
from :data:`ANALYSES`.

Execution templates (``ScenarioSpec.kind``)
-------------------------------------------
``campaign``
    A monitor fleet observes for N days; the listed analyses run on the
    observation log (the paper's Section 5/6 pipeline).
``mode_switch``
    One router, floodfill for the first half and non-floodfill for the
    second (Figure 2's calibration design).
``bandwidth_sweep``
    Floodfill + non-floodfill pairs across a bandwidth axis (Figure 3).
``router_sweep``
    Cumulative coverage of 1..N routers (Figure 4).
``suite``
    The whole figure pipeline off ONE shared exposure (Figures 2–12).
``monitor_fraction``
    What-if: how does coverage degrade when only a fraction of the fleet
    is deployed?  Pure mask consumer over the shared exposure.
``country_blocking``
    What-if: country-level (GeoIP) blocking — how much of a stable
    client's netDb do national address blocks remove?
``prefix_blocking``
    What-if: prefix-granular censorship — each national censor blocks the
    CIDR prefixes the enrichment provider attributes to its country, and
    membership is longest-prefix-match over the victim's netDb
    (``repro run prefix-blocking``, honouring ``--geo-provider``).
``reseed_denial``
    What-if: a cohort of *new* clients under reseed-server denial, with
    and without manual ``i2pseeds.su3`` rescue (Section 6.1).
``netdb_scale``
    Message-level: netDb publish throughput (DatabaseStoreMessages per
    second) across network sizes on the batched message plane
    (``repro run netdb-scale``, optionally ``--router-count N``).
``fault_injection``
    Message-level: netDb degradation under a deterministic
    :class:`repro.sim.faults.FaultPlan` — floodfill takedowns, reseed
    outages, lossy links — measuring per-round publish success, lookup
    latency, and coverage (``repro run floodfill-takedown`` /
    ``reseed-outage`` / ``lossy-network``).

All scenario outputs are collected in a :class:`ScenarioResult`
(figures by id, key/value summaries, rendered text tables).  Figures
produced through :func:`run_scenario` are byte-identical to the bespoke
entry points at a fixed seed — locked in by ``tests/core/test_scenario.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.series import FigureData
from ..sim.exposure import ExposureEngine
from ..sim.observation import standard_monitor_fleet
from .blocking import blocking_curve, country_blocking_curve, prefix_blocking_curve
from .bridges import bridge_pool_summary, bridge_survival_curve
from .campaign import (
    MONITOR_BANDWIDTH_KBPS,
    CampaignConfig,
    CampaignResult,
    FigureSuiteResult,
    MeasurementCampaign,
    bandwidth_sweep,
    campaign_observation_seed,
    router_count_sweep,
    run_figure_suite,
    scaled_population_config,
    single_router_experiment,
)
from .capacity_analysis import capacity_figure, estimate_population
from .churn_analysis import ip_churn, ip_churn_figure, longevity_figure, longevity_summary
from .geography import (
    asn_figure,
    asn_span_figure,
    country_distribution,
    country_figure,
    summarize_geography,
)
from .population import (
    classify_unknown_ip,
    daily_population_figure,
    summarize_population,
    unknown_ip_figure,
)
from .reporting import render_campaign_summary, render_table1
from .reseed_blocking import reseed_blocking_curve

__all__ = [
    "FleetSpec",
    "ScenarioSpec",
    "ScenarioResult",
    "ANALYSES",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "resolve_scenario",
    "run_scenario",
    "scenario_exposure_digest",
]


@dataclass(frozen=True)
class FleetSpec:
    """Monitor fleet shape: interleaved floodfill / non-floodfill routers."""

    floodfill: int = 10
    non_floodfill: int = 10
    shared_kbps: float = MONITOR_BANDWIDTH_KBPS

    @property
    def size(self) -> int:
        return self.floodfill + self.non_floodfill

    def monitors(self):
        return standard_monitor_fleet(
            self.floodfill, self.non_floodfill, self.shared_kbps
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declaratively described experiment.

    ``params`` carries the kind-specific knobs (sweep axes, intervention
    settings); everything an executor reads from it is documented on the
    executor below.  ``analyses`` names entries of :data:`ANALYSES` to run
    on the campaign's observation log (``campaign`` kind only).
    """

    name: str
    description: str
    kind: str = "campaign"
    days: int = 20
    fleet: FleetSpec = field(default_factory=FleetSpec)
    collect_daily_ips: bool = False
    include_victim: bool = False
    analyses: Tuple[str, ...] = ()
    params: Mapping[str, object] = field(default_factory=dict)
    #: Simulated-network size for message-level kinds (``netdb_scale``):
    #: when set, the scenario runs at exactly this many routers instead
    #: of its default sweep axis.  ``repro run --router-count`` maps here.
    router_count: Optional[int] = None


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    scale: float
    seed: int
    figures: Dict[str, FigureData] = field(default_factory=dict)
    summaries: Dict[str, Dict[str, object]] = field(default_factory=dict)
    tables: Dict[str, str] = field(default_factory=dict)
    campaign: Optional[CampaignResult] = None
    suite: Optional[FigureSuiteResult] = None
    engine: Optional[ExposureEngine] = None
    #: The exposure-cache digest this run resolved through (None for
    #: message-level kinds that never touch the exposure plane).  The
    #: campaign service's grid planner groups jobs on this value so every
    #: job sharing a population streams from one ``SharedExposure`` build.
    exposure_digest: Optional[str] = None

    def add_figure(self, figure: FigureData) -> None:
        self.figures[figure.figure_id] = figure


# --------------------------------------------------------------------------- #
# Analyses registry (campaign post-processing)
# --------------------------------------------------------------------------- #
def _analysis_population(result: CampaignResult, out: ScenarioResult) -> None:
    out.summaries["population"] = summarize_population(result.log).as_dict()
    out.summaries["unknown_ip"] = dict(classify_unknown_ip(result.log))
    out.add_figure(daily_population_figure(result.log))
    out.add_figure(unknown_ip_figure(result.log))


def _analysis_longevity(result: CampaignResult, out: ScenarioResult) -> None:
    out.summaries["longevity"] = longevity_summary(result.log).as_dict()
    out.add_figure(longevity_figure(result.log))


def _analysis_ip_churn(result: CampaignResult, out: ScenarioResult) -> None:
    out.summaries["ip_churn"] = ip_churn(result.log).as_dict()
    out.add_figure(ip_churn_figure(result.log))


def _analysis_capacity(result: CampaignResult, out: ScenarioResult) -> None:
    out.add_figure(capacity_figure(result.log))
    out.tables["table1"] = render_table1(result.log)
    out.summaries["floodfill_estimate"] = estimate_population(result.log).as_dict()


def _analysis_geography(result: CampaignResult, out: ScenarioResult) -> None:
    out.summaries["geography"] = summarize_geography(result.log).as_dict()
    out.add_figure(country_figure(result.log))
    out.add_figure(asn_figure(result.log))
    out.add_figure(asn_span_figure(result.log))


def _analysis_blocking(result: CampaignResult, out: ScenarioResult) -> None:
    out.add_figure(blocking_curve(result))


def _analysis_bridges(result: CampaignResult, out: ScenarioResult) -> None:
    out.summaries["bridge_pool"] = bridge_pool_summary(result).as_dict()
    out.add_figure(bridge_survival_curve(result))


def _analysis_summary(result: CampaignResult, out: ScenarioResult) -> None:
    out.tables["campaign_summary"] = render_campaign_summary(result)


#: Name → analysis function over a finished campaign.  All of them stream
#: off the observation log's accumulator arrays; none materialises
#: per-peer aggregates.
ANALYSES: Dict[str, Callable[[CampaignResult, ScenarioResult], None]] = {
    "population": _analysis_population,
    "longevity": _analysis_longevity,
    "ip_churn": _analysis_ip_churn,
    "capacity": _analysis_capacity,
    "geography": _analysis_geography,
    "blocking": _analysis_blocking,
    "bridges": _analysis_bridges,
    "summary": _analysis_summary,
}


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace_existing: bool = False) -> ScenarioSpec:
    """Register a spec under its name; rejects silent redefinition."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    unknown = [a for a in spec.analyses if a not in ANALYSES]
    if unknown:
        raise ValueError(f"unknown analyses for scenario {spec.name!r}: {unknown}")
    if spec.kind not in _EXECUTORS:
        raise ValueError(f"unknown scenario kind {spec.kind!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def list_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #
def _campaign_config(
    spec: ScenarioSpec, scale: float, seed: int, days: int, horizon: Optional[int]
) -> CampaignConfig:
    return CampaignConfig(
        population=scaled_population_config(
            scale, days=days, seed=seed, horizon_days=horizon
        ),
        monitors=spec.fleet.monitors(),
        days=days,
        seed=seed,
        collect_daily_ips=spec.collect_daily_ips,
        include_victim_client=spec.include_victim,
    )


def _execute_campaign(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    config = _campaign_config(spec, scale, seed, days, None)
    result = MeasurementCampaign(config, engine=engine).run()
    out.campaign = result
    for name in spec.analyses:
        ANALYSES[name](result, out)


def _execute_mode_switch(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    days_per_mode = int(spec.params.get("days_per_mode", max(1, days // 2)))
    out.add_figure(
        single_router_experiment(
            days_per_mode=days_per_mode,
            scale=scale,
            seed=seed,
            shared_kbps=spec.fleet.shared_kbps,
            engine=engine,
        )
    )


def _execute_bandwidth_sweep(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    bandwidths = tuple(
        spec.params.get("bandwidths_kbps", (128, 256, 1000, 2000, 3000, 4000, 5000))
    )
    out.add_figure(
        bandwidth_sweep(
            bandwidths_kbps=bandwidths,
            days=days,
            scale=scale,
            seed=seed,
            engine=engine,
        )
    )


def _execute_router_sweep(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    max_routers = int(spec.params.get("max_routers", spec.fleet.size))
    figure, result = router_count_sweep(
        max_routers=max_routers,
        days=days,
        scale=scale,
        seed=seed,
        shared_kbps=spec.fleet.shared_kbps,
        engine=engine,
    )
    out.add_figure(figure)
    out.campaign = result


def _execute_suite(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    suite = run_figure_suite(
        days=days,
        scale=scale,
        seed=seed,
        sweep_days=int(spec.params.get("sweep_days", 3)),
        router_sweep_days=int(spec.params.get("router_sweep_days", 5)),
        max_routers=int(spec.params.get("max_routers", 40)),
        engine=engine,
    )
    out.suite = suite
    out.campaign = suite.campaign
    out.add_figure(suite.figure2)
    out.add_figure(suite.figure3)
    out.add_figure(suite.figure4)
    out.summaries["longevity_thresholds"] = {
        str(threshold): values for threshold, values in suite.longevity.items()
    }
    out.summaries["ip_churn"] = suite.ip_churn.as_dict()
    out.tables["table1"] = render_table1(suite.campaign.log)
    for name in spec.analyses:
        ANALYSES[name](suite.campaign, out)


def _execute_monitor_fraction(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    """What-if: deploy only a fraction of the monitor fleet.

    A pure mask consumer: for each fraction of the (interleaved) fleet the
    mean daily coverage of the ground-truth population is a boolean union
    over the shared exposure's cached masks — no monitors, logs, or
    aggregates are materialised.
    """
    fractions = tuple(
        float(f)
        for f in spec.params.get(
            "fractions", (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
        )
    )
    if not fractions or min(fractions) <= 0 or max(fractions) > 1:
        raise ValueError("fractions must lie in (0, 1]")
    config = _campaign_config(spec, scale, seed, days, None)
    exposure = engine.get(
        config.population,
        campaign_observation_seed(config.seed),
        days=days,
    )
    monitors = config.monitors
    figure = FigureData(
        figure_id="scenario_monitor_fraction",
        title="Daily coverage vs deployed fraction of the monitor fleet",
        x_label="deployed fraction of fleet",
        y_label="mean daily coverage (%)",
    )
    coverage_series = figure.new_series("coverage of daily population")
    routers_series = figure.new_series("routers deployed")
    online = exposure.daily_online(days)
    counts = [max(1, int(round(fraction * len(monitors)))) for fraction in fractions]
    needed = set(counts)
    # Only the largest deployment's masks are ever consumed.
    exposure.prefetch_masks(monitors[: max(needed)], days)
    # One incremental union pass per day: each monitor's mask is OR-ed in
    # once, and coverage is snapshotted at every deployment size of
    # interest — instead of rebuilding the union per (fraction, day) pair.
    coverage_at: Dict[int, List[float]] = {count: [] for count in needed}
    for day in range(days):
        union = np.zeros(exposure.view(day).online_count, dtype=bool)
        for deployed, monitor_spec in enumerate(monitors[: max(needed)], start=1):
            union |= exposure.monitor_day_mask(monitor_spec, day)
            if deployed in needed:
                coverage_at[deployed].append(
                    int(np.count_nonzero(union)) / online[day] * 100.0
                    if online[day]
                    else 0.0
                )
    for fraction, count in zip(fractions, counts):
        coverage_series.add(fraction, float(np.mean(coverage_at[count])))
        routers_series.add(fraction, count)
    figure.add_note(
        f"fleet: {spec.fleet.floodfill} floodfill + "
        f"{spec.fleet.non_floodfill} non-floodfill at "
        f"{spec.fleet.shared_kbps:.0f} KB/s"
    )
    out.add_figure(figure)
    out.summaries["monitor_fraction"] = {
        "fleet_size": len(monitors),
        "full_fleet_coverage_pct": coverage_series.points[-1][1],
        "half_fleet_coverage_pct": next(
            (y for x, y in coverage_series.points if abs(x - 0.5) < 1e-9),
            None,
        ),
    }


def _execute_country_blocking(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    """What-if: national GeoIP blocks instead of observed blacklists."""
    config = _campaign_config(spec, scale, seed, days, None)
    result = MeasurementCampaign(config, engine=engine).run()
    out.campaign = result
    countries = spec.params.get("countries")
    if not countries:
        # Default: the top observed countries, most-populated first.
        ranked = country_distribution(result.log).most_common(
            int(spec.params.get("top_n", 6))
        )
        countries = tuple(code for code, _ in ranked)
    out.add_figure(country_blocking_curve(result, tuple(countries)))
    out.summaries["country_blocking"] = {"countries": tuple(countries)}
    for name in spec.analyses:
        ANALYSES[name](result, out)


def _execute_prefix_blocking(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    """What-if: prefix-granular censorship via the enrichment provider.

    Censor countries come from ``spec.params`` or default to the top
    observed countries; each censor's blocked-prefix set comes from the
    session-active enrichment provider (``--geo-provider``/``--geo-db``),
    so swapping in a compiled range database changes the censor profiles
    and the curve consistently.
    """
    from .blocking import censor_profiles

    config = _campaign_config(spec, scale, seed, days, None)
    result = MeasurementCampaign(config, engine=engine).run()
    out.campaign = result
    countries = spec.params.get("countries")
    if not countries:
        ranked = country_distribution(result.log).most_common(
            int(spec.params.get("top_n", 6))
        )
        countries = tuple(code for code, _ in ranked)
    countries = tuple(countries)
    out.add_figure(prefix_blocking_curve(result, countries))
    profiles = censor_profiles(countries)
    out.summaries["prefix_blocking"] = {
        "countries": countries,
        "prefix_counts": {
            profile.country: profile.prefix_count for profile in profiles
        },
        "total_prefixes": sum(profile.prefix_count for profile in profiles),
    }
    for name in spec.analyses:
        ANALYSES[name](result, out)


def _execute_reseed_denial(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    """What-if: a cohort of new clients bootstrapping under reseed denial.

    Builds a bootstrap netDb from a small private population (reseed needs
    row-oriented RouterInfos, which the read-only exposure cache does not
    carry) and sweeps the number of blocked reseed servers, with and
    without manual-reseed rescue.
    """
    from .usability import client_netdb_from_dayview
    from ..sim.population import I2PPopulation, PopulationConfig

    netdb_size = int(spec.params.get("netdb_size", 400))
    clients = int(spec.params.get("clients", 200))
    manual_share = float(spec.params.get("manual_reseed_share", 0.25))
    population = I2PPopulation(
        PopulationConfig(
            target_daily_population=max(200, int(round(2000 * scale * 4))),
            horizon_days=2,
            seed=seed + 11,
        )
    )
    view = population.day_view(0)
    routerinfos = client_netdb_from_dayview(
        population,
        view,
        size=min(netdb_size, max(50, view.online_count // 2)),
        rng=random.Random(seed),
    )
    figure = reseed_blocking_curve(
        routerinfos,
        clients=clients,
        manual_reseed_share=manual_share,
        seed=seed,
    )
    out.add_figure(figure)
    no_rescue = figure.get("no manual reseed")
    out.summaries["reseed_denial"] = {
        "cohort_clients": clients,
        "manual_reseed_share": manual_share,
        "netdb_routerinfos": len(routerinfos),
        "fully_blocked_success_pct": no_rescue.points[-1][1],
    }


def _execute_netdb_scale(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    """netDb message-plane throughput sweep (routers vs DSMs/second).

    A message-level scenario: it stands up real simulated networks on
    the batched netDb plane instead of consuming the exposure cache.
    ``spec.router_count`` (or ``repro run --router-count``) pins the
    sweep to a single network size.
    """
    from ..sim.netdb_scale import DEFAULT_ROUTER_COUNTS, measure_netdb_scale

    if spec.router_count is not None:
        counts: Tuple[int, ...] = (int(spec.router_count),)
    else:
        counts = tuple(
            int(c) for c in spec.params.get("router_counts", DEFAULT_ROUTER_COUNTS)
        )
    if not counts or min(counts) < 2:
        raise ValueError("router_counts must contain sizes of at least 2")
    figure = FigureData(
        figure_id="scenario_netdb_scale",
        title="netDb publish throughput vs network size",
        x_label="routers",
        y_label="DatabaseStoreMessages / second",
    )
    throughput = figure.new_series("batched message plane")
    per_round = figure.new_series("messages per publish round")
    summary: Dict[str, object] = {}
    for count in counts:
        point = measure_netdb_scale(
            count,
            floodfill_fraction=float(spec.params.get("floodfill_fraction", 0.1)),
            seed=seed,
            convergence_rounds=int(spec.params.get("convergence_rounds", 3)),
            warmup_limit=int(spec.params.get("warmup_limit", 16)),
            measure_rounds=int(spec.params.get("measure_rounds", 5)),
        )
        throughput.add(count, point.messages_per_second)
        per_round.add(count, point.messages_per_round)
        summary[str(count)] = point.as_dict()
    figure.add_note(
        "steady-state publish rounds on the batched message plane; "
        "median round time over the measured window"
    )
    out.add_figure(figure)
    out.summaries["netdb_scale"] = summary


def _execute_fault_injection(
    spec: ScenarioSpec,
    out: ScenarioResult,
    scale: float,
    seed: int,
    days: int,
    engine: ExposureEngine,
) -> None:
    """netDb degradation under a deterministic fault plan.

    A message-level scenario: it converges a real simulated network,
    attaches the :class:`~repro.sim.faults.FaultPlan` described by
    ``spec.params``, and records per-round publish success, lookup
    latency, and netDb coverage while the plan's failure windows open
    and close.  ``spec.router_count`` (or ``repro run --router-count``)
    pins the network size.
    """
    from ..sim.faults import measure_degradation, scenario_fault_plan

    router_count = int(
        spec.router_count
        if spec.router_count is not None
        else spec.params.get("router_count", 300)
    )
    if router_count < 2:
        raise ValueError("router count must be at least 2")
    round_hours = float(spec.params.get("round_hours", 0.25))
    plan = scenario_fault_plan(spec.params, round_seconds=round_hours * 3600.0)
    result = measure_degradation(
        plan,
        router_count=router_count,
        floodfill_fraction=float(spec.params.get("floodfill_fraction", 0.1)),
        seed=seed,
        convergence_rounds=int(spec.params.get("convergence_rounds", 3)),
        rounds=int(spec.params.get("rounds", 24)),
        round_hours=round_hours,
        lookup_probes=int(spec.params.get("lookup_probes", 8)),
        joiners_per_round=int(spec.params.get("joiners_per_round", 0)),
    )
    figure = FigureData(
        figure_id="scenario_fault_injection",
        title=f"netDb degradation under faults ({spec.name})",
        x_label="publish round",
        y_label="ratio",
    )
    success = figure.new_series("publish success ratio")
    coverage = figure.new_series("netDb coverage")
    for sample in result.samples:
        success.add(sample.round_index, sample.publish_success_ratio)
        coverage.add(sample.round_index, sample.netdb_coverage)
    figure.add_note(
        "publish success = publishers reaching full flood redundancy that "
        "round; coverage = mean fraction of the network present per "
        "floodfill netDb"
    )
    out.add_figure(figure)
    out.summaries["fault_injection"] = result.summary()


#: Kinds whose execution has no campaign day horizon (a ``days`` override
#: would silently change nothing, so ``run_scenario`` rejects it).
_DAYLESS_KINDS = {"reseed_denial", "netdb_scale", "fault_injection"}

_EXECUTORS: Dict[
    str,
    Callable[[ScenarioSpec, ScenarioResult, float, int, int, ExposureEngine], None],
] = {
    "campaign": _execute_campaign,
    "mode_switch": _execute_mode_switch,
    "bandwidth_sweep": _execute_bandwidth_sweep,
    "router_sweep": _execute_router_sweep,
    "suite": _execute_suite,
    "monitor_fraction": _execute_monitor_fraction,
    "country_blocking": _execute_country_blocking,
    "prefix_blocking": _execute_prefix_blocking,
    "reseed_denial": _execute_reseed_denial,
    "netdb_scale": _execute_netdb_scale,
    "fault_injection": _execute_fault_injection,
}


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
#: Kinds that consume :attr:`ScenarioSpec.router_count` (a
#: ``--router-count`` override is rejected for the others).
_ROUTER_COUNT_KINDS = {"netdb_scale", "fault_injection"}

#: Kinds whose executor resolves a shared exposure.  Everything else is
#: message-level (or builds its own private population) and has no
#: exposure-cache digest.
_EXPOSURE_KINDS = {
    "campaign",
    "mode_switch",
    "bandwidth_sweep",
    "router_sweep",
    "suite",
    "monitor_fraction",
    "country_blocking",
    "prefix_blocking",
}


def scenario_exposure_digest(
    scenario: object, scale: float = 1.0, seed: int = 2018
) -> Optional[str]:
    """The exposure-cache digest ``run_scenario`` will resolve through.

    Every exposure-consuming executor keys the cache on
    ``scaled_population_config(scale, days=D, seed=seed)`` plus the derived
    observation seed, where ``D`` is the spec's day horizon (``mode_switch``
    runs ``2 x days_per_mode`` days).  Reporting that digest *before*
    execution lets the campaign service plan a grid as digest groups —
    every job in a group shares one ``SharedExposure`` build.  Returns
    ``None`` for kinds that never touch the exposure plane.
    """
    from ..sim.exposure_cache import exposure_digest

    spec = resolve_scenario(scenario)
    if spec.kind not in _EXPOSURE_KINDS:
        return None
    days = spec.days
    if spec.kind == "mode_switch":
        days = 2 * int(spec.params.get("days_per_mode", max(1, spec.days // 2)))
    config = scaled_population_config(scale, days=days, seed=seed)
    return exposure_digest(config, campaign_observation_seed(seed))


def resolve_scenario(
    scenario: object,
    days: Optional[int] = None,
    router_count: Optional[int] = None,
) -> ScenarioSpec:
    """Resolve a name or spec to a validated, adjusted :class:`ScenarioSpec`.

    Raises ``KeyError`` for unknown names, ``TypeError`` for wrong types,
    and ``ValueError`` for invalid kinds / day / router-count overrides —
    the user-input errors a CLI wants to catch, separated from execution
    itself.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if not isinstance(spec, ScenarioSpec):
        raise TypeError("scenario must be a registered name or a ScenarioSpec")
    if spec.kind not in _EXECUTORS:
        raise ValueError(f"unknown scenario kind {spec.kind!r}")
    if days is not None:
        if spec.kind in _DAYLESS_KINDS:
            raise ValueError(
                f"scenario kind {spec.kind!r} has no day horizon; "
                f"the days override does not apply"
            )
        spec = replace(spec, days=days)
    if router_count is not None:
        if spec.kind not in _ROUTER_COUNT_KINDS:
            raise ValueError(
                f"scenario kind {spec.kind!r} has no simulated-network size; "
                f"the router-count override does not apply"
            )
        if router_count < 2:
            raise ValueError("router count must be at least 2")
        spec = replace(spec, router_count=router_count)
    if spec.days <= 0:
        raise ValueError("a scenario needs at least one day")
    return spec


def run_scenario(
    scenario: object,
    scale: float = 1.0,
    seed: int = 2018,
    days: Optional[int] = None,
    engine: Optional[ExposureEngine] = None,
    cache_dir: Optional[object] = None,
    router_count: Optional[int] = None,
) -> ScenarioResult:
    """Execute one scenario (by name or spec) and collect its outputs.

    ``days`` overrides the spec's default horizon; ``router_count`` the
    simulated-network size of message-level kinds; ``engine`` an existing
    exposure engine (so several scenarios share populations); ``cache_dir``
    a directory for the cross-process npz exposure cache (ignored when an
    explicit engine is passed — configure the engine instead).
    """
    spec = resolve_scenario(scenario, days, router_count)
    if engine is None:
        engine = ExposureEngine(cache_dir=cache_dir)
    out = ScenarioResult(
        spec=spec,
        scale=scale,
        seed=seed,
        engine=engine,
        exposure_digest=scenario_exposure_digest(spec, scale=scale, seed=seed),
    )
    _EXECUTORS[spec.kind](spec, out, scale, seed, spec.days, engine)
    return out


# --------------------------------------------------------------------------- #
# The registered scenario catalogue
# --------------------------------------------------------------------------- #
register_scenario(
    ScenarioSpec(
        name="main_campaign",
        description="The paper's 20-router, 90-day main campaign with the "
        "full Section 5/6 analysis pipeline (Figures 5-13)",
        kind="campaign",
        days=90,
        collect_daily_ips=True,
        include_victim=True,
        analyses=(
            "population",
            "longevity",
            "ip_churn",
            "capacity",
            "geography",
            "blocking",
            "bridges",
            "summary",
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="single_router",
        description="Figure 2 calibration: one high-end router, floodfill "
        "for five days then non-floodfill for five",
        kind="mode_switch",
        days=10,
        fleet=FleetSpec(floodfill=1, non_floodfill=0),
    )
)
register_scenario(
    ScenarioSpec(
        name="bandwidth_sweep",
        description="Figure 3: observed peers vs shared bandwidth for "
        "floodfill/non-floodfill pairs (128 KB/s - 5 MB/s)",
        kind="bandwidth_sweep",
        days=3,
    )
)
register_scenario(
    ScenarioSpec(
        name="router_count_sweep",
        description="Figure 4: cumulative peers observed while operating "
        "1-40 monitoring routers",
        kind="router_sweep",
        days=5,
        fleet=FleetSpec(floodfill=20, non_floodfill=20),
        params={"max_routers": 40},
    )
)
register_scenario(
    ScenarioSpec(
        name="figure_suite",
        description="The whole figure pipeline (campaign + Figures 2-4 + "
        "heavy analyses) off ONE shared exposure",
        kind="suite",
        days=10,
        params={"max_routers": 40, "sweep_days": 3, "router_sweep_days": 5},
    )
)
register_scenario(
    ScenarioSpec(
        name="monitor_fraction_sweep",
        description="What-if: coverage of the daily population when only a "
        "fraction of the 20-router fleet is deployed",
        kind="monitor_fraction",
        days=5,
    )
)
register_scenario(
    ScenarioSpec(
        name="country_blocking",
        description="What-if: country-level GeoIP blocking - victim netDb "
        "loss under cumulative national address blocks",
        kind="country_blocking",
        days=10,
        # The GeoIP censor needs no fleet blacklists — only the victim's
        # netDb, and the victim client always collects daily IPs.
        include_victim=True,
    )
)
register_scenario(
    ScenarioSpec(
        name="prefix-blocking",
        description="What-if: prefix-granular censorship - victim netDb "
        "loss as national censors block their CIDR prefixes (enrichment "
        "provider supplies the censor profiles)",
        kind="prefix_blocking",
        days=10,
        # Like the GeoIP censor: only the victim's netDb is consumed.
        include_victim=True,
    )
)
register_scenario(
    ScenarioSpec(
        name="netdb-scale",
        description="netDb message-plane throughput sweep: DSMs/second at "
        "300 / 1000 / 10000 routers on the batched plane",
        kind="netdb_scale",
        days=1,
        params={"router_counts": (300, 1000, 10000)},
    )
)
register_scenario(
    ScenarioSpec(
        name="floodfill-takedown",
        description="Fault injection: half the floodfills crash for rounds "
        "8-16 - publish success drops, then recovers after restart",
        kind="fault_injection",
        days=1,
        params={
            "crash_fraction": 0.5,
            "outage_start_round": 8,
            "outage_end_round": 16,
            "rounds": 24,
        },
    )
)
register_scenario(
    ScenarioSpec(
        name="reseed-outage",
        description="Fault injection: every reseed server is unreachable "
        "for rounds 6-14 while new routers keep trying to join",
        kind="fault_injection",
        days=1,
        params={
            "reseed_fraction": 1.0,
            "outage_start_round": 6,
            "outage_end_round": 14,
            "rounds": 20,
            "joiners_per_round": 3,
        },
    )
)
register_scenario(
    ScenarioSpec(
        name="lossy-network",
        description="Fault injection: 20% iid message loss on every link "
        "for the whole run - retries and timeouts absorb the loss",
        kind="fault_injection",
        days=1,
        params={"drop_probability": 0.2, "rounds": 16},
    )
)
register_scenario(
    ScenarioSpec(
        name="reseed_denial",
        description="What-if: new-client cohort under reseed-server denial, "
        "with and without manual i2pseeds.su3 rescue",
        kind="reseed_denial",
        days=1,
    )
)
