"""Geographic and autonomous-system analysis: Figures 10–12.

The paper resolves peer IP addresses to countries and ASNs with an offline
MaxMind database and counts each peer once per country/AS it was seen in
(Section 5.3.2); a peer seen with several IPs inside the same AS or country
is counted only once there.  The analyses here stream straight off an
:class:`ObservationLog`'s columnar address-event accumulators (one
``np.unique`` pass over interned (peer, country/ASN) keys) and a
:class:`GeoRegistry` (the offline MaxMind stand-in); no per-peer aggregate
objects are materialised.

* Figure 10 — top-20 countries by observed peers, with a cumulative-share
  series; plus the poor-press-freedom group summary the paper highlights.
* Figure 11 — top-20 ASes by observed peers, with cumulative share.
* Figure 12 — the number of distinct ASes that multi-IP peers appear in.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.series import FigureData
from ..enrichment.base import GeoProvider
from ..enrichment.provider import resolve_provider
from ..sim.geo import GeoRegistry, PRESS_FREEDOM_HIDDEN_THRESHOLD
from .monitor import ObservationLog

__all__ = [
    "GeographicSummary",
    "country_distribution",
    "asn_distribution",
    "asn_span",
    "country_figure",
    "asn_figure",
    "asn_span_figure",
    "press_freedom_summary",
]


@dataclass(frozen=True)
class GeographicSummary:
    """Headline geographic findings (Section 5.3.2)."""

    countries_observed: int
    top_country: str
    top_country_peers: int
    top6_share: float
    top20_share: float
    poor_press_freedom_countries: int
    poor_press_freedom_peers: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "countries_observed": self.countries_observed,
            "top_country": self.top_country,
            "top_country_peers": self.top_country_peers,
            "top6_share": self.top6_share,
            "top20_share": self.top20_share,
            "poor_press_freedom_countries": self.poor_press_freedom_countries,
            "poor_press_freedom_peers": self.poor_press_freedom_peers,
        }


def country_distribution(log: ObservationLog) -> Counter:
    """Peers per country (a peer counts once in every country it was seen in).

    Streams off the observation log's columnar address-event accumulators;
    no per-peer aggregates are materialised for columnar runs.
    """
    return log.country_counts()


def asn_distribution(log: ObservationLog) -> Counter:
    """Peers per ASN (a peer counts once in every AS it was seen in)."""
    return log.asn_counts()


def asn_span(log: ObservationLog) -> Counter:
    """Histogram of the number of distinct ASes per known-IP peer."""
    return log.asn_span_counts()


def country_figure(log: ObservationLog, top_n: int = 20) -> FigureData:
    """Figure 10: top-N countries plus cumulative percentage."""
    counts = country_distribution(log)
    total = sum(counts.values())
    figure = FigureData(
        figure_id="figure_10",
        title="Top countries where I2P peers reside",
        x_label="rank",
        y_label="observed peers",
    )
    peers_series = figure.new_series("observed peers")
    cumulative_series = figure.new_series("cumulative percentage")
    running = 0
    labels: List[str] = []
    for rank, (country, count) in enumerate(counts.most_common(top_n), start=1):
        running += count
        peers_series.add(rank, count)
        cumulative_series.add(rank, (running / total * 100.0) if total else 0.0)
        labels.append(f"{rank}:{country}")
    figure.add_note("countries by rank: " + " ".join(labels))
    return figure


def asn_figure(log: ObservationLog, top_n: int = 20) -> FigureData:
    """Figure 11: top-N autonomous systems plus cumulative percentage."""
    counts = asn_distribution(log)
    total = sum(counts.values())
    figure = FigureData(
        figure_id="figure_11",
        title="Top autonomous systems where I2P peers reside",
        x_label="rank",
        y_label="observed peers",
    )
    peers_series = figure.new_series("observed peers")
    cumulative_series = figure.new_series("cumulative percentage")
    running = 0
    labels: List[str] = []
    for rank, (asn, count) in enumerate(counts.most_common(top_n), start=1):
        running += count
        peers_series.add(rank, count)
        cumulative_series.add(rank, (running / total * 100.0) if total else 0.0)
        labels.append(f"{rank}:AS{asn}")
    figure.add_note("ASes by rank: " + " ".join(labels))
    return figure


def asn_span_figure(log: ObservationLog, max_asns: int = 10) -> FigureData:
    """Figure 12: number of autonomous systems multi-IP peers reside in."""
    spans = asn_span(log)
    total = sum(spans.values())
    figure = FigureData(
        figure_id="figure_12",
        title="Number of autonomous systems in which peers reside",
        x_label="number of autonomous systems",
        y_label="observed peers",
    )
    peers_series = figure.new_series("observed peers")
    percent_series = figure.new_series("percentage")
    for asn_count in range(1, max_asns + 1):
        if asn_count < max_asns:
            count = spans.get(asn_count, 0)
        else:
            count = sum(v for k, v in spans.items() if k >= asn_count)
        peers_series.add(asn_count, count)
        percent_series.add(asn_count, (count / total * 100.0) if total else 0.0)
    over_ten = sum(v for k, v in spans.items() if k > 10)
    if total:
        figure.add_note(f"peers in more than 10 ASes: {over_ten} ({over_ten / total * 100:.1f}%)")
    return figure


def press_freedom_summary(
    log: ObservationLog,
    registry: Optional[GeoRegistry] = None,
    provider: Optional[GeoProvider] = None,
) -> Dict[str, object]:
    """Peers observed in countries with poor press-freedom scores (>50).

    Scores come from the enrichment provider, so a swapped geo database
    changes this summary (and everything built on it) consistently.
    """
    provider = resolve_provider(registry, provider)
    counts = country_distribution(log)
    poor: Dict[str, int] = {}
    for country, count in counts.items():
        score = provider.press_freedom_score(country)
        if score is None:
            continue
        if score > PRESS_FREEDOM_HIDDEN_THRESHOLD:
            poor[country] = count
    ordered = sorted(poor.items(), key=lambda item: item[1], reverse=True)
    return {
        "countries": len(poor),
        "total_peers": sum(poor.values()),
        "top": ordered[:5],
    }


def summarize_geography(
    log: ObservationLog,
    registry: Optional[GeoRegistry] = None,
    provider: Optional[GeoProvider] = None,
) -> GeographicSummary:
    """The headline geographic numbers used by reports and tests."""
    counts = country_distribution(log)
    if not counts:
        raise ValueError("no known-IP peers with resolvable countries")
    total = sum(counts.values())
    most_common = counts.most_common()
    top6 = sum(count for _, count in most_common[:6])
    top20 = sum(count for _, count in most_common[:20])
    press = press_freedom_summary(log, registry, provider)
    return GeographicSummary(
        countries_observed=len(counts),
        top_country=most_common[0][0],
        top_country_peers=most_common[0][1],
        top6_share=top6 / total,
        top20_share=top20 / total,
        poor_press_freedom_countries=int(press["countries"]),
        poor_press_freedom_peers=int(press["total_peers"]),
    )
