"""Population analysis: Figures 5 and 6 of the paper.

Figure 5 plots, per day, the number of unique peers and the number of
unique IP addresses (all / IPv4 / IPv6) observed by the 20-router campaign.
The paper's headline observation is that the number of unique IP addresses
is *lower* than the number of peers because a large group of peers (the
"unknown-IP" peers) publish no valid address.

Figure 6 splits the unknown-IP group into firewalled peers (introducers
present in the RouterInfo) and hidden peers (no address block at all), plus
the peers that flip between the two states ("overlapping").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.series import FigureData
from .monitor import ObservationLog

__all__ = [
    "PopulationSummary",
    "daily_population_figure",
    "unknown_ip_figure",
    "summarize_population",
    "classify_unknown_ip",
]


@dataclass(frozen=True)
class PopulationSummary:
    """Headline population numbers for a campaign (Section 5.1)."""

    days: int
    mean_daily_peers: float
    mean_daily_all_ips: float
    mean_daily_ipv4: float
    mean_daily_ipv6: float
    mean_daily_known_ip_peers: float
    mean_daily_unknown_ip_peers: float
    mean_daily_firewalled: float
    mean_daily_hidden: float
    mean_daily_overlap: float
    unique_peers: int

    @property
    def unknown_ip_share(self) -> float:
        if self.mean_daily_peers == 0:
            return 0.0
        return self.mean_daily_unknown_ip_peers / self.mean_daily_peers

    def as_dict(self) -> Dict[str, float]:
        return {
            "days": self.days,
            "mean_daily_peers": self.mean_daily_peers,
            "mean_daily_all_ips": self.mean_daily_all_ips,
            "mean_daily_ipv4": self.mean_daily_ipv4,
            "mean_daily_ipv6": self.mean_daily_ipv6,
            "mean_daily_known_ip_peers": self.mean_daily_known_ip_peers,
            "mean_daily_unknown_ip_peers": self.mean_daily_unknown_ip_peers,
            "mean_daily_firewalled": self.mean_daily_firewalled,
            "mean_daily_hidden": self.mean_daily_hidden,
            "mean_daily_overlap": self.mean_daily_overlap,
            "unique_peers": self.unique_peers,
            "unknown_ip_share": self.unknown_ip_share,
        }


def summarize_population(log: ObservationLog) -> PopulationSummary:
    """Compute the Section 5.1 headline numbers from an observation log."""
    if not log.daily:
        raise ValueError("the observation log contains no recorded days")
    return PopulationSummary(
        days=log.days_recorded,
        mean_daily_peers=log.mean_daily("observed_peers"),
        mean_daily_all_ips=log.mean_daily("observed_all_ips"),
        mean_daily_ipv4=log.mean_daily("observed_ipv4"),
        mean_daily_ipv6=log.mean_daily("observed_ipv6"),
        mean_daily_known_ip_peers=log.mean_daily("known_ip_peers"),
        mean_daily_unknown_ip_peers=log.mean_daily("unknown_ip_peers"),
        mean_daily_firewalled=log.mean_daily("firewalled_peers"),
        mean_daily_hidden=log.mean_daily("hidden_peers"),
        mean_daily_overlap=log.mean_daily("overlap_peers"),
        unique_peers=log.unique_peer_count,
    )


def daily_population_figure(log: ObservationLog) -> FigureData:
    """Figure 5: unique peers and unique IPs (all / IPv4 / IPv6) per day."""
    figure = FigureData(
        figure_id="figure_05",
        title="Number of unique peers and IP addresses",
        x_label="day",
        y_label="observed peers / IPs",
    )
    routers = figure.new_series("routers")
    all_ips = figure.new_series("all IP")
    ipv4 = figure.new_series("IPv4")
    ipv6 = figure.new_series("IPv6")
    for stats in log.daily:
        day = stats.day + 1
        routers.add(day, stats.observed_peers)
        all_ips.add(day, stats.observed_all_ips)
        ipv4.add(day, stats.observed_ipv4)
        ipv6.add(day, stats.observed_ipv6)
    return figure


def unknown_ip_figure(log: ObservationLog) -> FigureData:
    """Figure 6: unknown-IP peers split into firewalled / hidden / overlap."""
    figure = FigureData(
        figure_id="figure_06",
        title="Peers with unknown IP addresses",
        x_label="day",
        y_label="observed peers",
    )
    unknown = figure.new_series("unknown-IP")
    firewalled = figure.new_series("firewalled")
    hidden = figure.new_series("hidden")
    overlap = figure.new_series("overlapping")
    for stats in log.daily:
        day = stats.day + 1
        unknown.add(day, stats.unknown_ip_peers)
        firewalled.add(day, stats.firewalled_peers)
        hidden.add(day, stats.hidden_peers)
        overlap.add(day, stats.overlap_peers)
    return figure


def classify_unknown_ip(log: ObservationLog) -> Dict[str, int]:
    """Campaign-level classification of unknown-IP peers (Section 5.1).

    Counts unique peers that were *ever* observed as firewalled, ever
    observed as hidden, the overlap (observed as both at different times),
    and peers that never published a valid address at all.
    """
    return log.unknown_ip_classification()
