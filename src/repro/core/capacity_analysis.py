"""Capacity-flag analysis: Figure 9, Table 1, and the floodfill-based
population extrapolation of Section 5.3.1.

The paper analyses the capacity field of every observed RouterInfo:

* Figure 9 — the average number of daily peers per bandwidth tier, with
  ``L`` (the default) dominating and ``N`` second;
* Table 1 — the percentage of routers in each bandwidth tier, broken down
  by group (floodfill / reachable / unreachable / total), showing that the
  floodfill group is dominated by ``N`` rather than ``L``;
* the extrapolation — K/L/M-flagged floodfills cannot have been promoted
  automatically (the minimum requirement is an ``N`` rating), so they are
  "unqualified"; scaling the count of qualified floodfills by the ~6 %
  automatic-floodfill share published by the I2P project yields an
  independent estimate of the total network size (≈31,950 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..analysis.series import FigureData
from ..netdb.routerinfo import BandwidthTier, QUALIFIED_FLOODFILL_TIERS
from .monitor import ObservationLog

__all__ = [
    "OFFICIAL_AUTO_FLOODFILL_SHARE",
    "FloodfillEstimate",
    "flag_distribution",
    "capacity_figure",
    "bandwidth_breakdown",
    "bandwidth_breakdown_table",
    "estimate_population",
]

#: Share of automatically promoted floodfill routers reported on the
#: official I2P website at the time of the study (Section 5.3.1).
OFFICIAL_AUTO_FLOODFILL_SHARE = 0.06

_TIER_ORDER = [t.value for t in BandwidthTier.ordered()]
_QUALIFIED_TIERS = {t.value for t in QUALIFIED_FLOODFILL_TIERS}


# --------------------------------------------------------------------------- #
# Figure 9
# --------------------------------------------------------------------------- #
def flag_distribution(log: ObservationLog) -> Dict[str, float]:
    """Average number of daily observed peers per primary bandwidth tier."""
    means = log.mean_daily_tier_counts()
    return {tier: means.get(tier, 0.0) for tier in _TIER_ORDER}


def capacity_figure(log: ObservationLog) -> FigureData:
    """Figure 9: capacity distribution of I2P peers (daily averages)."""
    distribution = flag_distribution(log)
    figure = FigureData(
        figure_id="figure_09",
        title="Capacity distribution of I2P peers",
        x_label="tier index (K..X)",
        y_label="observed peers (daily average)",
    )
    series = figure.new_series("observed peers")
    for position, tier in enumerate(_TIER_ORDER):
        series.add(position, distribution[tier])
    figure.add_note("tier order: " + ", ".join(_TIER_ORDER))
    dominant = max(distribution, key=distribution.get) if distribution else "?"
    figure.add_note(f"dominant tier: {dominant}")
    return figure


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #
def bandwidth_breakdown(log: ObservationLog) -> Dict[str, Dict[str, float]]:
    """Table 1: percentage of routers per advertised bandwidth flag, per group.

    A peer contributes to every flag it ever advertised (P/X routers also
    advertise O for backwards compatibility), so columns may sum to more
    than 100 % — exactly the caveat the paper explains below Table 1.
    Returns ``{group: {tier_letter: percentage}}`` for the groups
    ``floodfill``, ``reachable``, ``unreachable``, and ``total``.
    Columnar runs reduce the static advertised-flag bitmask column under
    the observation log's group accumulators; no per-peer aggregates are
    materialised.
    """
    counts, totals = log.advertised_tier_breakdown(_TIER_ORDER)
    breakdown: Dict[str, Dict[str, float]] = {}
    for group, group_counts in counts.items():
        total = totals[group]
        breakdown[group] = {
            tier: (group_counts[tier] / total * 100.0) if total else 0.0
            for tier in _TIER_ORDER
        }
    return breakdown


def bandwidth_breakdown_table(log: ObservationLog) -> List[List[object]]:
    """Table 1 rows: [tier, floodfill %, reachable %, unreachable %, total %]."""
    breakdown = bandwidth_breakdown(log)
    rows: List[List[object]] = []
    for tier in _TIER_ORDER:
        rows.append(
            [
                tier,
                breakdown["floodfill"][tier],
                breakdown["reachable"][tier],
                breakdown["unreachable"][tier],
                breakdown["total"][tier],
            ]
        )
    return rows


# --------------------------------------------------------------------------- #
# Floodfill-based population estimate
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FloodfillEstimate:
    """The Section 5.3.1 extrapolation from floodfills to network size."""

    observed_floodfills: int
    observed_floodfill_share: float
    qualified_floodfills: int
    qualified_share_of_floodfills: float
    auto_floodfill_share: float
    estimated_population: float
    observed_daily_peers: float

    @property
    def estimate_to_observed_ratio(self) -> float:
        if self.observed_daily_peers == 0:
            return 0.0
        return self.estimated_population / self.observed_daily_peers

    def as_dict(self) -> Dict[str, float]:
        return {
            "observed_floodfills": self.observed_floodfills,
            "observed_floodfill_share": self.observed_floodfill_share,
            "qualified_floodfills": self.qualified_floodfills,
            "qualified_share_of_floodfills": self.qualified_share_of_floodfills,
            "auto_floodfill_share": self.auto_floodfill_share,
            "estimated_population": self.estimated_population,
            "observed_daily_peers": self.observed_daily_peers,
            "estimate_to_observed_ratio": self.estimate_to_observed_ratio,
        }


def estimate_population(
    log: ObservationLog,
    auto_floodfill_share: float = OFFICIAL_AUTO_FLOODFILL_SHARE,
) -> FloodfillEstimate:
    """Estimate the network size from the qualified-floodfill count.

    The calculation mirrors the paper: count the average number of daily
    floodfill peers, determine which fraction of them is *qualified*
    (dominant tier N or better — K/L/M floodfills must have been enabled
    manually), and divide the qualified count by the official ~6 %
    automatic-floodfill share.
    """
    if not 0 < auto_floodfill_share < 1:
        raise ValueError("auto_floodfill_share must be in (0, 1)")
    if not log.daily:
        raise ValueError("the observation log contains no recorded days")

    mean_daily_floodfills = log.mean_daily("floodfill_peers")
    mean_daily_peers = log.mean_daily("observed_peers")

    floodfill_count, qualified = log.floodfill_qualified_counts(_QUALIFIED_TIERS)
    qualified_share = qualified / floodfill_count if floodfill_count else 0.0

    qualified_daily = mean_daily_floodfills * qualified_share
    estimated_population = (
        qualified_daily / auto_floodfill_share if auto_floodfill_share else 0.0
    )
    return FloodfillEstimate(
        observed_floodfills=int(round(mean_daily_floodfills)),
        observed_floodfill_share=(
            mean_daily_floodfills / mean_daily_peers if mean_daily_peers else 0.0
        ),
        qualified_floodfills=int(round(qualified_daily)),
        qualified_share_of_floodfills=qualified_share,
        auto_floodfill_share=auto_floodfill_share,
        estimated_population=estimated_population,
        observed_daily_peers=mean_daily_peers,
    )
