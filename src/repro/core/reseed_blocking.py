"""Reseed-server blocking and manual reseeding (Section 6.1).

Reseed servers are a single point of blockage: a censor that blocks access
to all hardcoded reseed hostnames prevents *new* clients from bootstrapping
at all.  The paper notes two mitigations: (a) partial blocking is often
leaky (some servers remain reachable), and (b) the router ships a manual
reseeding feature (``i2pseeds.su3`` files shared out of band).

This module quantifies both effects: the bootstrap success probability as a
function of how many reseed servers the censor blocks, and the recovery
achieved when a fraction of censored users obtains a manual reseed file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.series import FigureData
from ..netdb.routerinfo import RouterInfo
from ..sim.reseed import (
    DEFAULT_RESEED_SERVERS,
    ReseedFile,
    ReseedServer,
    bootstrap,
    create_reseed_file,
)

__all__ = [
    "ReseedBlockingOutcome",
    "simulate_reseed_blocking",
    "reseed_blocking_curve",
]


@dataclass(frozen=True)
class ReseedBlockingOutcome:
    """Bootstrap outcomes for one blocking configuration."""

    blocked_servers: int
    total_servers: int
    clients: int
    bootstrap_successes: int
    manual_reseed_successes: int

    @property
    def success_rate(self) -> float:
        if self.clients == 0:
            return 0.0
        return self.bootstrap_successes / self.clients

    @property
    def manual_rescue_rate(self) -> float:
        if self.clients == 0:
            return 0.0
        return self.manual_reseed_successes / self.clients

    def as_dict(self) -> Dict[str, float]:
        return {
            "blocked_servers": self.blocked_servers,
            "total_servers": self.total_servers,
            "clients": self.clients,
            "bootstrap_successes": self.bootstrap_successes,
            "manual_reseed_successes": self.manual_reseed_successes,
            "success_rate": self.success_rate,
            "manual_rescue_rate": self.manual_rescue_rate,
        }


def _build_servers(
    routerinfos: Sequence[RouterInfo], server_names: Sequence[str]
) -> List[ReseedServer]:
    servers = [ReseedServer(hostname=name) for name in server_names]
    for server in servers:
        server.update_known(routerinfos)
    return servers


def simulate_reseed_blocking(
    routerinfos: Sequence[RouterInfo],
    blocked_servers: int,
    clients: int = 200,
    manual_reseed_share: float = 0.0,
    server_names: Sequence[str] = DEFAULT_RESEED_SERVERS,
    seed: int = 0,
) -> ReseedBlockingOutcome:
    """Simulate new clients bootstrapping while a censor blocks reseeds.

    ``manual_reseed_share`` is the fraction of censored clients that manage
    to obtain an ``i2pseeds.su3`` file through a secondary channel.
    """
    if blocked_servers < 0 or blocked_servers > len(server_names):
        raise ValueError("blocked_servers out of range")
    if not 0.0 <= manual_reseed_share <= 1.0:
        raise ValueError("manual_reseed_share must be within [0, 1]")
    rng = random.Random(seed)
    servers = _build_servers(routerinfos, server_names)
    for server in rng.sample(servers, blocked_servers):
        server.blocked = True

    reseed_file: Optional[ReseedFile] = None
    if routerinfos:
        reseed_file = create_reseed_file(routerinfos[0].hash, list(routerinfos))

    successes = 0
    manual_successes = 0
    for client_index in range(clients):
        source_ip = f"198.51.{client_index // 250}.{client_index % 250 + 1}"
        has_manual = rng.random() < manual_reseed_share
        result = bootstrap(
            source_ip,
            servers,
            rng=rng,
            manual_reseed=reseed_file if has_manual else None,
        )
        if result.succeeded:
            successes += 1
            if result.used_manual_reseed:
                manual_successes += 1
    return ReseedBlockingOutcome(
        blocked_servers=blocked_servers,
        total_servers=len(server_names),
        clients=clients,
        bootstrap_successes=successes,
        manual_reseed_successes=manual_successes,
    )


def reseed_blocking_curve(
    routerinfos: Sequence[RouterInfo],
    clients: int = 200,
    manual_reseed_share: float = 0.25,
    server_names: Sequence[str] = DEFAULT_RESEED_SERVERS,
    seed: int = 0,
) -> FigureData:
    """Bootstrap success vs number of blocked reseed servers (ablation).

    Two series: without manual reseeding, and with ``manual_reseed_share``
    of censored clients receiving a reseed file out of band.
    """
    figure = FigureData(
        figure_id="ablation_reseed",
        title="Bootstrap success under reseed-server blocking",
        x_label="blocked reseed servers",
        y_label="bootstrap success rate (%)",
    )
    without_manual = figure.new_series("no manual reseed")
    with_manual = figure.new_series(f"manual reseed ({manual_reseed_share:.0%} of clients)")
    for blocked in range(0, len(server_names) + 1):
        outcome_plain = simulate_reseed_blocking(
            routerinfos,
            blocked,
            clients=clients,
            manual_reseed_share=0.0,
            server_names=server_names,
            seed=seed + blocked,
        )
        outcome_manual = simulate_reseed_blocking(
            routerinfos,
            blocked,
            clients=clients,
            manual_reseed_share=manual_reseed_share,
            server_names=server_names,
            seed=seed + 1000 + blocked,
        )
        without_manual.add(blocked, outcome_plain.success_rate * 100.0)
        with_manual.add(blocked, outcome_manual.success_rate * 100.0)
    return figure
