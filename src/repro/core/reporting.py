"""Report rendering: turn campaign results into the paper's tables/figures.

Benchmarks and examples use these helpers so that every experiment prints a
uniform, self-describing text report that can be compared line by line with
the numbers in the paper (and is archived in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.series import FigureData
from ..analysis.tables import format_kv, format_percent, format_table
from .campaign import CampaignResult
from .capacity_analysis import (
    bandwidth_breakdown_table,
    estimate_population,
    flag_distribution,
)
from .churn_analysis import ip_churn, longevity_summary
from .geography import press_freedom_summary, summarize_geography
from .monitor import ObservationLog
from .population import summarize_population

__all__ = [
    "render_figure",
    "render_table1",
    "render_campaign_summary",
]


def render_figure(figure: FigureData, float_format: str = ".2f") -> str:
    """Render a figure's series as an aligned text table."""
    return figure.to_text(float_format=float_format)


def render_table1(log: ObservationLog) -> str:
    """Render Table 1 (bandwidth percentages by router group)."""
    rows = bandwidth_breakdown_table(log)
    headers = ["Bandwidth", "Floodfill %", "Reachable %", "Unreachable %", "Total %"]
    return format_table(
        headers,
        rows,
        float_format=".2f",
        title="Table 1: routers per bandwidth tier by group",
    )


def render_campaign_summary(result: CampaignResult) -> str:
    """A multi-section text summary of a main-campaign run (Section 5)."""
    log = result.log
    sections: List[str] = []

    population = summarize_population(log)
    sections.append(format_kv(population.as_dict(), title="Population (Section 5.1)"))

    longevity = longevity_summary(log)
    sections.append(format_kv(longevity.as_dict(), title="Longevity (Section 5.2.1)"))

    churn = ip_churn(log)
    sections.append(format_kv(churn.as_dict(), title="IP churn (Section 5.2.2)"))

    tiers = flag_distribution(log)
    sections.append(
        format_kv(
            {f"tier {k}": v for k, v in tiers.items()},
            title="Capacity distribution (Figure 9, daily averages)",
        )
    )

    estimate = estimate_population(log)
    sections.append(
        format_kv(estimate.as_dict(), title="Floodfill extrapolation (Section 5.3.1)")
    )

    try:
        geography = summarize_geography(log)
        sections.append(
            format_kv(geography.as_dict(), title="Geography (Section 5.3.2)")
        )
        press = press_freedom_summary(log)
        sections.append(
            format_kv(
                {
                    "countries": press["countries"],
                    "total_peers": press["total_peers"],
                    "top": ", ".join(f"{c}:{n}" for c, n in press["top"]),
                },
                title="Poor press-freedom countries",
            )
        )
    except ValueError:
        sections.append("Geography: no resolvable known-IP peers")

    sections.append(
        format_kv(
            {
                "monitors": len(result.monitors),
                "days": log.days_recorded,
                "mean daily ground-truth population": result.mean_daily_online,
                "coverage of daily population": format_percent(
                    result.coverage_of_population()
                ),
                "unique peers observed": log.unique_peer_count,
            },
            title="Campaign coverage",
        )
    )
    return "\n\n".join(sections)
