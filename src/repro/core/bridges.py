"""Bridge strategies for censored users (Section 7.1).

The paper's discussion proposes helping censored users with I2P-style
"bridges": the peer IPs the censor has *not* yet blacklisted are
predominantly newly joined peers, and firewalled peers cannot be blocked by
address at all.  The analyses here quantify both observations on top of a
finished measurement campaign:

* what fraction of the peers that appeared on a given day escaped the
  censor's blacklist, split by peer age (newly joined vs long-lived);
* how long a newly joined peer remains unblocked ("bridge survival") as the
  censor keeps monitoring;
* how large the pool of firewalled peers (unblockable by address) is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..analysis.series import FigureData
from .blocking import censor_blacklist
from .campaign import CampaignResult

__all__ = [
    "BridgePoolSummary",
    "bridge_pool_summary",
    "bridge_survival_curve",
]


@dataclass(frozen=True)
class BridgePoolSummary:
    """Composition of the candidate bridge pool on one evaluation day."""

    evaluation_day: int
    censor_routers: int
    blacklist_window_days: int
    total_online_known_ip: int
    unblocked_known_ip: int
    unblocked_newly_joined: int
    unblocked_long_lived: int
    firewalled_pool: int

    @property
    def unblocked_share(self) -> float:
        if self.total_online_known_ip == 0:
            return 0.0
        return self.unblocked_known_ip / self.total_online_known_ip

    @property
    def new_peer_share_of_unblocked(self) -> float:
        if self.unblocked_known_ip == 0:
            return 0.0
        return self.unblocked_newly_joined / self.unblocked_known_ip

    def as_dict(self) -> Dict[str, float]:
        return {
            "evaluation_day": self.evaluation_day,
            "censor_routers": self.censor_routers,
            "blacklist_window_days": self.blacklist_window_days,
            "total_online_known_ip": self.total_online_known_ip,
            "unblocked_known_ip": self.unblocked_known_ip,
            "unblocked_newly_joined": self.unblocked_newly_joined,
            "unblocked_long_lived": self.unblocked_long_lived,
            "firewalled_pool": self.firewalled_pool,
            "unblocked_share": self.unblocked_share,
            "new_peer_share_of_unblocked": self.new_peer_share_of_unblocked,
        }


def bridge_pool_summary(
    result: CampaignResult,
    censor_routers: int = 10,
    blacklist_window_days: int = 5,
    evaluation_day: Optional[int] = None,
    new_peer_age_days: int = 2,
) -> BridgePoolSummary:
    """Quantify the unblocked / firewalled bridge pool on one day.

    The candidate pool is assessed against the *union* of all monitoring
    observations for that day (the best available approximation of the
    daily online population), while the censor uses only its first
    ``censor_routers`` routers and its blacklist window.  The per-peer
    walk streams off the observation log's accumulator arrays
    (:meth:`ObservationLog.known_ip_presence_on`); no per-peer aggregates
    are materialised for columnar runs.
    """
    if evaluation_day is None:
        evaluation_day = len(result.log.daily) - 1
    blacklist = censor_blacklist(
        result.monitors, censor_routers, evaluation_day, blacklist_window_days
    )

    unblocked = 0
    unblocked_new = 0
    unblocked_old = 0
    firewalled_pool = result.log.daily[evaluation_day].firewalled_peers

    first_days, address_sets = result.log.known_ip_presence_on(evaluation_day)
    total_known_ip = len(address_sets)
    for first_day, peer_ips in zip(first_days.tolist(), address_sets):
        if peer_ips & blacklist:
            continue
        unblocked += 1
        if evaluation_day - first_day <= new_peer_age_days:
            unblocked_new += 1
        else:
            unblocked_old += 1

    return BridgePoolSummary(
        evaluation_day=evaluation_day,
        censor_routers=censor_routers,
        blacklist_window_days=blacklist_window_days,
        total_online_known_ip=total_known_ip,
        unblocked_known_ip=unblocked,
        unblocked_newly_joined=unblocked_new,
        unblocked_long_lived=unblocked_old,
        firewalled_pool=firewalled_pool,
    )


def bridge_survival_curve(
    result: CampaignResult,
    censor_routers: int = 10,
    blacklist_window_days: int = 30,
    cohort_day: Optional[int] = None,
    horizon_days: int = 10,
) -> FigureData:
    """How long newly joined peers stay unblocked as the censor keeps watching.

    The cohort is the set of peers first observed on ``cohort_day``; for
    each subsequent day the curve reports the fraction of the cohort whose
    addresses are still absent from the censor's blacklist.
    """
    if cohort_day is None:
        cohort_day = max(0, len(result.log.daily) - horizon_days - 1)
    last_day = min(len(result.log.daily) - 1, cohort_day + horizon_days)

    cohort: List[Set[str]] = result.log.known_ip_cohort_addresses(cohort_day)
    figure = FigureData(
        figure_id="ablation_bridges",
        title="Survival of newly joined peers as censorship bridges",
        x_label="days since first observation",
        y_label="fraction still unblocked (%)",
    )
    series = figure.new_series("new-peer bridges unblocked")
    if not cohort:
        figure.add_note("empty cohort: no newly joined peers on the cohort day")
        return figure

    for day in range(cohort_day, last_day + 1):
        blacklist = censor_blacklist(
            result.monitors, censor_routers, day, blacklist_window_days
        )
        surviving = sum(1 for peer_ips in cohort if not (peer_ips & blacklist))
        series.add(day - cohort_day, surviving / len(cohort) * 100.0)
    figure.add_note(
        f"cohort: {len(cohort)} peers first observed on day {cohort_day + 1}; "
        f"censor: {censor_routers} routers, {blacklist_window_days}-day blacklist"
    )
    return figure
