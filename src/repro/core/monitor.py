"""Monitoring routers and observation aggregation.

The paper's measurement pipeline (Section 4.3) snapshots each monitoring
router's netDb directory hourly and wipes it daily, so the unit of analysis
is *"peer X was observed on day D with RouterInfo contents Y"*.  This
module provides:

* :class:`MonitoringRouter` — one observing router (its configuration plus
  what it has seen so far, both cumulatively and per day);
* :class:`PeerObservationAggregate` — everything the pipeline retains about
  one peer across the campaign (days seen, addresses, capacity flags,
  geographic placement), mirroring the minimal data collection described in
  the ethics section (hash, addresses, capacity);
* :class:`DailyStats` and :class:`ObservationLog` — the campaign-wide
  aggregation that the per-figure analyses consume.

Recording has two paths.  Columnar day views (the kind
:class:`~repro.sim.population.I2PPopulation` produces) are recorded with
NumPy mask arithmetic: cumulative coverage is a boolean vector over the
global peer index, daily statistics are ``count_nonzero`` over the day's
masks, and per-peer address history is appended to a columnar *event log*
(one row per IP-assignment capture, countries interned to integer codes)
only when a peer's assignment *version* actually advanced.  Every figure
analysis — longevity, churn, capacity, geography, population split,
bridges, blocking — consumes the accumulator arrays directly through the
``ObservationLog`` accessors; the per-peer
:class:`PeerObservationAggregate` objects remain available as a lazily
materialised compatibility view (:attr:`ObservationLog.peers`) for tests
and external callers.  Snapshot-backed views fall back to the original
row-oriented loop, which the equivalence tests use as the reference.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..sim.columns import TIER_ORDER, PeerColumns
from ..sim.observation import MonitorMode, MonitorSpec
from ..sim.peer import PeerDaySnapshot
from ..sim.population import DayView

__all__ = [
    "MonitoringRouter",
    "PeerObservationAggregate",
    "DailyStats",
    "ObservationLog",
]


class DailyIpSets(Sequence):
    """List-like container of per-day observed-IP sets, materialised lazily.

    The columnar recording path appends a *deferred* entry — the day's
    shared IP/IPv6 arrays plus a bit-packed observation mask — instead of
    hashing ~16K strings per monitor per day into a set nobody may ever
    read.  Indexing materialises (and caches) the real ``Set[str]``, so
    consumers like :meth:`MonitoringRouter.ips_in_window` see ordinary
    sets.  The row-oriented path appends plain sets directly.
    """

    def __init__(self) -> None:
        self._items: List[object] = []

    def append(self, ip_set: Set[str]) -> None:
        self._items.append(ip_set)

    def append_deferred(
        self,
        ip_array: np.ndarray,
        ipv6_array: np.ndarray,
        packed_mask: np.ndarray,
        count: int,
    ) -> None:
        self._items.append((ip_array, ipv6_array, packed_mask, count))

    def append_lazy(
        self,
        loader: Callable[[], Tuple[np.ndarray, np.ndarray]],
        packed_mask: np.ndarray,
        count: int,
    ) -> None:
        """Deferred entry for *streamed* (disk-backed) day views.

        ``loader`` re-reads the day's IP/IPv6 arrays from the exposure
        bundle on materialisation, so recording a day pins only the
        bit-packed mask — not the decoded address columns — and a
        100×-scale campaign's IP sets cost disk reads, not resident RAM.
        """
        self._items.append((loader, packed_mask, count))

    def _materialise(self, index: int) -> Set[str]:
        item = self._items[index]
        if isinstance(item, set):
            return item
        if len(item) == 3:  # type: ignore[arg-type]
            loader, packed_mask, count = item  # type: ignore[misc]
            ip_array, ipv6_array = loader()
        else:
            ip_array, ipv6_array, packed_mask, count = item  # type: ignore[misc]
        mask = np.unpackbits(packed_mask, count=count).view(bool)
        ips: Set[str] = set(ip_array[mask].tolist())
        ipv6 = ipv6_array[mask]
        ips.update(ipv6[np.not_equal(ipv6, None)].tolist())
        ips.discard(None)  # type: ignore[arg-type]
        self._items[index] = ips
        return ips

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self._items)
        if not 0 <= index < len(self._items):
            raise IndexError("day index out of range")
        return self._materialise(index)

    def __repr__(self) -> str:
        return f"DailyIpSets(days={len(self._items)})"


def _observed_mask(view: DayView, observed: Union[np.ndarray, Iterable[int]]) -> np.ndarray:
    """Normalise an observation (mask, index array, or index iterable) to a
    boolean mask over the day's online peers."""
    count = view.online_count
    if isinstance(observed, np.ndarray):
        if observed.dtype == np.bool_:
            if observed.size != count:
                raise ValueError("observation mask length does not match the day")
            return observed
        indices = observed.astype(np.int64, copy=False)
    else:
        indices = np.fromiter((int(i) for i in observed), dtype=np.int64)
    mask = np.zeros(count, dtype=bool)
    if indices.size:
        mask[indices] = True
    return mask


def _observed_indices(
    observed: Union[np.ndarray, Iterable[int]]
) -> Union[np.ndarray, Iterable[int]]:
    """Normalise a boolean mask to indices for the row-oriented path."""
    if isinstance(observed, np.ndarray) and observed.dtype == np.bool_:
        return np.nonzero(observed)[0]
    return observed


class MonitoringRouter:
    """One monitoring router plus its collected observations."""

    def __init__(
        self,
        spec: MonitorSpec,
        collect_daily_ips: bool = False,
        collect_daily_peers: bool = False,
    ) -> None:
        self.spec = spec
        self.collect_daily_ips = collect_daily_ips
        self.collect_daily_peers = collect_daily_peers
        self.daily_observed_counts: List[int] = []
        self.daily_ip_sets: DailyIpSets = DailyIpSets()
        self.daily_peer_sets: List[Set[bytes]] = []
        #: Row-path cumulative ids (columnar recording uses a mask instead).
        self._cumulative_ids: Set[bytes] = set()
        self._cumulative_mask: Optional[np.ndarray] = None
        self._store: Optional[PeerColumns] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mode(self) -> MonitorMode:
        return self.spec.mode

    @property
    def cumulative_peer_ids(self) -> Set[bytes]:
        """All peer ids this router has ever observed."""
        ids = set(self._cumulative_ids)
        if self._cumulative_mask is not None and self._store is not None:
            size = min(self._cumulative_mask.size, self._store.size)
            mask = self._cumulative_mask[:size]
            ids.update(self._store.peer_ids[:size][mask].tolist())
        return ids

    def record_day(
        self, view: DayView, observed: Union[np.ndarray, Iterable[int]]
    ) -> None:
        """Record one day of observations.

        ``observed`` may be a boolean mask over the day's online peers or
        an array/iterable of positional indices into ``view.snapshots``.
        """
        if view.columns is not None:
            self._record_day_columnar(view, _observed_mask(view, observed))
        else:
            self._record_day_rows(view, _observed_indices(observed))

    def _record_day_columnar(self, view: DayView, mask: np.ndarray) -> None:
        cols = view.columns
        assert cols is not None
        store = cols.columns
        if self._store is not None and self._store is not store:
            raise ValueError(
                "monitor already recorded views from a different population"
            )
        self._store = store
        observed_global = cols.indices[mask]
        if self._cumulative_mask is None or self._cumulative_mask.size < store.size:
            previous = 0 if self._cumulative_mask is None else self._cumulative_mask.size
            grown = np.zeros(max(store.size, previous * 2, 1024), dtype=bool)
            if self._cumulative_mask is not None:
                grown[: self._cumulative_mask.size] = self._cumulative_mask
            self._cumulative_mask = grown
        self._cumulative_mask[observed_global] = True
        self.daily_observed_counts.append(int(observed_global.size))
        if self.collect_daily_ips:
            selection = mask & cols.valid_ip
            loader = getattr(view, "address_loader", None)
            if loader is not None:
                self.daily_ip_sets.append_lazy(
                    loader, np.packbits(selection), cols.count
                )
            else:
                self.daily_ip_sets.append_deferred(
                    cols.ip, cols.ipv6, np.packbits(selection), cols.count
                )
        if self.collect_daily_peers:
            self.daily_peer_sets.append(set(cols.peer_ids[mask].tolist()))

    def _record_day_rows(
        self, view: DayView, observed_indices: Union[np.ndarray, Iterable[int]]
    ) -> None:
        """Reference row-oriented recording (snapshot-backed views)."""
        peer_ids: Set[bytes] = set()
        ips: Set[str] = set()
        for index in observed_indices:
            snapshot = view.snapshots[int(index)]
            peer_ids.add(snapshot.peer_id)
            for ip in snapshot.ip_addresses:
                ips.add(ip)
        self._cumulative_ids.update(peer_ids)
        self.daily_observed_counts.append(len(peer_ids))
        if self.collect_daily_ips:
            self.daily_ip_sets.append(ips)
        if self.collect_daily_peers:
            self.daily_peer_sets.append(peer_ids)

    def mean_daily_observed(self) -> float:
        if not self.daily_observed_counts:
            return 0.0
        return float(np.mean(self.daily_observed_counts))

    def ips_in_window(self, end_day_index: int, window_days: int) -> Set[str]:
        """Union of IPs observed in the ``window_days`` days ending at
        ``end_day_index`` (inclusive).  Requires ``collect_daily_ips``."""
        if not self.collect_daily_ips:
            raise RuntimeError("daily IP collection was not enabled for this monitor")
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        start = max(0, end_day_index - window_days + 1)
        union: Set[str] = set()
        for day_index in range(start, end_day_index + 1):
            if day_index < len(self.daily_ip_sets):
                union.update(self.daily_ip_sets[day_index])
        return union


@dataclass
class PeerObservationAggregate:
    """Campaign-long aggregate of one observed peer."""

    peer_id: bytes
    first_day: int
    last_day: int
    days_observed: Set[int] = field(default_factory=set)
    ipv4_addresses: Set[str] = field(default_factory=set)
    ipv6_addresses: Set[str] = field(default_factory=set)
    countries: Set[str] = field(default_factory=set)
    asns: Set[int] = field(default_factory=set)
    primary_tier_days: Counter = field(default_factory=Counter)
    advertised_flag_days: Counter = field(default_factory=Counter)
    floodfill_days: int = 0
    reachable_days: int = 0
    unreachable_days: int = 0
    firewalled_days: int = 0
    hidden_days: int = 0

    def record(self, snapshot: PeerDaySnapshot) -> None:
        day = snapshot.day
        self.first_day = min(self.first_day, day)
        self.last_day = max(self.last_day, day)
        self.days_observed.add(day)
        if snapshot.has_valid_ip:
            if snapshot.ip is not None:
                self.ipv4_addresses.add(snapshot.ip)
            if snapshot.ipv6 is not None:
                self.ipv6_addresses.add(snapshot.ipv6)
            if snapshot.country_code:
                self.countries.add(snapshot.country_code)
            if snapshot.asn is not None:
                self.asns.add(snapshot.asn)
        self.primary_tier_days[snapshot.bandwidth_tier.value] += 1
        for tier in snapshot.advertised_tiers:
            self.advertised_flag_days[tier.value] += 1
        if snapshot.floodfill:
            self.floodfill_days += 1
        if snapshot.reachable:
            self.reachable_days += 1
        else:
            self.unreachable_days += 1
        if snapshot.firewalled:
            self.firewalled_days += 1
        if snapshot.hidden:
            self.hidden_days += 1

    # ------------------------------------------------------------------ #
    # Derived per-peer quantities
    # ------------------------------------------------------------------ #
    @property
    def observed_day_count(self) -> int:
        return len(self.days_observed)

    @property
    def observation_span_days(self) -> int:
        """Days between first and last observation, inclusive (intermittent
        presence length as defined for Figure 7)."""
        return self.last_day - self.first_day + 1

    def longest_continuous_run(self) -> int:
        """Longest run of consecutive observed days (continuous presence)."""
        if not self.days_observed:
            return 0
        days = sorted(self.days_observed)
        longest = 1
        current = 1
        for previous, current_day in zip(days, days[1:]):
            if current_day == previous + 1:
                current += 1
                longest = max(longest, current)
            else:
                current = 1
        return longest

    @property
    def has_known_ip(self) -> bool:
        return bool(self.ipv4_addresses or self.ipv6_addresses)

    @property
    def address_count(self) -> int:
        return len(self.ipv4_addresses)

    @property
    def is_mostly_floodfill(self) -> bool:
        return self.floodfill_days * 2 > self.observed_day_count

    def dominant_tier(self) -> Optional[str]:
        if not self.primary_tier_days:
            return None
        return self.primary_tier_days.most_common(1)[0][0]


@dataclass
class DailyStats:
    """Network-wide daily statistics computed from the observation union."""

    day: int
    observed_peers: int = 0
    observed_ipv4: int = 0
    observed_ipv6: int = 0
    observed_all_ips: int = 0
    known_ip_peers: int = 0
    unknown_ip_peers: int = 0
    firewalled_peers: int = 0
    hidden_peers: int = 0
    overlap_peers: int = 0
    floodfill_peers: int = 0
    reachable_peers: int = 0
    unreachable_peers: int = 0
    tier_counts: Dict[str, int] = field(default_factory=dict)
    new_peer_ids: int = 0


class _LogAccumulator:
    """Columnar per-peer accumulators behind :class:`ObservationLog`.

    All arrays are indexed by the population's *global* peer index; the
    per-peer aggregate objects are reconstructed from them on demand.

    Address captures are stored as a *columnar event log* rather than a
    per-peer dict of tuples: one row per (peer, IP-assignment version)
    capture, appended only when a peer is observed with a valid IP and a
    new assignment version, so the event count tracks rotations, not
    peer-days.  Countries are interned to small integer codes
    (``country_labels``) so the geography analyses reduce to
    ``np.unique`` passes over integer keys.
    """

    def __init__(self, store: PeerColumns) -> None:
        self.store = store
        self.horizon = store.horizon_days
        self.capacity = 0
        #: High-water mark of accumulator array memory (bytes), updated on
        #: every (re)allocation — recorded by the perf-budget benchmark.
        self.peak_nbytes = 0
        # ---- columnar address-event log -------------------------------- #
        self.event_count = 0
        self._event_capacity = 1024
        self.event_peer = np.empty(self._event_capacity, dtype=np.int64)
        self.event_asn = np.empty(self._event_capacity, dtype=np.int64)
        self.event_country = np.empty(self._event_capacity, dtype=np.int32)
        #: Parallel per-event address strings (object lists: IPs are
        #: arbitrary-length strings and may be ``None`` for IPv6 slots).
        self.event_ip: List[Optional[str]] = []
        self.event_ipv6: List[Optional[str]] = []
        self.country_codes: Dict[str, int] = {}
        self.country_labels: List[str] = []
        self._allocate(max(store.size, 1024))

    def country_code(self, country: object) -> int:
        """Intern a country string to a stable small code (-1 for unset)."""
        if not country:
            return -1
        code = self.country_codes.get(country)  # type: ignore[arg-type]
        if code is None:
            code = len(self.country_labels)
            self.country_codes[str(country)] = code
            self.country_labels.append(str(country))
        return code

    def ensure_events(self, extra: int) -> None:
        needed = self.event_count + extra
        if needed <= self._event_capacity:
            return
        while self._event_capacity < needed:
            self._event_capacity *= 2
        for name in ("event_peer", "event_asn", "event_country"):
            old = getattr(self, name)
            grown = np.empty(self._event_capacity, dtype=old.dtype)
            grown[: self.event_count] = old[: self.event_count]
            setattr(self, name, grown)
        self._note_memory()

    @property
    def nbytes(self) -> int:
        """Approximate resident size of the accumulator arrays."""
        total = (
            self.observed.nbytes
            + self.first_day.nbytes
            + self.last_day.nbytes
            + self.firewalled_days.nbytes
            + self.hidden_days.nbytes
            + self.reachable_days.nbytes
            + self.unreachable_days.nbytes
            + self.floodfill_days.nbytes
            + self.seen_version.nbytes
            + self.ipv4_count.nbytes
            + self.event_peer.nbytes
            + self.event_asn.nbytes
            + self.event_country.nbytes
        )
        # Event address strings: 8-byte list slots; string storage itself is
        # shared with the population columns, so only count the references.
        total += 8 * (len(self.event_ip) + len(self.event_ipv6))
        return total

    def _note_memory(self) -> None:
        self.peak_nbytes = max(self.peak_nbytes, self.nbytes)

    def _allocate(self, capacity: int) -> None:
        old_capacity = self.capacity
        arrays = {}
        names = (
            "observed",
            "first_day",
            "last_day",
            "firewalled_days",
            "hidden_days",
            "reachable_days",
            "unreachable_days",
            "floodfill_days",
            "seen_version",
            "ipv4_count",
        )
        if old_capacity:
            arrays = {name: getattr(self, name) for name in names}
        self.observed = np.zeros((capacity, self.horizon), dtype=bool)
        self.first_day = np.full(capacity, -1, dtype=np.int32)
        self.last_day = np.full(capacity, -1, dtype=np.int32)
        self.firewalled_days = np.zeros(capacity, dtype=np.int32)
        self.hidden_days = np.zeros(capacity, dtype=np.int32)
        self.reachable_days = np.zeros(capacity, dtype=np.int32)
        self.unreachable_days = np.zeros(capacity, dtype=np.int32)
        self.floodfill_days = np.zeros(capacity, dtype=np.int32)
        self.seen_version = np.zeros(capacity, dtype=np.int64)
        #: Observed IPv4 addresses per peer, counted as address-change
        #: capture events (appended only when the assignment version
        #: advanced).  Each allocation takes a fresh host index, so the
        #: count equals the number of *distinct* addresses as long as an
        #: AS's host counter has not wrapped its 254×254 address space —
        #: far beyond any supported campaign scale (a paper-scale 90-day
        #: run allocates well under 64K addresses even in the
        #: heaviest-weight AS); the columnar/aggregate equivalence tests
        #: cover the supported scales.
        self.ipv4_count = np.zeros(capacity, dtype=np.int32)
        for name, array in arrays.items():
            getattr(self, name)[:old_capacity] = array
        self.capacity = capacity
        self._note_memory()

    def ensure(self, size: int) -> None:
        if size > self.capacity:
            self._allocate(max(size, self.capacity * 2))


class ObservationLog:
    """Campaign-wide aggregation over the union of all monitoring routers."""

    def __init__(self) -> None:
        self._peers_rows: Dict[bytes, PeerObservationAggregate] = {}
        self.daily: List[DailyStats] = []
        self._rows_recorded = False
        self._acc: Optional[_LogAccumulator] = None
        self._peers_cache: Optional[Dict[bytes, PeerObservationAggregate]] = None
        self._peers_cache_days = -1
        self._addr_sets_cache: Optional[Dict[int, Set[str]]] = None
        self._addr_sets_events = -1

    @property
    def peers(self) -> Dict[bytes, PeerObservationAggregate]:
        """Per-peer aggregates (materialised lazily for columnar runs)."""
        if self._acc is None:
            return self._peers_rows
        if self._peers_cache is None or self._peers_cache_days != len(self.daily):
            self._peers_cache = self._materialise_peers()
            self._peers_cache_days = len(self.daily)
        return self._peers_cache

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_day(
        self, view: DayView, observed_indices: Union[np.ndarray, Iterable[int]]
    ) -> DailyStats:
        """Record the union of monitor observations for one day.

        One log records through one path: mixing columnar and
        snapshot-backed views would leave two aggregate stores for the
        same peers, so it is rejected.
        """
        if view.columns is not None:
            if self._rows_recorded:
                raise ValueError(
                    "cannot mix columnar and row-oriented recording in one log"
                )
            return self._record_day_columnar(
                view, _observed_mask(view, observed_indices)
            )
        if self._acc is not None:
            raise ValueError(
                "cannot mix columnar and row-oriented recording in one log"
            )
        self._rows_recorded = True
        return self._record_day_rows(view, _observed_indices(observed_indices))

    def _record_day_columnar(self, view: DayView, mask: np.ndarray) -> DailyStats:
        cols = view.columns
        assert cols is not None
        store = cols.columns
        day = view.day
        if self._acc is None:
            self._acc = _LogAccumulator(store)
        elif self._acc.store is not store:
            raise ValueError(
                "log already recorded views from a different population"
            )
        acc = self._acc
        acc.ensure(store.size)

        observed_global = cols.indices[mask]
        firewalled = cols.firewalled[mask]
        hidden = cols.hidden[mask]
        valid = cols.valid_ip[mask]
        reachable = cols.reachable[mask]
        floodfill = cols.floodfill[mask]
        previously_firewalled = acc.firewalled_days[observed_global] > 0
        previously_hidden = acc.hidden_days[observed_global] > 0
        first_seen = acc.first_day[observed_global] < 0

        stats = DailyStats(day=day)
        stats.observed_peers = int(observed_global.size)
        stats.new_peer_ids = int(np.count_nonzero(first_seen))
        stats.known_ip_peers = int(np.count_nonzero(valid))
        stats.unknown_ip_peers = stats.observed_peers - stats.known_ip_peers
        stats.firewalled_peers = int(np.count_nonzero(firewalled))
        stats.hidden_peers = int(np.count_nonzero(hidden))
        stats.overlap_peers = int(
            np.count_nonzero(firewalled & previously_hidden)
        ) + int(np.count_nonzero(hidden & previously_firewalled))
        stats.floodfill_peers = int(np.count_nonzero(floodfill))
        stats.reachable_peers = int(np.count_nonzero(reachable))
        stats.unreachable_peers = stats.observed_peers - stats.reachable_peers
        tier_counts = np.bincount(
            cols.tier_code[mask], minlength=len(TIER_ORDER)
        )
        stats.tier_counts = {
            TIER_ORDER[code].value: int(count)
            for code, count in enumerate(tier_counts)
            if count
        }
        ip_selection = mask & cols.valid_ip
        ipv4 = set(cols.ip[ip_selection].tolist())
        ipv4.discard(None)  # type: ignore[arg-type]
        ipv6_values = cols.ipv6[ip_selection]
        ipv6 = set(ipv6_values[np.not_equal(ipv6_values, None)].tolist())
        stats.observed_ipv4 = len(ipv4)
        stats.observed_ipv6 = len(ipv6)
        stats.observed_all_ips = len(ipv4) + len(ipv6)

        # Accumulate per-peer state (indices within a day are unique, so
        # plain fancy-indexed += is safe).
        acc.observed[observed_global, day] = True
        acc.first_day[observed_global[first_seen]] = day
        acc.last_day[observed_global] = day
        acc.firewalled_days[observed_global[firewalled]] += 1
        acc.hidden_days[observed_global[hidden]] += 1
        acc.floodfill_days[observed_global[floodfill]] += 1
        acc.reachable_days[observed_global[reachable]] += 1
        acc.unreachable_days[observed_global[~reachable]] += 1

        versions = cols.version[mask]
        address_changed = valid & (acc.seen_version[observed_global] != versions)
        if np.any(address_changed):
            changed_global = observed_global[address_changed]
            added = int(changed_global.size)
            acc.ensure_events(added)
            start = acc.event_count
            end = start + added
            acc.event_peer[start:end] = changed_global
            acc.event_asn[start:end] = cols.asn[mask][address_changed]
            countries = cols.country[mask][address_changed].tolist()
            acc.event_country[start:end] = [
                acc.country_code(country) for country in countries
            ]
            acc.event_ip.extend(cols.ip[mask][address_changed].tolist())
            acc.event_ipv6.extend(cols.ipv6[mask][address_changed].tolist())
            acc.event_count = end
            acc.seen_version[changed_global] = versions[address_changed]
            acc.ipv4_count[changed_global] += 1

        self.daily.append(stats)
        return stats

    def _record_day_rows(
        self, view: DayView, observed_indices: Iterable[int]
    ) -> DailyStats:
        """Reference row-oriented recording (snapshot-backed views)."""
        stats = DailyStats(day=view.day)
        tier_counts: Counter = Counter()
        ipv4: Set[str] = set()
        ipv6: Set[str] = set()
        for index in observed_indices:
            snapshot = view.snapshots[int(index)]
            aggregate = self._peers_rows.get(snapshot.peer_id)
            is_new = aggregate is None
            if aggregate is None:
                aggregate = PeerObservationAggregate(
                    peer_id=snapshot.peer_id,
                    first_day=snapshot.day,
                    last_day=snapshot.day,
                )
                self._peers_rows[snapshot.peer_id] = aggregate
            previously_firewalled = aggregate.firewalled_days > 0
            previously_hidden = aggregate.hidden_days > 0
            aggregate.record(snapshot)

            stats.observed_peers += 1
            if is_new:
                stats.new_peer_ids += 1
            if snapshot.has_valid_ip:
                stats.known_ip_peers += 1
                if snapshot.ip is not None:
                    ipv4.add(snapshot.ip)
                if snapshot.ipv6 is not None:
                    ipv6.add(snapshot.ipv6)
            else:
                stats.unknown_ip_peers += 1
            if snapshot.firewalled:
                stats.firewalled_peers += 1
                if previously_hidden:
                    stats.overlap_peers += 1
            if snapshot.hidden:
                stats.hidden_peers += 1
                if previously_firewalled:
                    stats.overlap_peers += 1
            if snapshot.floodfill:
                stats.floodfill_peers += 1
            if snapshot.reachable:
                stats.reachable_peers += 1
            else:
                stats.unreachable_peers += 1
            tier_counts[snapshot.bandwidth_tier.value] += 1
        stats.observed_ipv4 = len(ipv4)
        stats.observed_ipv6 = len(ipv6)
        stats.observed_all_ips = len(ipv4) + len(ipv6)
        stats.tier_counts = dict(tier_counts)
        self.daily.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Lazy aggregate materialisation (columnar runs)
    # ------------------------------------------------------------------ #
    def _materialise_peers(self) -> Dict[bytes, PeerObservationAggregate]:
        acc = self._acc
        assert acc is not None
        store = acc.store
        size = store.size
        first_day = acc.first_day[:size]
        observed_rows = np.nonzero(first_day >= 0)[0]
        observed_matrix = acc.observed[:size]
        # nonzero() is row-major, so the day numbers come out grouped by
        # peer; split them at the per-peer counts.
        _, all_days = observed_matrix.nonzero()
        counts = np.count_nonzero(observed_matrix[observed_rows], axis=1)
        day_groups = np.split(all_days, np.cumsum(counts)[:-1]) if counts.size else []

        peer_ids = store.peer_ids
        tier_codes = store.tier_code
        advertised_masks = store.advertised_mask
        events_by_peer = self._events_by_peer()
        peers: Dict[bytes, PeerObservationAggregate] = {}
        for row, global_index in enumerate(observed_rows.tolist()):
            day_list = day_groups[row]
            observed_days = int(day_list.size)
            aggregate = PeerObservationAggregate(
                peer_id=peer_ids[global_index],
                first_day=int(first_day[global_index]),
                last_day=int(acc.last_day[global_index]),
                days_observed=set(day_list.tolist()),
                floodfill_days=int(acc.floodfill_days[global_index]),
                reachable_days=int(acc.reachable_days[global_index]),
                unreachable_days=int(acc.unreachable_days[global_index]),
                firewalled_days=int(acc.firewalled_days[global_index]),
                hidden_days=int(acc.hidden_days[global_index]),
            )
            for event in events_by_peer.get(global_index, ()):
                ip = acc.event_ip[event]
                ipv6_addr = acc.event_ipv6[event]
                country_code = int(acc.event_country[event])
                asn = int(acc.event_asn[event])
                if ip is not None:
                    aggregate.ipv4_addresses.add(ip)
                if ipv6_addr is not None:
                    aggregate.ipv6_addresses.add(ipv6_addr)
                if country_code >= 0:
                    aggregate.countries.add(acc.country_labels[country_code])
                if asn >= 0:
                    aggregate.asns.add(asn)
            aggregate.primary_tier_days[TIER_ORDER[tier_codes[global_index]].value] = (
                observed_days
            )
            # Advertised tiers come from the static bitmask column (not the
            # row-oriented records), so the compatibility view also works on
            # populations restored from the npz cache, which carry no
            # PeerRecord objects.
            mask_bits = int(advertised_masks[global_index])
            for code, tier in enumerate(TIER_ORDER):
                if mask_bits & (1 << code):
                    aggregate.advertised_flag_days[tier.value] += observed_days
            peers[aggregate.peer_id] = aggregate
        return peers

    # ------------------------------------------------------------------ #
    # Aggregate accessors
    # ------------------------------------------------------------------ #
    @property
    def days_recorded(self) -> int:
        return len(self.daily)

    @property
    def unique_peer_count(self) -> int:
        if self._acc is not None:
            size = self._acc.store.size
            return int(np.count_nonzero(self._acc.first_day[:size] >= 0))
        return len(self._peers_rows)

    def known_ip_peers(self) -> List[PeerObservationAggregate]:
        return [p for p in self.peers.values() if p.has_known_ip]

    # ------------------------------------------------------------------ #
    # Columnar analysis accessors (no aggregate materialisation)
    # ------------------------------------------------------------------ #
    def _observed_rows(self) -> np.ndarray:
        """Global peer rows observed at least once (columnar runs only)."""
        acc = self._acc
        assert acc is not None
        size = acc.store.size
        return np.nonzero(acc.first_day[:size] >= 0)[0]

    def _events_by_peer(self) -> Dict[int, List[int]]:
        """Event indices grouped by global peer row (insertion order kept)."""
        acc = self._acc
        assert acc is not None
        groups: Dict[int, List[int]] = {}
        for event, peer in enumerate(acc.event_peer[: acc.event_count].tolist()):
            groups.setdefault(peer, []).append(event)
        return groups

    def _peer_address_sets(self) -> Dict[int, Set[str]]:
        """Per-peer observed address set (IPv4 ∪ IPv6), cached per event count."""
        acc = self._acc
        assert acc is not None
        if (
            self._addr_sets_cache is None
            or self._addr_sets_events != acc.event_count
        ):
            sets: Dict[int, Set[str]] = {}
            peers = acc.event_peer[: acc.event_count].tolist()
            for event, peer in enumerate(peers):
                addresses = sets.get(peer)
                if addresses is None:
                    addresses = sets[peer] = set()
                ip = acc.event_ip[event]
                if ip is not None:
                    addresses.add(ip)
                ipv6 = acc.event_ipv6[event]
                if ipv6 is not None:
                    addresses.add(ipv6)
            self._addr_sets_cache = sets
            self._addr_sets_events = acc.event_count
        return self._addr_sets_cache

    def country_counts(self) -> Counter:
        """Observed peers per country (each peer counts once per country).

        Columnar runs reduce the interned address-event columns with one
        ``np.unique`` pass over (peer, country) keys; row-oriented runs
        fall back to the per-peer aggregates.
        """
        counts: Counter = Counter()
        if self._acc is None:
            for aggregate in self.peers.values():
                for country in aggregate.countries:
                    counts[country] += 1
            return counts
        acc = self._acc
        n = acc.event_count
        n_labels = len(acc.country_labels)
        if not n or not n_labels:
            return counts
        codes = acc.event_country[:n]
        valid = codes >= 0
        keys = acc.event_peer[:n][valid] * np.int64(n_labels) + codes[valid]
        unique_codes = np.unique(keys) % n_labels
        per_code = np.bincount(unique_codes.astype(np.int64), minlength=n_labels)
        for code, count in enumerate(per_code.tolist()):
            if count:
                counts[acc.country_labels[code]] = count
        return counts

    def _unique_peer_asn_pairs(self) -> np.ndarray:
        """Distinct (peer row, ASN) keys packed as ``row << 32 | asn``."""
        acc = self._acc
        assert acc is not None
        n = acc.event_count
        if not n:
            return np.empty(0, dtype=np.int64)
        asns = acc.event_asn[:n]
        valid = asns >= 0
        keys = (acc.event_peer[:n][valid] << np.int64(32)) | asns[valid]
        return np.unique(keys)

    def asn_counts(self) -> Counter:
        """Observed peers per ASN (each peer counts once per AS)."""
        counts: Counter = Counter()
        if self._acc is None:
            for aggregate in self.peers.values():
                for asn in aggregate.asns:
                    counts[asn] += 1
            return counts
        pairs = self._unique_peer_asn_pairs()
        if not pairs.size:
            return counts
        asns, per_asn = np.unique(pairs & np.int64(0xFFFFFFFF), return_counts=True)
        for asn, count in zip(asns.tolist(), per_asn.tolist()):
            counts[int(asn)] = int(count)
        return counts

    def asn_span_counts(self) -> Counter:
        """Histogram of distinct-AS counts over known-IP peers (Figure 12)."""
        counts: Counter = Counter()
        if self._acc is None:
            for aggregate in self.peers.values():
                if aggregate.has_known_ip:
                    counts[len(aggregate.asns)] += 1
            return counts
        acc = self._acc
        rows = self._observed_rows()
        known_peers = int(np.count_nonzero(acc.ipv4_count[rows] > 0))
        pairs = self._unique_peer_asn_pairs()
        if pairs.size:
            _, spans = np.unique(pairs >> np.int64(32), return_counts=True)
            span_values, span_counts = np.unique(spans, return_counts=True)
            for span, count in zip(span_values.tolist(), span_counts.tolist()):
                counts[int(span)] = int(count)
            known_peers -= int(spans.size)
        if known_peers > 0:
            # Known-IP peers whose captures never carried a resolvable ASN.
            counts[0] += known_peers
        return counts

    def unknown_ip_classification(self) -> Dict[str, int]:
        """Campaign-level unknown-IP split (ever firewalled / hidden / both /
        never addressed), straight off the accumulator counters."""
        if self._acc is None:
            ever_firewalled = ever_hidden = both = never_addressed = 0
            for aggregate in self.peers.values():
                was_firewalled = aggregate.firewalled_days > 0
                was_hidden = aggregate.hidden_days > 0
                if was_firewalled:
                    ever_firewalled += 1
                if was_hidden:
                    ever_hidden += 1
                if was_firewalled and was_hidden:
                    both += 1
                if not aggregate.has_known_ip:
                    never_addressed += 1
        else:
            acc = self._acc
            rows = self._observed_rows()
            was_firewalled = acc.firewalled_days[rows] > 0
            was_hidden = acc.hidden_days[rows] > 0
            ever_firewalled = int(np.count_nonzero(was_firewalled))
            ever_hidden = int(np.count_nonzero(was_hidden))
            both = int(np.count_nonzero(was_firewalled & was_hidden))
            never_addressed = int(np.count_nonzero(acc.ipv4_count[rows] == 0))
        return {
            "ever_firewalled": ever_firewalled,
            "ever_hidden": ever_hidden,
            "both_statuses": both,
            "never_published_address": never_addressed,
        }

    def known_ip_presence_on(
        self, day: int
    ) -> Tuple[np.ndarray, List[Set[str]]]:
        """Known-IP peers observed on ``day``: (first days, address sets).

        Returns one entry per known-IP peer observed on ``day``: the day it
        was first observed, and its full observed address set (IPv4 ∪ IPv6
        over the whole campaign).  The bridge analyses consume this without
        materialising per-peer aggregates on columnar runs.
        """
        if self._acc is None:
            first_days: List[int] = []
            address_sets: List[Set[str]] = []
            for aggregate in self.peers.values():
                if day in aggregate.days_observed and aggregate.has_known_ip:
                    first_days.append(aggregate.first_day)
                    address_sets.append(
                        aggregate.ipv4_addresses | aggregate.ipv6_addresses
                    )
            return np.asarray(first_days, dtype=np.int64), address_sets
        acc = self._acc
        size = acc.store.size
        if day < 0 or day >= acc.horizon:
            return np.empty(0, dtype=np.int64), []
        rows = np.nonzero(
            acc.observed[:size, day] & (acc.ipv4_count[:size] > 0)
        )[0]
        sets_by_row = self._peer_address_sets()
        return (
            acc.first_day[rows].astype(np.int64),
            [sets_by_row[row] for row in rows.tolist()],
        )

    def known_ip_cohort_addresses(self, first_day: int) -> List[Set[str]]:
        """Address sets of known-IP peers *first* observed on ``first_day``
        (the bridge-survival cohort)."""
        if self._acc is None:
            return [
                aggregate.ipv4_addresses | aggregate.ipv6_addresses
                for aggregate in self.peers.values()
                if aggregate.first_day == first_day and aggregate.has_known_ip
            ]
        acc = self._acc
        size = acc.store.size
        rows = np.nonzero(
            (acc.first_day[:size] == first_day) & (acc.ipv4_count[:size] > 0)
        )[0]
        sets_by_row = self._peer_address_sets()
        return [sets_by_row[row] for row in rows.tolist()]

    def accumulator_memory_bytes(self) -> Tuple[int, int]:
        """(current, peak) accumulator array footprint in bytes (0 for
        row-oriented logs)."""
        if self._acc is None:
            return 0, 0
        # The event lists grow between allocations; fold the current size
        # into the high-water mark before reporting.
        self._acc._note_memory()
        return self._acc.nbytes, self._acc.peak_nbytes

    def presence_lengths(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per observed peer: (longest continuous run, observation span).

        Columnar runs answer straight from the accumulator's observation
        bitmatrix — one vectorised pass per recorded day for the run
        lengths — without materialising any
        :class:`PeerObservationAggregate`; row-oriented runs fall back to
        the per-peer aggregates.  Peer order is unspecified but consistent
        between the two returned arrays.
        """
        if self._acc is None:
            peers = list(self.peers.values())
            continuous = np.fromiter(
                (p.longest_continuous_run() for p in peers),
                dtype=np.int64,
                count=len(peers),
            )
            intermittent = np.fromiter(
                (p.observation_span_days for p in peers),
                dtype=np.int64,
                count=len(peers),
            )
            return continuous, intermittent
        acc = self._acc
        rows = self._observed_rows()
        intermittent = (
            acc.last_day[rows].astype(np.int64) - acc.first_day[rows] + 1
        )
        observed = acc.observed[rows]
        run = np.zeros(rows.size, dtype=np.int64)
        best = np.zeros(rows.size, dtype=np.int64)
        last_recorded_day = self.daily[-1].day if self.daily else -1
        for day in range(min(last_recorded_day + 1, acc.horizon)):
            run = (run + 1) * observed[:, day]
            np.maximum(best, run, out=best)
        return best, intermittent

    def ipv4_address_counts(self) -> np.ndarray:
        """Distinct observed IPv4 addresses per *known-IP* peer.

        The returned array has one entry per peer that was ever observed
        with a usable address (the Figure 8 population); order is
        unspecified.
        """
        if self._acc is None:
            return np.asarray(
                [p.address_count for p in self.peers.values() if p.has_known_ip],
                dtype=np.int64,
            )
        acc = self._acc
        rows = self._observed_rows()
        counts = acc.ipv4_count[rows]
        # Capture events require a valid IPv4, so a known-IP peer always
        # has ipv4_count > 0 (there are no IPv6-only known peers on either
        # recording path).
        return counts[counts > 0].astype(np.int64)

    def floodfill_qualified_counts(
        self, qualified_tier_values: Sequence[str]
    ) -> Tuple[int, int]:
        """(ever-floodfill peers, those whose primary tier is qualified)."""
        qualified_set = set(qualified_tier_values)
        if self._acc is None:
            floodfills = [p for p in self.peers.values() if p.floodfill_days > 0]
            qualified = sum(
                1
                for p in floodfills
                if (p.dominant_tier() or "L") in qualified_set
            )
            return len(floodfills), qualified
        acc = self._acc
        rows = self._observed_rows()
        floodfill = acc.floodfill_days[rows] > 0
        codes = acc.store.tier_code[rows][floodfill]
        qualified_codes = [
            code
            for code, tier in enumerate(TIER_ORDER)
            if tier.value in qualified_set
        ]
        qualified = int(np.count_nonzero(np.isin(codes, qualified_codes)))
        return int(np.count_nonzero(floodfill)), qualified

    def advertised_tier_breakdown(
        self, tier_values: Sequence[str]
    ) -> Tuple[Dict[str, Dict[str, int]], Dict[str, int]]:
        """Per-group advertised-flag counts for Table 1.

        Returns ``(counts, totals)`` where ``counts[group][tier]`` is the
        number of observed peers in ``group`` that ever advertised ``tier``
        and ``totals[group]`` the group's peer count, for the groups
        ``floodfill`` / ``reachable`` / ``unreachable`` / ``total``.
        Columnar runs reduce the static advertised-tier bitmask column
        under the accumulator's group masks; row-oriented runs fall back to
        the per-peer aggregates.
        """
        groups = ("floodfill", "reachable", "unreachable", "total")
        counts: Dict[str, Dict[str, int]] = {
            g: {t: 0 for t in tier_values} for g in groups
        }
        totals: Dict[str, int] = {g: 0 for g in groups}
        if self._acc is None:
            for aggregate in self.peers.values():
                advertised = set(aggregate.advertised_flag_days)
                peer_groups = ["total"]
                if aggregate.floodfill_days > 0:
                    peer_groups.append("floodfill")
                if aggregate.reachable_days > 0:
                    peer_groups.append("reachable")
                if aggregate.unreachable_days > 0:
                    peer_groups.append("unreachable")
                for group in peer_groups:
                    totals[group] += 1
                    for tier in advertised:
                        if tier in counts[group]:
                            counts[group][tier] += 1
            return counts, totals
        acc = self._acc
        rows = self._observed_rows()
        advertised_mask = acc.store.advertised_mask[rows]
        group_masks = {
            "floodfill": acc.floodfill_days[rows] > 0,
            "reachable": acc.reachable_days[rows] > 0,
            "unreachable": acc.unreachable_days[rows] > 0,
            "total": np.ones(rows.size, dtype=bool),
        }
        tier_by_value = {tier.value: code for code, tier in enumerate(TIER_ORDER)}
        for group, group_mask in group_masks.items():
            totals[group] = int(np.count_nonzero(group_mask))
            masked = advertised_mask[group_mask]
            for tier_value in tier_values:
                code = tier_by_value.get(tier_value)
                if code is None:
                    continue
                counts[group][tier_value] = int(
                    np.count_nonzero(masked & np.uint8(1 << code))
                )
        return counts, totals

    def mean_daily_observed(self) -> float:
        if not self.daily:
            return 0.0
        return float(np.mean([d.observed_peers for d in self.daily]))

    def mean_daily(self, attribute: str) -> float:
        """Mean over days of one :class:`DailyStats` attribute."""
        if not self.daily:
            return 0.0
        return float(np.mean([getattr(d, attribute) for d in self.daily]))

    def mean_daily_tier_counts(self) -> Dict[str, float]:
        if not self.daily:
            return {}
        totals: Counter = Counter()
        for stats in self.daily:
            totals.update(stats.tier_counts)
        return {tier: count / len(self.daily) for tier, count in totals.items()}
