"""Monitoring routers and observation aggregation.

The paper's measurement pipeline (Section 4.3) snapshots each monitoring
router's netDb directory hourly and wipes it daily, so the unit of analysis
is *"peer X was observed on day D with RouterInfo contents Y"*.  This
module provides:

* :class:`MonitoringRouter` — one observing router (its configuration plus
  what it has seen so far, both cumulatively and per day);
* :class:`PeerObservationAggregate` — everything the pipeline retains about
  one peer across the campaign (days seen, addresses, capacity flags,
  geographic placement), mirroring the minimal data collection described in
  the ethics section (hash, addresses, capacity);
* :class:`DailyStats` and :class:`ObservationLog` — the campaign-wide
  aggregation that the per-figure analyses consume.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..sim.observation import MonitorMode, MonitorSpec
from ..sim.peer import PeerDaySnapshot
from ..sim.population import DayView

__all__ = [
    "MonitoringRouter",
    "PeerObservationAggregate",
    "DailyStats",
    "ObservationLog",
]


@dataclass
class MonitoringRouter:
    """One monitoring router plus its collected observations."""

    spec: MonitorSpec
    collect_daily_ips: bool = False
    collect_daily_peers: bool = False
    cumulative_peer_ids: Set[bytes] = field(default_factory=set)
    daily_observed_counts: List[int] = field(default_factory=list)
    daily_ip_sets: List[Set[str]] = field(default_factory=list)
    daily_peer_sets: List[Set[bytes]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def mode(self) -> MonitorMode:
        return self.spec.mode

    def record_day(self, view: DayView, observed_indices: np.ndarray) -> None:
        """Record one day of observations (indices into ``view.snapshots``)."""
        peer_ids: Set[bytes] = set()
        ips: Set[str] = set()
        for index in observed_indices:
            snapshot = view.snapshots[int(index)]
            peer_ids.add(snapshot.peer_id)
            for ip in snapshot.ip_addresses:
                ips.add(ip)
        self.cumulative_peer_ids.update(peer_ids)
        self.daily_observed_counts.append(len(peer_ids))
        if self.collect_daily_ips:
            self.daily_ip_sets.append(ips)
        if self.collect_daily_peers:
            self.daily_peer_sets.append(peer_ids)

    def mean_daily_observed(self) -> float:
        if not self.daily_observed_counts:
            return 0.0
        return float(np.mean(self.daily_observed_counts))

    def ips_in_window(self, end_day_index: int, window_days: int) -> Set[str]:
        """Union of IPs observed in the ``window_days`` days ending at
        ``end_day_index`` (inclusive).  Requires ``collect_daily_ips``."""
        if not self.collect_daily_ips:
            raise RuntimeError("daily IP collection was not enabled for this monitor")
        if window_days <= 0:
            raise ValueError("window_days must be positive")
        start = max(0, end_day_index - window_days + 1)
        union: Set[str] = set()
        for day_index in range(start, end_day_index + 1):
            if day_index < len(self.daily_ip_sets):
                union.update(self.daily_ip_sets[day_index])
        return union


@dataclass
class PeerObservationAggregate:
    """Campaign-long aggregate of one observed peer."""

    peer_id: bytes
    first_day: int
    last_day: int
    days_observed: Set[int] = field(default_factory=set)
    ipv4_addresses: Set[str] = field(default_factory=set)
    ipv6_addresses: Set[str] = field(default_factory=set)
    countries: Set[str] = field(default_factory=set)
    asns: Set[int] = field(default_factory=set)
    primary_tier_days: Counter = field(default_factory=Counter)
    advertised_flag_days: Counter = field(default_factory=Counter)
    floodfill_days: int = 0
    reachable_days: int = 0
    unreachable_days: int = 0
    firewalled_days: int = 0
    hidden_days: int = 0

    def record(self, snapshot: PeerDaySnapshot) -> None:
        day = snapshot.day
        self.first_day = min(self.first_day, day)
        self.last_day = max(self.last_day, day)
        self.days_observed.add(day)
        if snapshot.has_valid_ip:
            if snapshot.ip is not None:
                self.ipv4_addresses.add(snapshot.ip)
            if snapshot.ipv6 is not None:
                self.ipv6_addresses.add(snapshot.ipv6)
            if snapshot.country_code:
                self.countries.add(snapshot.country_code)
            if snapshot.asn is not None:
                self.asns.add(snapshot.asn)
        self.primary_tier_days[snapshot.bandwidth_tier.value] += 1
        for tier in snapshot.advertised_tiers:
            self.advertised_flag_days[tier.value] += 1
        if snapshot.floodfill:
            self.floodfill_days += 1
        if snapshot.reachable:
            self.reachable_days += 1
        else:
            self.unreachable_days += 1
        if snapshot.firewalled:
            self.firewalled_days += 1
        if snapshot.hidden:
            self.hidden_days += 1

    # ------------------------------------------------------------------ #
    # Derived per-peer quantities
    # ------------------------------------------------------------------ #
    @property
    def observed_day_count(self) -> int:
        return len(self.days_observed)

    @property
    def observation_span_days(self) -> int:
        """Days between first and last observation, inclusive (intermittent
        presence length as defined for Figure 7)."""
        return self.last_day - self.first_day + 1

    def longest_continuous_run(self) -> int:
        """Longest run of consecutive observed days (continuous presence)."""
        if not self.days_observed:
            return 0
        days = sorted(self.days_observed)
        longest = 1
        current = 1
        for previous, current_day in zip(days, days[1:]):
            if current_day == previous + 1:
                current += 1
                longest = max(longest, current)
            else:
                current = 1
        return longest

    @property
    def has_known_ip(self) -> bool:
        return bool(self.ipv4_addresses or self.ipv6_addresses)

    @property
    def address_count(self) -> int:
        return len(self.ipv4_addresses)

    @property
    def is_mostly_floodfill(self) -> bool:
        return self.floodfill_days * 2 > self.observed_day_count

    def dominant_tier(self) -> Optional[str]:
        if not self.primary_tier_days:
            return None
        return self.primary_tier_days.most_common(1)[0][0]


@dataclass
class DailyStats:
    """Network-wide daily statistics computed from the observation union."""

    day: int
    observed_peers: int = 0
    observed_ipv4: int = 0
    observed_ipv6: int = 0
    observed_all_ips: int = 0
    known_ip_peers: int = 0
    unknown_ip_peers: int = 0
    firewalled_peers: int = 0
    hidden_peers: int = 0
    overlap_peers: int = 0
    floodfill_peers: int = 0
    reachable_peers: int = 0
    unreachable_peers: int = 0
    tier_counts: Dict[str, int] = field(default_factory=dict)
    new_peer_ids: int = 0


class ObservationLog:
    """Campaign-wide aggregation over the union of all monitoring routers."""

    def __init__(self) -> None:
        self.peers: Dict[bytes, PeerObservationAggregate] = {}
        self.daily: List[DailyStats] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record_day(
        self, view: DayView, observed_indices: Iterable[int]
    ) -> DailyStats:
        """Record the union of monitor observations for one day."""
        stats = DailyStats(day=view.day)
        tier_counts: Counter = Counter()
        ipv4: Set[str] = set()
        ipv6: Set[str] = set()
        for index in observed_indices:
            snapshot = view.snapshots[int(index)]
            aggregate = self.peers.get(snapshot.peer_id)
            is_new = aggregate is None
            if aggregate is None:
                aggregate = PeerObservationAggregate(
                    peer_id=snapshot.peer_id,
                    first_day=snapshot.day,
                    last_day=snapshot.day,
                )
                self.peers[snapshot.peer_id] = aggregate
            previously_firewalled = aggregate.firewalled_days > 0
            previously_hidden = aggregate.hidden_days > 0
            aggregate.record(snapshot)

            stats.observed_peers += 1
            if is_new:
                stats.new_peer_ids += 1
            if snapshot.has_valid_ip:
                stats.known_ip_peers += 1
                if snapshot.ip is not None:
                    ipv4.add(snapshot.ip)
                if snapshot.ipv6 is not None:
                    ipv6.add(snapshot.ipv6)
            else:
                stats.unknown_ip_peers += 1
            if snapshot.firewalled:
                stats.firewalled_peers += 1
                if previously_hidden:
                    stats.overlap_peers += 1
            if snapshot.hidden:
                stats.hidden_peers += 1
                if previously_firewalled:
                    stats.overlap_peers += 1
            if snapshot.floodfill:
                stats.floodfill_peers += 1
            if snapshot.reachable:
                stats.reachable_peers += 1
            else:
                stats.unreachable_peers += 1
            tier_counts[snapshot.bandwidth_tier.value] += 1
        stats.observed_ipv4 = len(ipv4)
        stats.observed_ipv6 = len(ipv6)
        stats.observed_all_ips = len(ipv4) + len(ipv6)
        stats.tier_counts = dict(tier_counts)
        self.daily.append(stats)
        return stats

    # ------------------------------------------------------------------ #
    # Aggregate accessors
    # ------------------------------------------------------------------ #
    @property
    def days_recorded(self) -> int:
        return len(self.daily)

    @property
    def unique_peer_count(self) -> int:
        return len(self.peers)

    def known_ip_peers(self) -> List[PeerObservationAggregate]:
        return [p for p in self.peers.values() if p.has_known_ip]

    def mean_daily_observed(self) -> float:
        if not self.daily:
            return 0.0
        return float(np.mean([d.observed_peers for d in self.daily]))

    def mean_daily(self, attribute: str) -> float:
        """Mean over days of one :class:`DailyStats` attribute."""
        if not self.daily:
            return 0.0
        return float(np.mean([getattr(d, attribute) for d in self.daily]))

    def mean_daily_tier_counts(self) -> Dict[str, float]:
        if not self.daily:
            return {}
        totals: Counter = Counter()
        for stats in self.daily:
            totals.update(stats.tier_counts)
        return {tier: count / len(self.daily) for tier, count in totals.items()}
