"""repro — reproduction of "An Empirical Study of the I2P Anonymity Network
and its Censorship Resistance" (Hoang et al., IMC 2018).

The package is organised in four layers:

* :mod:`repro.netdb` — the I2P network-database substrate (RouterInfos,
  LeaseSets, routing keys, Kademlia, floodfill behaviour);
* :mod:`repro.transport` — NTCP/NTCP2 flow shapes, SSU introducers, ports;
* :mod:`repro.sim` — the network simulator (message-level engine for small
  networks and a calibrated statistical population/observation model for
  paper-scale campaigns);
* :mod:`repro.core` — the paper's contribution: the measurement pipeline
  (monitoring routers, campaigns, population/churn/capacity/geography
  analyses) and the censorship-resistance analyses (address-based blocking,
  usability under blocking, reseed blocking, bridge strategies).

Quickstart
----------
>>> from repro.core import run_main_campaign, summarize_population
>>> result = run_main_campaign(days=10, scale=0.05)
>>> summary = summarize_population(result.log)
>>> summary.mean_daily_peers > 0
True
"""

from . import analysis, core, netdb, sim, transport

__version__ = "1.0.0"

__all__ = ["analysis", "core", "netdb", "sim", "transport", "__version__"]
