"""Command-line interface for the I2P measurement reproduction.

Three subcommands mirror the three stages of the paper:

``repro measure``
    Run the main measurement campaign (Section 5) and print the campaign
    summary report; optionally export every regenerated figure to a
    directory as CSV/JSON.

``repro calibrate``
    Run the methodology experiments of Section 4 (Figures 2–4).

``repro censor``
    Run the censorship analyses of Section 6 (Figures 13–14) on top of a
    fresh campaign.

Installed as the ``repro`` console script (see ``pyproject.toml``), and also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis.export import write_figure_csv, write_figure_json
from .analysis.series import FigureData
from .core import (
    bandwidth_sweep,
    blocking_curve,
    capacity_figure,
    client_netdb_from_dayview,
    country_figure,
    asn_figure,
    asn_span_figure,
    daily_population_figure,
    ip_churn_figure,
    longevity_figure,
    render_campaign_summary,
    render_figure,
    render_table1,
    router_count_sweep,
    run_figure_suite,
    run_main_campaign,
    single_router_experiment,
    unknown_ip_figure,
    usability_curve,
)
from .sim import ExposureEngine, I2PPopulation, PopulationConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMC'18 I2P measurement & censorship study",
    )
    parser.add_argument("--seed", type=int, default=2018, help="random seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="population scale relative to the paper's ~30.5K daily peers",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    measure = subparsers.add_parser(
        "measure", help="run the Section 5 main campaign and print the summary"
    )
    measure.add_argument("--days", type=int, default=20, help="campaign days (paper: 90)")
    measure.add_argument(
        "--export-dir",
        type=Path,
        default=None,
        help="directory to write every regenerated figure as CSV and JSON",
    )

    calibrate = subparsers.add_parser(
        "calibrate", help="run the Section 4 methodology experiments (Figures 2-4)"
    )
    calibrate.add_argument("--max-routers", type=int, default=40)

    censor = subparsers.add_parser(
        "censor", help="run the Section 6 censorship analyses (Figures 13-14)"
    )
    censor.add_argument("--days", type=int, default=20)
    censor.add_argument("--fetches", type=int, default=10)

    suite = subparsers.add_parser(
        "suite",
        help="run the whole figure suite off one shared exposure cache",
    )
    suite.add_argument("--days", type=int, default=10, help="campaign days")
    suite.add_argument("--max-routers", type=int, default=40)
    return parser


def _export_figures(figures: Sequence[FigureData], export_dir: Path) -> List[Path]:
    written: List[Path] = []
    for figure in figures:
        written.append(write_figure_csv(figure, export_dir / f"{figure.figure_id}.csv"))
        written.append(write_figure_json(figure, export_dir / f"{figure.figure_id}.json"))
    return written


def _cmd_measure(args: argparse.Namespace) -> int:
    result = run_main_campaign(days=args.days, scale=args.scale, seed=args.seed)
    print(render_campaign_summary(result))
    print()
    print(render_table1(result.log))
    print()
    print(render_figure(blocking_curve(result), ".1f"))
    figures = [
        daily_population_figure(result.log),
        unknown_ip_figure(result.log),
        longevity_figure(result.log),
        ip_churn_figure(result.log),
        capacity_figure(result.log),
        country_figure(result.log),
        asn_figure(result.log),
        asn_span_figure(result.log),
        blocking_curve(result),
    ]
    if args.export_dir is not None:
        written = _export_figures(figures, args.export_dir)
        print(f"\nexported {len(written)} files to {args.export_dir}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    # One shared exposure (10-day horizon covers the longest experiment)
    # serves all three methodology figures: the population is built once.
    engine = ExposureEngine()
    horizon = 10
    print(
        render_figure(
            single_router_experiment(
                scale=args.scale, seed=args.seed, engine=engine, horizon_days=horizon
            ),
            ".0f",
        )
    )
    print()
    print(
        render_figure(
            bandwidth_sweep(
                scale=args.scale, seed=args.seed, engine=engine, horizon_days=horizon
            ),
            ".0f",
        )
    )
    print()
    figure4, result = router_count_sweep(
        max_routers=args.max_routers,
        scale=args.scale,
        seed=args.seed,
        engine=engine,
        horizon_days=horizon,
    )
    print(render_figure(figure4, ".0f"))
    print(f"\nmean daily ground-truth population: {result.mean_daily_online:.0f}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    suite = run_figure_suite(
        days=args.days,
        scale=args.scale,
        seed=args.seed,
        max_routers=args.max_routers,
    )
    print(render_campaign_summary(suite.campaign))
    print()
    for figure in (suite.figure2, suite.figure3, suite.figure4):
        print(render_figure(figure, ".0f"))
        print()
    print(render_table1(suite.campaign.log))
    print()
    for threshold, values in suite.longevity.items():
        print(
            f"longevity >{threshold} days: continuous={values['continuous']:.1f}% "
            f"intermittent={values['intermittent']:.1f}%"
        )
    churn = suite.ip_churn
    print(
        f"ip churn: {churn.known_ip_peers} known-IP peers, "
        f"{churn.multi_ip_share * 100:.1f}% with 2+ addresses"
    )
    print(
        f"exposure cache: {suite.engine.misses} population build(s), "
        f"{suite.engine.hits} cache hit(s)"
    )
    return 0


def _cmd_censor(args: argparse.Namespace) -> int:
    result = run_main_campaign(days=args.days, scale=args.scale, seed=args.seed)
    print(render_figure(blocking_curve(result), ".1f"))
    population = I2PPopulation(
        PopulationConfig(
            target_daily_population=max(500, int(30_500 * args.scale * 0.5)),
            horizon_days=2,
            seed=args.seed + 1,
        )
    )
    view = population.day_view(0)
    netdb = client_netdb_from_dayview(
        population,
        view,
        size=min(600, max(50, view.online_count // 2)),
        rng=random.Random(args.seed),
    )
    figure14 = usability_curve(
        netdb,
        blocking_rates=(0.0, 0.65, 0.71, 0.77, 0.83, 0.89, 0.95),
        fetches_per_rate=args.fetches,
        seed=args.seed,
    )
    print()
    print(render_figure(figure14, ".1f"))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "measure":
        return _cmd_measure(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "censor":
        return _cmd_censor(args)
    if args.command == "suite":
        return _cmd_suite(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
