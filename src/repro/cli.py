"""Command-line interface for the I2P measurement reproduction.

The subcommands mirror the stages of the paper plus the scenario registry:

``repro measure``
    Run the main measurement campaign (Section 5) and print the campaign
    summary report; optionally export every regenerated figure to a
    directory as CSV/JSON.

``repro calibrate``
    Run the methodology experiments of Section 4 (Figures 2–4).

``repro censor``
    Run the censorship analyses of Section 6 (Figures 13–14) on top of a
    fresh campaign.

``repro suite``
    Run the whole figure suite off one shared exposure cache (executed
    through the scenario registry's ``figure_suite`` spec).

``repro scenarios``
    List every registered scenario spec with a one-line description.

``repro run <scenario>``
    Execute any registered scenario through the declarative engine.

``repro cache ls|clear``
    Inspect / empty the on-disk exposure cache (sharded mmap-friendly
    bundles) that lets repeated CLI runs reuse paper-scale populations
    across processes.  ``ls --json`` emits machine-readable output.

``repro geo build-db|lookup``
    The enrichment plane's tooling: compile a CSV/JSON range table into
    the binary sorted-range geo database, and resolve one address through
    the active provider + cache cascade (reporting which tier answered).

``repro grid plan|run|resume``
    The campaign service: expand a registered scenario times axes of
    overrides (``--axis days=5,10 --axis params.fractions=0.2:0.5,0.3:0.9``)
    into a persistent job queue, grouped by exposure digest so every job
    sharing a population streams from ONE ``SharedExposure`` build; run
    it, interrupt it, resume it — finished jobs are never re-executed,
    failed jobs retry up to their budget then park in the dead-letter
    table.  State lives in one SQLite file (``--service-db`` /
    ``$REPRO_SERVICE_DB``); ``--workers`` / ``$REPRO_GRID_WORKERS`` runs
    digest groups concurrently.

``repro jobs ls``
    Queue state per job (pending/running/done/failed + attempts), plus
    the dead-letter table with each poison job's traceback.

``repro results ls|show|export``
    The durable result store: per-run scalar summaries and figure series,
    content-addressed and deduplicated.  ``export`` emits canonical JSON
    whose bytes depend only on what was computed — never on execution
    order, retries, or interrupts.

Every analysis resolves geography through the pluggable enrichment
provider: ``--geo-provider synthetic`` (default, the calibrated registry)
or ``--geo-provider range-db --geo-db PATH`` (a compiled database; also
``REPRO_GEO_PROVIDER`` / ``REPRO_GEO_DB``).

Every campaign-running command consults the exposure cache directory
(``--cache-dir``, the ``REPRO_CACHE_DIR`` environment variable, or
``~/.cache/repro/exposure`` by default; ``--no-cache`` disables), so a
second run of the same scenario skips the population rebuild entirely.
``--exposure-backend out-of-core`` streams cache misses straight to a
disk bundle instead of materialising the whole day range in RAM (the
backend for 10-100x paper-scale campaigns); ``--cache-max-bytes``
bounds the cache directory with LRU eviction, and ``--cache-shard-days``
tunes the bundle's streaming granularity.

Installed as the ``repro`` console script (see ``pyproject.toml``), and also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import sys
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, TypeVar

from .analysis.export import write_figure_csv, write_figure_json
from .analysis.series import FigureData
from .analysis.tables import format_kv
from .core import (
    bandwidth_sweep,
    blocking_curve,
    capacity_figure,
    client_netdb_from_dayview,
    country_figure,
    asn_figure,
    asn_span_figure,
    daily_population_figure,
    ip_churn_figure,
    list_scenarios,
    longevity_figure,
    render_campaign_summary,
    render_figure,
    render_table1,
    router_count_sweep,
    run_main_campaign,
    run_scenario,
    single_router_experiment,
    unknown_ip_figure,
    usability_curve,
)
from .core.scenario import ScenarioResult
from .sim import ExposureEngine, I2PPopulation, PopulationConfig
from .sim import exposure_cache

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMC'18 I2P measurement & censorship study",
    )
    parser.add_argument("--seed", type=int, default=2018, help="random seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="population scale relative to the paper's ~30.5K daily peers",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk exposure cache (default: "
        "$REPRO_CACHE_DIR or ~/.cache/repro/exposure)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk exposure cache for this run",
    )
    parser.add_argument(
        "--exposure-backend",
        choices=("in-memory", "out-of-core"),
        default=None,
        help="how cache misses are built: 'in-memory' materialises the whole "
        "day range in RAM, 'out-of-core' streams it to a sharded disk bundle "
        "(bounded peak RSS; needs the cache enabled).  Default: "
        "$REPRO_EXPOSURE_BACKEND or in-memory",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=str,
        default=None,
        metavar="SIZE",
        help="LRU byte budget for the cache directory, e.g. '2G', '500M', "
        "'1.5GiB' (least-recently-used bundles are evicted after each "
        "save).  Default: $REPRO_CACHE_MAX_BYTES or unlimited",
    )
    parser.add_argument(
        "--cache-shard-days",
        type=int,
        default=None,
        metavar="N",
        help="days per on-disk bundle shard (streaming granularity; default: "
        "$REPRO_CACHE_SHARD_DAYS or 8)",
    )
    parser.add_argument(
        "--geo-provider",
        choices=("synthetic", "range-db"),
        default=None,
        help="geo/ASN enrichment provider every analysis resolves through "
        "(default: $REPRO_GEO_PROVIDER, or synthetic; range-db needs "
        "--geo-db)",
    )
    parser.add_argument(
        "--geo-db",
        type=Path,
        default=None,
        metavar="PATH",
        help="compiled sorted-range geo database for --geo-provider range-db "
        "(default: $REPRO_GEO_DB; build one with `repro geo build-db`)",
    )
    parser.add_argument(
        "--service-db",
        type=Path,
        default=None,
        metavar="PATH",
        help="SQLite file holding the campaign service's job queue + result "
        "store (default: $REPRO_SERVICE_DB or service.sqlite next to the "
        "exposure cache)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    measure = subparsers.add_parser(
        "measure", help="run the Section 5 main campaign and print the summary"
    )
    measure.add_argument("--days", type=int, default=20, help="campaign days (paper: 90)")
    measure.add_argument(
        "--export-dir",
        type=Path,
        default=None,
        help="directory to write every regenerated figure as CSV and JSON",
    )

    calibrate = subparsers.add_parser(
        "calibrate", help="run the Section 4 methodology experiments (Figures 2-4)"
    )
    calibrate.add_argument("--max-routers", type=int, default=40)

    censor = subparsers.add_parser(
        "censor", help="run the Section 6 censorship analyses (Figures 13-14)"
    )
    censor.add_argument("--days", type=int, default=20)
    censor.add_argument("--fetches", type=int, default=10)

    suite = subparsers.add_parser(
        "suite",
        help="run the whole figure suite off one shared exposure cache",
    )
    suite.add_argument("--days", type=int, default=10, help="campaign days")
    suite.add_argument("--max-routers", type=int, default=40)

    subparsers.add_parser(
        "scenarios", help="list every registered scenario spec"
    )

    run = subparsers.add_parser(
        "run",
        help="execute one registered scenario through the engine",
        description="Execute one registered scenario through the declarative "
        "engine.  Message-level scenarios accept --router-count to pin the "
        "simulated-network size: netdb-scale sweeps netDb publish throughput "
        "over 300/1000/10000-router networks, and the fault-injection "
        "scenarios (floodfill-takedown, reseed-outage, lossy-network) replay "
        "a deterministic FaultPlan — seeded message drops, floodfill "
        "crash/recover windows, reseed outages, regional link blackouts — "
        "and report per-round publish success, lookup latency and netDb "
        "coverage.  Set REPRO_PROFILE=1 to run the scenario under cProfile "
        "and dump pstats next to the results.",
    )
    run.add_argument("scenario", help="a registered scenario name (see `repro scenarios`)")
    run.add_argument(
        "--days", type=int, default=None, help="override the spec's horizon"
    )
    run.add_argument(
        "--router-count",
        type=int,
        default=None,
        help="simulated-network size for message-level scenarios "
        "(e.g. netdb-scale); rejected for exposure-based scenarios",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or empty the on-disk exposure cache"
    )
    cache.add_argument("action", choices=("ls", "clear"))
    cache.add_argument(
        "--json",
        action="store_true",
        help="emit `cache ls` output as machine-readable JSON",
    )

    geo = subparsers.add_parser(
        "geo", help="enrichment-plane tooling: compile and query geo databases"
    )
    geo_sub = geo.add_subparsers(dest="geo_action", required=True)
    build_db = geo_sub.add_parser(
        "build-db",
        help="compile a CSV/JSON range table into the binary geo database",
    )
    build_db.add_argument("input", type=Path, help="range table (CSV or JSON)")
    build_db.add_argument("output", type=Path, help="database file to write")
    build_db.add_argument(
        "--format",
        choices=("csv", "json"),
        default=None,
        help="input format (default: by file extension)",
    )
    lookup = geo_sub.add_parser(
        "lookup",
        help="resolve one IP through the active provider + cache cascade",
    )
    lookup.add_argument("ip", help="the address to resolve")
    lookup.add_argument(
        "--json",
        action="store_true",
        help="emit the resolution as machine-readable JSON",
    )

    grid = subparsers.add_parser(
        "grid",
        help="plan and execute scenario grids through the persistent job queue",
    )
    grid_sub = grid.add_subparsers(dest="grid_action", required=True)
    grid_plan = grid_sub.add_parser(
        "plan",
        help="expand a scenario x axes into a digest-grouped job queue",
        description="Expand one registered scenario times axes of overrides "
        "into concrete jobs, grouped by exposure-cache digest so every job "
        "sharing a population builds its SharedExposure once.  Replanning "
        "an identical grid is a no-op; finished jobs keep their state.",
    )
    grid_plan.add_argument(
        "scenario", help="a registered scenario name (see `repro scenarios`)"
    )
    grid_plan.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="KEY=V1,V2",
        help="one sweep dimension: days, scale, seed, or params.<name>; "
        "commas separate points, colons build tuple values "
        "(e.g. params.fractions=0.2:0.5,0.3:0.9); repeatable",
    )
    grid_plan.add_argument(
        "--days", type=int, default=None, help="base day-horizon override"
    )
    grid_plan.add_argument(
        "--retry-budget",
        type=int,
        default=3,
        metavar="N",
        help="attempts before a failing job parks in the dead-letter table",
    )
    grid_plan.add_argument(
        "--json", action="store_true", help="emit the plan as JSON"
    )
    for action, title in (("run", "execute"), ("resume", "resume")):
        sub = grid_sub.add_parser(
            action,
            help=f"{title} a planned grid (claim -> run -> persist, "
            "crash-safe)",
        )
        sub.add_argument(
            "grid_id",
            nargs="?",
            default=None,
            help="grid to execute (default: the most recently planned)",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            metavar="N",
            help="concurrent digest-group workers, each with its own "
            "exposure engine (default: $REPRO_GRID_WORKERS or 1)",
        )
        sub.add_argument(
            "--max-jobs",
            type=int,
            default=None,
            metavar="N",
            help="stop after claiming this many jobs (the rest stay queued)",
        )
        sub.add_argument(
            "--backoff",
            type=float,
            default=0.5,
            metavar="SECONDS",
            help="retry backoff base (doubles per attempt)",
        )
        sub.add_argument(
            "--telemetry",
            type=Path,
            default=None,
            metavar="PATH",
            help="JSON-lines span/event trace (default: "
            "<service-db>.telemetry.jsonl)",
        )

    jobs = subparsers.add_parser(
        "jobs", help="inspect the job queue and the dead-letter table"
    )
    jobs.add_argument("action", choices=("ls",))
    jobs.add_argument(
        "--grid", default=None, metavar="GRID_ID", help="restrict to one grid"
    )
    jobs.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    results = subparsers.add_parser(
        "results", help="inspect and export the durable result store"
    )
    results_sub = results.add_subparsers(dest="results_action", required=True)
    results_ls = results_sub.add_parser("ls", help="list recorded runs")
    results_ls.add_argument(
        "--grid", default=None, metavar="GRID_ID", help="restrict to one grid"
    )
    results_ls.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    results_show = results_sub.add_parser(
        "show", help="print one run's scalar summaries (and figures with --json)"
    )
    results_show.add_argument(
        "ref", help="run id, unique id prefix, or grid-unique job name"
    )
    results_show.add_argument(
        "--json", action="store_true", help="dump the full run as JSON"
    )
    results_export = results_sub.add_parser(
        "export",
        help="canonical JSON of every run (bytes depend only on results)",
    )
    results_export.add_argument(
        "--grid", default=None, metavar="GRID_ID", help="restrict to one grid"
    )
    results_export.add_argument(
        "--out", type=Path, default=None, metavar="PATH",
        help="write to a file instead of stdout",
    )
    return parser


_T = TypeVar("_T")


def resolve_option(
    flag_value: Optional[_T],
    env: str,
    default: Optional[_T] = None,
    parse: Optional[Callable[[str], _T]] = None,
) -> Optional[_T]:
    """One precedence rule for every CLI-flag/env-twin pair.

    An explicit flag wins; otherwise a non-blank environment variable
    (``parse`` converts its string — flags arrive already converted by
    argparse); otherwise the default.  Every twin in this module routes
    through here so the precedence cannot drift per option.
    """
    if flag_value is not None:
        return flag_value
    raw = os.environ.get(env)
    if raw is not None and raw.strip() != "":
        return parse(raw) if parse is not None else raw  # type: ignore[return-value]
    return default


def _parse_shard_days(raw: str) -> int:
    try:
        days = int(raw)
    except ValueError:
        days = 0
    if days <= 0:
        raise ValueError(
            f"REPRO_CACHE_SHARD_DAYS must be a positive integer; got {raw!r}"
        )
    return days


def _parse_workers(raw: str) -> int:
    try:
        workers = int(raw)
    except ValueError:
        workers = 0
    if workers <= 0:
        raise ValueError(
            f"REPRO_GRID_WORKERS must be a positive integer; got {raw!r}"
        )
    return workers


def _resolve_cache_dir(args: argparse.Namespace) -> Optional[Path]:
    """The exposure cache directory this invocation uses (None = disabled)."""
    if args.no_cache:
        return None
    return resolve_option(
        args.cache_dir,
        "REPRO_CACHE_DIR",
        default=Path.home() / ".cache" / "repro" / "exposure",
        parse=Path,
    )


def _resolve_service_db(args: argparse.Namespace) -> Path:
    """The campaign-service SQLite file (queue + result store)."""
    cache_dir = _resolve_cache_dir(args)
    base = cache_dir.parent if cache_dir is not None else (
        Path.home() / ".cache" / "repro"
    )
    resolved = resolve_option(
        args.service_db,
        "REPRO_SERVICE_DB",
        default=base / "service.sqlite",
        parse=Path,
    )
    assert resolved is not None
    return resolved


def _make_engine(args: argparse.Namespace) -> ExposureEngine:
    from .sim.exposure import parse_byte_size

    backend = resolve_option(
        args.exposure_backend, "REPRO_EXPOSURE_BACKEND", default="in-memory"
    )
    max_bytes = resolve_option(
        None
        if args.cache_max_bytes is None
        else parse_byte_size(args.cache_max_bytes, "--cache-max-bytes"),
        "REPRO_CACHE_MAX_BYTES",
        parse=lambda raw: parse_byte_size(raw, "REPRO_CACHE_MAX_BYTES"),
    )
    shard_days = resolve_option(
        args.cache_shard_days, "REPRO_CACHE_SHARD_DAYS", parse=_parse_shard_days
    )
    engine = ExposureEngine(
        cache_dir=_resolve_cache_dir(args),
        backend=backend,
        max_bytes=max_bytes,
        shard_days=shard_days,
    )
    # Cache writes run off the critical path; main() joins them on exit so
    # an in-process caller (tests, notebooks) sees a settled cache dir.
    args._engine = engine
    return engine


def _export_figures(figures: Sequence[FigureData], export_dir: Path) -> List[Path]:
    written: List[Path] = []
    for figure in figures:
        written.append(write_figure_csv(figure, export_dir / f"{figure.figure_id}.csv"))
        written.append(write_figure_json(figure, export_dir / f"{figure.figure_id}.json"))
    return written


def _cmd_measure(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    result = run_main_campaign(
        days=args.days, scale=args.scale, seed=args.seed, engine=engine
    )
    print(render_campaign_summary(result))
    print()
    print(render_table1(result.log))
    print()
    print(render_figure(blocking_curve(result), ".1f"))
    figures = [
        daily_population_figure(result.log),
        unknown_ip_figure(result.log),
        longevity_figure(result.log),
        ip_churn_figure(result.log),
        capacity_figure(result.log),
        country_figure(result.log),
        asn_figure(result.log),
        asn_span_figure(result.log),
        blocking_curve(result),
    ]
    if args.export_dir is not None:
        written = _export_figures(figures, args.export_dir)
        print(f"\nexported {len(written)} files to {args.export_dir}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    # One shared exposure (10-day horizon covers the longest experiment)
    # serves all three methodology figures: the population is built once.
    engine = _make_engine(args)
    horizon = 10
    print(
        render_figure(
            single_router_experiment(
                scale=args.scale, seed=args.seed, engine=engine, horizon_days=horizon
            ),
            ".0f",
        )
    )
    print()
    print(
        render_figure(
            bandwidth_sweep(
                scale=args.scale, seed=args.seed, engine=engine, horizon_days=horizon
            ),
            ".0f",
        )
    )
    print()
    figure4, result = router_count_sweep(
        max_routers=args.max_routers,
        scale=args.scale,
        seed=args.seed,
        engine=engine,
        horizon_days=horizon,
    )
    print(render_figure(figure4, ".0f"))
    print(f"\nmean daily ground-truth population: {result.mean_daily_online:.0f}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .core import get_scenario

    spec = get_scenario("figure_suite")
    spec = replace(
        spec, params={**dict(spec.params), "max_routers": args.max_routers}
    )
    result = run_scenario(
        spec,
        scale=args.scale,
        seed=args.seed,
        days=args.days,
        engine=_make_engine(args),
    )
    suite = result.suite
    assert suite is not None
    print(render_campaign_summary(suite.campaign))
    print()
    for figure in (suite.figure2, suite.figure3, suite.figure4):
        print(render_figure(figure, ".0f"))
        print()
    print(render_table1(suite.campaign.log))
    print()
    for threshold, values in suite.longevity.items():
        print(
            f"longevity >{threshold} days: continuous={values['continuous']:.1f}% "
            f"intermittent={values['intermittent']:.1f}%"
        )
    churn = suite.ip_churn
    print(
        f"ip churn: {churn.known_ip_peers} known-IP peers, "
        f"{churn.multi_ip_share * 100:.1f}% with 2+ addresses"
    )
    engine = result.engine
    assert engine is not None
    print(
        f"exposure cache: {engine.misses} population build(s), "
        f"{engine.hits} cache hit(s), {engine.disk_hits} disk hit(s)"
    )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    specs = list_scenarios()
    width = max(len(spec.name) for spec in specs)
    print(f"{len(specs)} registered scenarios:\n")
    for spec in specs:
        print(f"  {spec.name:<{width}}  [{spec.kind}] {spec.description}")
    print(
        "\nrun one with: repro [--scale S] [--seed N] run <scenario> [--days D] "
        "[--router-count N]\n"
        "fault-injection scenarios replay a seeded FaultPlan (drop_probability, "
        "crash_fraction,\n"
        "reseed_fraction, blackout_region, outage_start_round/outage_end_round, "
        "store/lookup\n"
        "retry budgets) and chart publish success + netDb coverage per round\n"
        "set REPRO_PROFILE=1 to dump a cProfile pstats file for the run"
    )
    return 0


def _print_scenario_result(result: ScenarioResult) -> None:
    spec = result.spec
    print(
        f"scenario {spec.name} [{spec.kind}]: days={spec.days} "
        f"scale={result.scale:g} seed={result.seed}"
    )
    print(spec.description)
    print()
    if "campaign_summary" in result.tables:
        print(result.tables["campaign_summary"])
        print()
    for figure_id in sorted(result.figures):
        print(render_figure(result.figures[figure_id], ".1f"))
        print()
    for name, table in result.tables.items():
        if name == "campaign_summary":
            continue
        print(table)
        print()
    for name, summary in result.summaries.items():
        print(format_kv({str(k): v for k, v in summary.items()}, title=name))
        print()
    engine = result.engine
    if engine is not None:
        print(
            f"exposure cache: {engine.misses} population build(s), "
            f"{engine.hits} cache hit(s), {engine.disk_hits} disk hit(s)"
        )


def _profile_enabled() -> bool:
    value = os.environ.get("REPRO_PROFILE", "")
    return value.strip().lower() not in ("", "0", "false", "no")


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.scenario import resolve_scenario

    # Only resolution/validation errors are usage errors; anything raised
    # during execution is a real failure and keeps its traceback.
    try:
        spec = resolve_scenario(
            args.scenario, days=args.days, router_count=args.router_count
        )
    except (KeyError, ValueError) as error:
        print(error.args[0] if error.args else str(error), file=sys.stderr)
        return 2
    engine = _make_engine(args)
    if _profile_enabled():
        # Opt-in profiling: REPRO_PROFILE=1 wraps the scenario execution
        # in cProfile and dumps a pstats file (loadable with
        # `python -m pstats` or snakeviz) into $REPRO_PROFILE_DIR or the
        # working directory.
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = run_scenario(spec, scale=args.scale, seed=args.seed, engine=engine)
        finally:
            profiler.disable()
        profile_dir = Path(os.environ.get("REPRO_PROFILE_DIR") or ".")
        profile_dir.mkdir(parents=True, exist_ok=True)
        profile_path = profile_dir / f"repro_profile_{spec.name}.pstats"
        profiler.dump_stats(profile_path)
        stats = pstats.Stats(profiler, stream=sys.stderr).sort_stats("cumulative")
        print(f"profile written to {profile_path}", file=sys.stderr)
        stats.print_stats(15)
    else:
        result = run_scenario(spec, scale=args.scale, seed=args.seed, engine=engine)
    _print_scenario_result(result)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        print("exposure cache disabled (--no-cache)", file=sys.stderr)
        return 2
    if args.action == "clear":
        removed = exposure_cache.clear_cache(cache_dir)
        print(f"removed {removed} cache entr(y/ies) from {cache_dir}")
        return 0
    entries = exposure_cache.cache_entries(cache_dir)
    total_bytes = sum(int(entry["bytes"]) for entry in entries)
    if getattr(args, "json", False):
        import json as _json

        payload = {
            "cache_dir": str(cache_dir),
            "total_bytes": total_bytes,
            "entries": [
                {key: value for key, value in entry.items() if key != "path"}
                for entry in entries
            ],
        }
        print(_json.dumps(payload, indent=2, sort_keys=True, default=str))
        return 0
    print(
        f"exposure cache at {cache_dir}: {len(entries)} entr(y/ies), "
        f"{exposure_cache.human_bytes(total_bytes)} total (LRU eviction via "
        f"--cache-max-bytes / $REPRO_CACHE_MAX_BYTES; `repro cache clear` "
        f"reclaims everything)"
    )
    for entry in entries:
        size = exposure_cache.human_bytes(int(entry["bytes"]))
        if "error" in entry:
            print(f"  {entry['digest']}  <{entry['error']}>  ({size})")
            continue
        print(
            f"  {entry['digest']}  days={entry['days']} "
            f"shard_days={entry['shard_days']} peers={entry['peers']} "
            f"daily={entry['daily_population']} seed={entry['seed']} "
            f"({size})"
        )
    return 0


def _cmd_geo(args: argparse.Namespace) -> int:
    from .enrichment import (
        HybridCacheProvider,
        compile_range_db,
        get_active_provider,
        ipv4_to_int,
        load_rows,
    )

    if args.geo_action == "build-db":
        try:
            rows = load_rows(args.input, args.format)
            stats = compile_range_db(rows, args.output)
        except (OSError, ValueError) as error:
            print(error.args[0] if error.args else str(error), file=sys.stderr)
            return 2
        print(
            f"compiled {stats['ranges']} range(s) from {stats['source_rows']} "
            f"source row(s) ({stats['countries']} countries, "
            f"{stats['bytes']} bytes) -> {args.output}"
        )
        return 0

    # lookup: one-line exit-2 validation in the `repro run` style.
    ip = args.ip.strip()
    if ipv4_to_int(ip) is None and ":" not in ip:
        print(f"not a valid IP address: {args.ip!r}", file=sys.stderr)
        return 2
    provider = get_active_provider()
    # Front the provider with the hybrid cache so repeated CLI lookups show
    # the memory/disk tiers; the disk tier lives next to the exposure cache.
    cache_dir = _resolve_cache_dir(args)
    disk_path = (
        cache_dir / "geo_lookup_cache.json" if cache_dir is not None else None
    )
    cache = HybridCacheProvider(provider, capacity=1024, disk_path=disk_path)
    enrichment, tier = cache.lookup_with_tier(ip)
    cache.flush()
    if args.json:
        import json as _json

        payload = dict(enrichment.as_dict())
        payload["provider"] = provider.name
        payload["tier"] = tier
        print(_json.dumps(payload, sort_keys=True))
        return 0
    country = enrichment.country or "??"
    prefix = enrichment.prefix or "-"
    print(
        f"{ip} -> country={country} asn={enrichment.asn} prefix={prefix} "
        f"(provider={provider.name}, tier={tier})"
    )
    if not enrichment.known:
        print("address is outside the provider's tables (sentinel ASN 0)")
    return 0


def _engine_factory(args: argparse.Namespace) -> Callable[[], ExposureEngine]:
    """Per-worker engine builder for grid runs (the runner flushes them)."""

    def build() -> ExposureEngine:
        from .sim.exposure import parse_byte_size

        backend = resolve_option(
            args.exposure_backend, "REPRO_EXPOSURE_BACKEND", default="in-memory"
        )
        max_bytes = resolve_option(
            None
            if args.cache_max_bytes is None
            else parse_byte_size(args.cache_max_bytes, "--cache-max-bytes"),
            "REPRO_CACHE_MAX_BYTES",
            parse=lambda raw: parse_byte_size(raw, "REPRO_CACHE_MAX_BYTES"),
        )
        shard_days = resolve_option(
            args.cache_shard_days,
            "REPRO_CACHE_SHARD_DAYS",
            parse=_parse_shard_days,
        )
        return ExposureEngine(
            cache_dir=_resolve_cache_dir(args),
            backend=backend,
            max_bytes=max_bytes,
            shard_days=shard_days,
        )

    return build


def _usage_error(error: BaseException) -> int:
    print(error.args[0] if error.args else str(error), file=sys.stderr)
    return 2


def _cmd_grid(args: argparse.Namespace) -> int:
    import json as _json

    from .service import (
        GridSpec,
        JobQueue,
        Telemetry,
        execute_grid,
        parse_axis,
        plan_grid,
    )

    db_path = _resolve_service_db(args)

    if args.grid_action == "plan":
        try:
            axes = tuple(parse_axis(text) for text in args.axis)
            spec = GridSpec(
                scenario=args.scenario,
                axes=axes,
                scale=args.scale,
                seed=args.seed,
                days=args.days,
                retry_budget=args.retry_budget,
            )
            plan = plan_grid(spec)
        except (KeyError, ValueError, TypeError) as error:
            return _usage_error(error)
        with JobQueue(db_path) as queue:
            try:
                stats = queue.enqueue_plan(plan)
            except ValueError as error:
                return _usage_error(error)
        if args.json:
            payload = {
                "grid_id": plan.grid_id,
                "jobs": [job.as_dict() for job in plan.jobs],
                "groups": [
                    {"digest": digest, "jobs": [job.name for job in group]}
                    for digest, group in plan.groups
                ],
                "inserted": stats["inserted"],
                "service_db": str(db_path),
            }
            print(_json.dumps(payload, indent=2, sort_keys=True, default=str))
            return 0
        shared = plan.shared_digests
        print(
            f"planned grid {plan.grid_id}: {len(plan.jobs)} job(s) in "
            f"{len(plan.groups)} exposure group(s) "
            f"({stats['inserted']} newly queued) -> {db_path}"
        )
        for digest, group in plan.groups:
            label = digest if digest is not None else "(no shared exposure)"
            print(f"  {label}: {', '.join(job.name for job in group)}")
        if shared:
            print(
                f"{len(shared)} shared SharedExposure build(s) amortised "
                f"across the grid"
            )
        print(f"run it with: repro grid run {plan.grid_id}")
        return 0

    # run / resume
    with JobQueue(db_path) as queue:
        grid_id = args.grid_id or queue.latest_grid_id()
        if grid_id is None:
            print("no grids planned yet; start with `repro grid plan`", file=sys.stderr)
            return 2
        try:
            queue.grid_spec(grid_id)
        except KeyError as error:
            return _usage_error(error)
    try:
        workers = resolve_option(
            args.workers, "REPRO_GRID_WORKERS", default=1, parse=_parse_workers
        )
        assert workers is not None
        if workers < 1:
            raise ValueError("workers must be at least 1")
    except ValueError as error:
        return _usage_error(error)
    telemetry_path = args.telemetry or db_path.with_suffix(".telemetry.jsonl")
    telemetry = Telemetry(telemetry_path)
    try:
        outcome = execute_grid(
            str(db_path),
            grid_id,
            engine_factory=_engine_factory(args),
            telemetry=telemetry,
            workers=workers,
            max_jobs=args.max_jobs,
            backoff_base=args.backoff,
            progress=print,
        )
    finally:
        telemetry.close()
    with JobQueue(db_path) as queue:
        counts = queue.counts(grid_id)
    print(
        f"grid {grid_id}: {outcome.done} job(s) finished this invocation "
        f"({outcome.retried} retried, {outcome.dead_lettered} dead-lettered) "
        f"in {outcome.wall_seconds:.1f}s; queue now "
        + ", ".join(f"{counts[state]} {state}" for state in sorted(counts))
    )
    print(
        f"exposure cache: {outcome.exposure_builds} population build(s), "
        f"{outcome.exposure_hits} cache hit(s), "
        f"{outcome.exposure_disk_hits} disk hit(s)"
    )
    print(f"telemetry: {telemetry_path}")
    complete = counts["pending"] == 0 and counts["running"] == 0 and counts["failed"] == 0
    return 0 if complete else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from .service import JobQueue

    db_path = _resolve_service_db(args)
    with JobQueue(db_path) as queue:
        rows = queue.list_jobs(args.grid)
        dead = queue.dead_letter_jobs(args.grid)
    if args.json:
        print(
            _json.dumps(
                {"jobs": rows, "dead_letter": dead},
                indent=2,
                sort_keys=True,
                default=str,
            )
        )
        return 0
    if not rows:
        print("no jobs queued")
        return 0
    print(f"{len(rows)} job(s) in {db_path}:")
    for row in rows:
        state = f"{row['state']}"
        attempts = f"{row['attempts']}/{row['retry_budget']}"
        print(
            f"  [{state:<7}] {row['grid_id']} :: {row['name']} "
            f"(attempts {attempts})"
        )
    if dead:
        print(f"\n{len(dead)} dead-letter job(s):")
        for row in dead:
            last_line = str(row["traceback"]).strip().splitlines()[-1]
            print(
                f"  {row['grid_id']} :: {row['name']} "
                f"(after {row['attempts']} attempt(s)): {last_line}"
            )
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    import json as _json

    from .service import ResultStore

    db_path = _resolve_service_db(args)
    with ResultStore(db_path) as store:
        if args.results_action == "ls":
            runs = store.runs(args.grid)
            if args.json:
                print(_json.dumps(runs, indent=2, sort_keys=True, default=str))
                return 0
            if not runs:
                print("no results recorded")
                return 0
            print(f"{len(runs)} recorded run(s) in {db_path}:")
            for run in runs:
                label = run["job_name"] or run["scenario"]
                grid = run["grid_id"] or "-"
                print(
                    f"  {run['run_id']}  {run['scenario']:<24} {grid} :: "
                    f"{label} (scale={run['scale']:g} seed={run['seed']})"
                )
            return 0
        if args.results_action == "show":
            try:
                run = store.get_run(args.ref)
            except KeyError as error:
                return _usage_error(error)
            if args.json:
                print(_json.dumps(run, indent=2, sort_keys=True, default=str))
                return 0
            print(
                f"run {run['run_id']}: {run['scenario']} "
                f"(grid={run['grid_id'] or '-'} job={run['job_name'] or '-'} "
                f"scale={run['scale']:g} seed={run['seed']} "
                f"digest={run['exposure_digest'] or '-'})"
            )
            for name, summary in sorted(run["summary"].items()):
                print()
                print(format_kv({str(k): v for k, v in summary.items()}, title=name))
            figures = run["series"]["figures"]
            if figures:
                print(f"\nfigure series: {', '.join(sorted(figures))}")
            return 0
        # export
        payload = store.export_bytes(args.grid)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_bytes(payload)
        print(f"exported {len(payload)} canonical bytes -> {args.out}")
    else:
        sys.stdout.write(payload.decode("utf-8"))
        sys.stdout.write("\n")
    return 0


def _cmd_censor(args: argparse.Namespace) -> int:
    engine = _make_engine(args)
    result = run_main_campaign(
        days=args.days, scale=args.scale, seed=args.seed, engine=engine
    )
    print(render_figure(blocking_curve(result), ".1f"))
    population = I2PPopulation(
        PopulationConfig(
            target_daily_population=max(500, int(30_500 * args.scale * 0.5)),
            horizon_days=2,
            seed=args.seed + 1,
        )
    )
    view = population.day_view(0)
    netdb = client_netdb_from_dayview(
        population,
        view,
        size=min(600, max(50, view.online_count // 2)),
        rng=random.Random(args.seed),
    )
    figure14 = usability_curve(
        netdb,
        blocking_rates=(0.0, 0.65, 0.71, 0.77, 0.83, 0.89, 0.95),
        fetches_per_rate=args.fetches,
        seed=args.seed,
    )
    print()
    print(render_figure(figure14, ".1f"))
    return 0


@contextmanager
def _terminate_via_system_exit() -> Iterator[None]:
    """Route SIGINT/SIGTERM through ``SystemExit`` for the dialog's duration.

    The default SIGTERM disposition kills the process without unwinding the
    stack, so ``main()``'s ``finally:`` — which joins the exposure engine's
    background bundle writes — never ran on an interrupted grid run,
    leaving stale ``.exposure-*`` temp dirs behind.  Raising ``SystemExit``
    (exit code 128+signum, the shell convention) instead lets every
    ``finally:`` fire: engines flush, the in-flight job is un-claimed, the
    provider closes.  Only the main thread may install handlers; in-process
    callers on other threads (tests, notebooks) skip the install.
    """
    installed = {}
    def _raise_exit(signum: int, frame: object) -> None:
        raise SystemExit(128 + signum)

    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                installed[signum] = signal.signal(signum, _raise_exit)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
    try:
        yield
    finally:
        for signum, previous in installed.items():
            signal.signal(signum, previous)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .enrichment import build_provider, set_active_provider

    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "measure": _cmd_measure,
        "calibrate": _cmd_calibrate,
        "censor": _cmd_censor,
        "suite": _cmd_suite,
        "scenarios": _cmd_scenarios,
        "run": _cmd_run,
        "cache": _cmd_cache,
        "geo": _cmd_geo,
        "grid": _cmd_grid,
        "jobs": _cmd_jobs,
        "results": _cmd_results,
    }
    handler = commands.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    provider = None
    building_db = args.command == "geo" and args.geo_action == "build-db"
    if not building_db:
        # Install the session-active enrichment provider before dispatch so
        # every analysis resolves through it; selection errors are usage
        # errors (one line, exit 2), like `repro run`'s validation.
        try:
            provider = build_provider(
                resolve_option(args.geo_provider, "REPRO_GEO_PROVIDER"),
                resolve_option(
                    None if args.geo_db is None else str(args.geo_db),
                    "REPRO_GEO_DB",
                ),
            )
        except ValueError as error:
            print(error.args[0] if error.args else str(error), file=sys.stderr)
            return 2
        set_active_provider(provider)
    try:
        with _terminate_via_system_exit():
            return handler(args)
    finally:
        if not building_db:
            set_active_provider(None)
            close = getattr(provider, "close", None)
            if close is not None:
                close()
        engine = getattr(args, "_engine", None)
        if engine is not None:
            engine.flush()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
