"""I2P network simulator substrate.

Two fidelity levels share one data model:

* message-level (:class:`repro.sim.network.I2PNetwork`) — every DSM/DLM,
  flood, bootstrap, and tunnel build is an explicit interaction; used for
  unit/integration tests and small networks;
* statistical (:class:`repro.sim.population.I2PPopulation` +
  :class:`repro.sim.observation.ObservationModel`) — calibrated per-day
  observation sampling for the paper-scale campaigns behind every figure.
"""

from .bandwidth import BandwidthModel, TierAssignment
from .churn import ChurnModel, LifetimeClass, PresenceSchedule
from .clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimulationClock
from .geo import (
    PRESS_FREEDOM_HIDDEN_THRESHOLD,
    AutonomousSystem,
    Country,
    GeoRegistry,
    default_registry,
)
from .exposure import (
    CachedExposure,
    ExposureEngine,
    SharedExposure,
    default_engine,
    set_default_engine,
)
from .faults import (
    CrashWindow,
    DegradationResult,
    FaultInjector,
    FaultMetrics,
    FaultPlan,
    LinkBlackout,
    ReseedOutage,
    measure_degradation,
    scenario_fault_plan,
)
from .ip import AddressProfile, IpAssignment, IpAssignmentManager
from .network import I2PNetwork, SimulatedRouter
from .observation import (
    DayExposure,
    MonitorMode,
    MonitorSpec,
    ObservationModel,
    standard_monitor_fleet,
)
from .peer import PeerDaySnapshot, PeerRecord, VisibilityClass, build_routerinfo
from .population import DayView, I2PPopulation, PopulationConfig
from .reseed import (
    DEFAULT_RESEED_SERVERS,
    ROUTERINFOS_PER_RESEED,
    BootstrapResult,
    ReseedFile,
    ReseedServer,
    bootstrap,
    create_reseed_file,
)
from .rng import SeededStreams, derive_seed
from .tunnels import (
    DEFAULT_TUNNEL_LENGTH,
    MAX_TUNNEL_LENGTH,
    TUNNEL_LIFETIME,
    PeerSelector,
    Tunnel,
    TunnelBuildOutcome,
    TunnelBuildResult,
    TunnelBuilder,
    TunnelDirection,
)

__all__ = [
    "BandwidthModel",
    "TierAssignment",
    "ChurnModel",
    "LifetimeClass",
    "PresenceSchedule",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SimulationClock",
    "PRESS_FREEDOM_HIDDEN_THRESHOLD",
    "AutonomousSystem",
    "Country",
    "GeoRegistry",
    "default_registry",
    "CachedExposure",
    "ExposureEngine",
    "SharedExposure",
    "default_engine",
    "set_default_engine",
    "CrashWindow",
    "DegradationResult",
    "FaultInjector",
    "FaultMetrics",
    "FaultPlan",
    "LinkBlackout",
    "ReseedOutage",
    "measure_degradation",
    "scenario_fault_plan",
    "AddressProfile",
    "IpAssignment",
    "IpAssignmentManager",
    "I2PNetwork",
    "SimulatedRouter",
    "DayExposure",
    "MonitorMode",
    "MonitorSpec",
    "ObservationModel",
    "standard_monitor_fleet",
    "PeerDaySnapshot",
    "PeerRecord",
    "VisibilityClass",
    "build_routerinfo",
    "DayView",
    "I2PPopulation",
    "PopulationConfig",
    "DEFAULT_RESEED_SERVERS",
    "ROUTERINFOS_PER_RESEED",
    "BootstrapResult",
    "ReseedFile",
    "ReseedServer",
    "bootstrap",
    "create_reseed_file",
    "SeededStreams",
    "derive_seed",
    "DEFAULT_TUNNEL_LENGTH",
    "MAX_TUNNEL_LENGTH",
    "TUNNEL_LIFETIME",
    "PeerSelector",
    "Tunnel",
    "TunnelBuildOutcome",
    "TunnelBuildResult",
    "TunnelBuilder",
    "TunnelDirection",
]
