"""Bandwidth-tier assignment and floodfill promotion model.

Calibration targets come from Figure 9 and Table 1 of the paper:

* the default ``L`` tier dominates the network (~21K of ~30.5K daily
  peers), ``N`` is second (~9K), and the remaining tiers trail off in the
  order P, X, O, M, K;
* roughly 9 % of observed peers carry the floodfill flag, but only ~70 % of
  them meet the automatic-promotion bandwidth requirement (N or better) —
  the rest are manually enabled, "unqualified" floodfills;
* the floodfill group's tier mix is dominated by ``N`` rather than ``L``.

The :class:`BandwidthModel` samples a primary tier, an advertised shared
bandwidth within the tier's range, and a floodfill decision conditioned on
the tier, reproducing those shapes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netdb.routerinfo import BandwidthTier, QUALIFIED_FLOODFILL_TIERS

__all__ = ["BandwidthModel", "TierAssignment", "DEFAULT_TIER_WEIGHTS", "DEFAULT_FLOODFILL_PROBABILITY"]

#: Primary-tier probabilities (sum to 1) calibrated against Figure 9.
DEFAULT_TIER_WEIGHTS: Dict[BandwidthTier, float] = {
    BandwidthTier.K: 0.008,
    BandwidthTier.L: 0.647,
    BandwidthTier.M: 0.010,
    BandwidthTier.N: 0.240,
    BandwidthTier.O: 0.020,
    BandwidthTier.P: 0.045,
    BandwidthTier.X: 0.030,
}

#: Probability that a peer of a given tier runs in floodfill mode.  For
#: N/O/P/X tiers this models automatic promotion (plus some opting out);
#: for K/L/M tiers it models operators manually forcing floodfill mode on
#: under-provisioned routers (Section 5.3.1's "unqualified" floodfills).
DEFAULT_FLOODFILL_PROBABILITY: Dict[BandwidthTier, float] = {
    BandwidthTier.K: 0.010,
    BandwidthTier.L: 0.036,
    BandwidthTier.M: 0.040,
    BandwidthTier.N: 0.130,
    BandwidthTier.O: 0.420,
    BandwidthTier.P: 0.300,
    BandwidthTier.X: 0.340,
}

#: Since router version 0.9.20, P- and X-tier routers also advertise the O
#: flag for backwards compatibility (Section 5.3.1).  Only routers still
#: carrying an old-style configuration double-advertise in practice, so the
#: model applies the compatibility flag with a fixed probability.
BACKWARD_COMPAT_O_TIERS = (BandwidthTier.P, BandwidthTier.X)
BACKWARD_COMPAT_O_PROBABILITY = 0.25


@dataclass(frozen=True)
class TierAssignment:
    """The bandwidth-related attributes sampled for one peer."""

    primary_tier: BandwidthTier
    advertised_tiers: Tuple[BandwidthTier, ...]
    shared_kbps: float
    floodfill: bool

    @property
    def qualified_floodfill(self) -> bool:
        return self.floodfill and self.primary_tier in QUALIFIED_FLOODFILL_TIERS


class BandwidthModel:
    """Samples tier / bandwidth / floodfill attributes for synthetic peers."""

    def __init__(
        self,
        tier_weights: Optional[Dict[BandwidthTier, float]] = None,
        floodfill_probability: Optional[Dict[BandwidthTier, float]] = None,
    ) -> None:
        self._tier_weights = dict(tier_weights or DEFAULT_TIER_WEIGHTS)
        self._floodfill_probability = dict(
            floodfill_probability or DEFAULT_FLOODFILL_PROBABILITY
        )
        missing = [t for t in BandwidthTier if t not in self._tier_weights]
        if missing:
            raise ValueError(f"tier weights missing entries for {missing}")
        total = sum(self._tier_weights.values())
        if total <= 0:
            raise ValueError("tier weights must sum to a positive value")
        self._tiers: List[BandwidthTier] = list(BandwidthTier.ordered())
        self._cumulative: List[float] = []
        acc = 0.0
        for tier in self._tiers:
            acc += self._tier_weights[tier] / total
            self._cumulative.append(acc)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_tier(self, rng: random.Random) -> BandwidthTier:
        point = rng.random()
        for tier, cumulative in zip(self._tiers, self._cumulative):
            if point <= cumulative:
                return tier
        return self._tiers[-1]

    def sample_bandwidth_kbps(self, tier: BandwidthTier, rng: random.Random) -> float:
        """A shared-bandwidth value (KB/s) inside the tier's range."""
        low = tier.min_kbps
        high = tier.max_kbps
        if high == float("inf"):
            # X tier: log-uniform between 2 MB/s and 10 MB/s.
            return 2000.0 * (5.0 ** rng.random())
        return rng.uniform(low, max(low, high - 1e-9))

    def sample(self, rng: random.Random) -> TierAssignment:
        tier = self.sample_tier(rng)
        kbps = self.sample_bandwidth_kbps(tier, rng)
        floodfill = rng.random() < self._floodfill_probability.get(tier, 0.0)
        advertised: Tuple[BandwidthTier, ...]
        if (
            tier in BACKWARD_COMPAT_O_TIERS
            and rng.random() < BACKWARD_COMPAT_O_PROBABILITY
        ):
            advertised = (BandwidthTier.O, tier)
        else:
            advertised = (tier,)
        return TierAssignment(
            primary_tier=tier,
            advertised_tiers=advertised,
            shared_kbps=kbps,
            floodfill=floodfill,
        )

    def sample_batch(
        self, count: int, rng: np.random.Generator
    ) -> List[TierAssignment]:
        """Sample ``count`` tier assignments with batched NumPy draws.

        Part of the bootstrap batched-RNG scheme (see
        :meth:`repro.sim.population.I2PPopulation._bootstrap_initial_population`):
        the marginal distributions match :meth:`sample` exactly, but the
        draws come from a NumPy generator in column order (tiers, then
        bandwidths, then floodfill coins, then compat-O coins) instead of
        one :mod:`random` stream in per-peer order.
        """
        cumulative = np.asarray(self._cumulative)
        tier_idx = np.searchsorted(cumulative, rng.random(count), side="left")
        tier_idx = np.minimum(tier_idx, len(self._tiers) - 1)

        bandwidth_u = rng.random(count)
        kbps = np.empty(count, dtype=np.float64)
        for code, tier in enumerate(self._tiers):
            rows = np.nonzero(tier_idx == code)[0]
            if not rows.size:
                continue
            low, high = tier.min_kbps, tier.max_kbps
            if high == float("inf"):
                kbps[rows] = 2000.0 * (5.0 ** bandwidth_u[rows])
            else:
                kbps[rows] = low + bandwidth_u[rows] * max(0.0, high - 1e-9 - low)

        floodfill_prob = np.asarray(
            [self._floodfill_probability.get(t, 0.0) for t in self._tiers]
        )
        floodfill = rng.random(count) < floodfill_prob[tier_idx]
        compat_tiers = np.asarray(
            [t in BACKWARD_COMPAT_O_TIERS for t in self._tiers], dtype=bool
        )
        compat = compat_tiers[tier_idx] & (
            rng.random(count) < BACKWARD_COMPAT_O_PROBABILITY
        )

        assignments: List[TierAssignment] = []
        for i in range(count):
            tier = self._tiers[int(tier_idx[i])]
            advertised = (BandwidthTier.O, tier) if compat[i] else (tier,)
            assignments.append(
                TierAssignment(
                    primary_tier=tier,
                    advertised_tiers=advertised,
                    shared_kbps=float(kbps[i]),
                    floodfill=bool(floodfill[i]),
                )
            )
        return assignments

    # ------------------------------------------------------------------ #
    # Expectations (useful for calibration tests)
    # ------------------------------------------------------------------ #
    def expected_tier_share(self, tier: BandwidthTier) -> float:
        total = sum(self._tier_weights.values())
        return self._tier_weights[tier] / total

    def expected_floodfill_fraction(self) -> float:
        """The overall fraction of peers expected to carry the ``f`` flag."""
        total = sum(self._tier_weights.values())
        return sum(
            (self._tier_weights[tier] / total)
            * self._floodfill_probability.get(tier, 0.0)
            for tier in BandwidthTier
        )

    def expected_unqualified_floodfill_share(self) -> float:
        """Fraction of floodfills whose tier is below N (manually enabled)."""
        total = sum(self._tier_weights.values())
        floodfill_mass = 0.0
        unqualified_mass = 0.0
        for tier in BandwidthTier:
            mass = (self._tier_weights[tier] / total) * self._floodfill_probability.get(
                tier, 0.0
            )
            floodfill_mass += mass
            if tier not in QUALIFIED_FLOODFILL_TIERS:
                unqualified_mass += mass
        if floodfill_mass == 0:
            return 0.0
        return unqualified_mass / floodfill_mass
