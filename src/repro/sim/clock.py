"""Simulation clock.

The measurement pipeline thinks in hours (netDb snapshots) and days
(cleanup, observation windows, blacklist windows), while the netDb routing
keys rotate at UTC midnight.  The clock keeps everything in seconds since
the simulation epoch and offers the day/hour conversions used throughout
the code base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["SECONDS_PER_HOUR", "SECONDS_PER_DAY", "SimulationClock"]

SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0


@dataclass
class SimulationClock:
    """A monotonically advancing simulation clock.

    Attributes
    ----------
    now:
        Current simulation time, in seconds since the epoch (day 0, 00:00).
    """

    now: float = 0.0

    def __post_init__(self) -> None:
        if self.now < 0:
            raise ValueError("simulation time cannot be negative")

    # ------------------------------------------------------------------ #
    # Advancement
    # ------------------------------------------------------------------ #
    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self.now += seconds
        return self.now

    def advance_hours(self, hours: float) -> float:
        return self.advance(hours * SECONDS_PER_HOUR)

    def advance_days(self, days: float) -> float:
        return self.advance(days * SECONDS_PER_DAY)

    def advance_to(self, target: float) -> float:
        """Advance to an absolute time (no-op if already past it)."""
        if target > self.now:
            self.now = target
        return self.now

    # ------------------------------------------------------------------ #
    # Calendar helpers
    # ------------------------------------------------------------------ #
    @property
    def day(self) -> int:
        """The current (0-based) simulation day."""
        return int(self.now // SECONDS_PER_DAY)

    @property
    def hour_of_day(self) -> int:
        return int((self.now % SECONDS_PER_DAY) // SECONDS_PER_HOUR)

    @property
    def seconds_into_day(self) -> float:
        return self.now % SECONDS_PER_DAY

    def start_of_day(self, day: int) -> float:
        if day < 0:
            raise ValueError("day must be non-negative")
        return day * SECONDS_PER_DAY

    def hours_in_day(self, day: int) -> Iterator[float]:
        """Iterate over the 24 hourly timestamps within a simulation day."""
        start = self.start_of_day(day)
        for hour in range(24):
            yield start + hour * SECONDS_PER_HOUR

    def copy(self) -> "SimulationClock":
        return SimulationClock(now=self.now)
