"""Struct-of-arrays storage for the synthetic peer population.

The measurement pipeline's hot loop asks one question ~2.7M times per
paper-scale campaign: *what does peer i look like on day d?*  Answering it
through per-peer ``PeerDaySnapshot`` dataclasses costs one Python object
allocation (plus attribute churn) per peer-day.  :class:`PeerColumns`
stores the same facts once, as NumPy columns over a global peer index:

* static attributes (activity, base visibility, visibility class, tier,
  floodfill flag, membership window, port) written at peer creation;
* a presence bitmatrix ``(peers × horizon_days)`` replacing the per-peer
  Python presence lists, so "who is online on day d" is one column slice;
* the *current* IP assignment (address, IPv6, ASN, country, a version
  counter bumped on rotation) updated in place by the daily churn step.

:class:`DayColumns` is the per-day slice of those columns restricted to
the peers online that day — the payload behind a columnar
:class:`~repro.sim.population.DayView`.  Downstream consumers (the
observation model, monitoring routers, the observation log) operate on
these arrays directly; row-oriented ``PeerDaySnapshot`` objects are only
materialised lazily for callers that still want them.

Arrays grow by capacity doubling; all public accessors return views
trimmed to the live ``size``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..netdb.routerinfo import BandwidthTier
from .ip import IpAssignment
from .peer import VisibilityClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .peer import PeerRecord

__all__ = [
    "VIS_CODE",
    "VIS_PUBLIC",
    "VIS_FIREWALLED",
    "VIS_HIDDEN",
    "VIS_FLAPPING",
    "TIER_ORDER",
    "PeerColumns",
    "MemmapPeerColumns",
    "DayColumns",
]

#: Stable integer codes for the visibility classes.
VIS_PUBLIC, VIS_FIREWALLED, VIS_HIDDEN, VIS_FLAPPING = 0, 1, 2, 3

VIS_CODE: Dict[VisibilityClass, int] = {
    VisibilityClass.PUBLIC: VIS_PUBLIC,
    VisibilityClass.FIREWALLED: VIS_FIREWALLED,
    VisibilityClass.HIDDEN: VIS_HIDDEN,
    VisibilityClass.FLAPPING: VIS_FLAPPING,
}

#: Bandwidth tiers in code order (``tier_code`` indexes into this tuple).
TIER_ORDER: Tuple[BandwidthTier, ...] = tuple(BandwidthTier)

_TIER_CODE: Dict[BandwidthTier, int] = {tier: i for i, tier in enumerate(TIER_ORDER)}


class PeerColumns:
    """Growable struct-of-arrays store over the global peer index.

    With ``retain_records=False`` the per-peer ``PeerRecord`` objects are
    *not* kept after their columns are extracted — the dominant RAM cost of
    a paper-scale population.  Lean stores cannot materialise row-oriented
    snapshots (``records`` stays empty), which the streamed analyses never
    need; the out-of-core exposure build uses this mode.
    """

    def __init__(
        self,
        horizon_days: int,
        initial_capacity: int = 1024,
        retain_records: bool = True,
    ) -> None:
        if horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        self.horizon_days = horizon_days
        self.size = 0
        self._capacity = max(16, initial_capacity)
        self.retain_records = retain_records
        #: The row-oriented records, index-aligned with the columns.  Shared
        #: with :class:`~repro.sim.population.I2PPopulation.peers`.  Empty
        #: when ``retain_records`` is off.
        self.records: List["PeerRecord"] = []
        self._allocate(self._capacity)

    # ------------------------------------------------------------------ #
    # Storage management
    # ------------------------------------------------------------------ #
    def _allocate(self, capacity: int) -> None:
        self._peer_ids = np.empty(capacity, dtype=object)
        self._activity = np.zeros(capacity, dtype=np.float64)
        self._base_visibility = np.zeros(capacity, dtype=np.float64)
        self._vis_class = np.zeros(capacity, dtype=np.uint8)
        self._tier_code = np.zeros(capacity, dtype=np.int16)
        self._advertised_mask = np.zeros(capacity, dtype=np.uint8)
        self._floodfill = np.zeros(capacity, dtype=bool)
        self._supports_ipv6 = np.zeros(capacity, dtype=bool)
        self._static_ip = np.zeros(capacity, dtype=bool)
        self._join_day = np.zeros(capacity, dtype=np.int32)
        self._leave_day = np.zeros(capacity, dtype=np.int32)
        self._port = np.zeros(capacity, dtype=np.int32)
        self._presence = np.zeros((capacity, self.horizon_days), dtype=bool)
        self._cur_ip = np.empty(capacity, dtype=object)
        self._cur_ipv6 = np.empty(capacity, dtype=object)
        self._cur_country = np.empty(capacity, dtype=object)
        self._cur_asn = np.full(capacity, -1, dtype=np.int64)
        self._cur_version = np.zeros(capacity, dtype=np.int64)

    def _grow(self) -> None:
        old = self.__dict__.copy()
        self._capacity *= 2
        self._allocate(self._capacity)
        n = self.size
        for name in (
            "_peer_ids",
            "_activity",
            "_base_visibility",
            "_vis_class",
            "_tier_code",
            "_advertised_mask",
            "_floodfill",
            "_supports_ipv6",
            "_static_ip",
            "_join_day",
            "_leave_day",
            "_port",
            "_presence",
            "_cur_ip",
            "_cur_ipv6",
            "_cur_country",
            "_cur_asn",
            "_cur_version",
        ):
            getattr(self, name)[:n] = old[name][:n]

    def append(
        self,
        record: "PeerRecord",
        static_ip: bool,
        assignment: IpAssignment,
    ) -> int:
        """Append one peer's columns; returns its global index."""
        if self.size == self._capacity:
            self._grow()
        i = self.size
        if record.index != i:
            raise ValueError(
                f"record index {record.index} does not match column row {i}"
            )
        if self.retain_records:
            self.records.append(record)
        self._peer_ids[i] = record.peer_id
        self._activity[i] = record.activity
        self._base_visibility[i] = record.base_visibility
        self._vis_class[i] = VIS_CODE[record.visibility_class]
        self._tier_code[i] = _TIER_CODE[record.tier.primary_tier]
        advertised = 0
        for tier in record.tier.advertised_tiers:
            advertised |= 1 << _TIER_CODE[tier]
        self._advertised_mask[i] = advertised
        self._floodfill[i] = record.tier.floodfill
        self._supports_ipv6[i] = record.supports_ipv6
        self._static_ip[i] = static_ip
        self._join_day[i] = record.schedule.join_day
        self._leave_day[i] = record.schedule.leave_day
        self._port[i] = record.port
        presence = np.asarray(record.presence, dtype=bool)
        self._presence[i, : presence.shape[0]] = presence[: self.horizon_days]
        self.size = i + 1
        self.set_assignment(i, assignment)
        return i

    def set_assignment(self, index: int, assignment: IpAssignment) -> None:
        """Install a peer's current IP assignment and bump its version."""
        self._cur_ip[index] = assignment.ip
        self._cur_ipv6[index] = (
            assignment.ipv6 if self._supports_ipv6[index] else None
        )
        self._cur_country[index] = assignment.country_code
        self._cur_asn[index] = -1 if assignment.asn is None else assignment.asn
        self._cur_version[index] += 1

    # ------------------------------------------------------------------ #
    # Trimmed views
    # ------------------------------------------------------------------ #
    @property
    def peer_ids(self) -> np.ndarray:
        return self._peer_ids[: self.size]

    @property
    def activity(self) -> np.ndarray:
        return self._activity[: self.size]

    @property
    def base_visibility(self) -> np.ndarray:
        return self._base_visibility[: self.size]

    @property
    def vis_class(self) -> np.ndarray:
        return self._vis_class[: self.size]

    @property
    def tier_code(self) -> np.ndarray:
        return self._tier_code[: self.size]

    @property
    def advertised_mask(self) -> np.ndarray:
        """Per-peer bitmask of advertised tiers (bit ``i`` = ``TIER_ORDER[i]``)."""
        return self._advertised_mask[: self.size]

    @property
    def floodfill(self) -> np.ndarray:
        return self._floodfill[: self.size]

    @property
    def supports_ipv6(self) -> np.ndarray:
        return self._supports_ipv6[: self.size]

    @property
    def static_ip(self) -> np.ndarray:
        return self._static_ip[: self.size]

    @property
    def join_day(self) -> np.ndarray:
        return self._join_day[: self.size]

    @property
    def leave_day(self) -> np.ndarray:
        return self._leave_day[: self.size]

    @property
    def port(self) -> np.ndarray:
        return self._port[: self.size]

    @property
    def presence(self) -> np.ndarray:
        return self._presence[: self.size]

    @property
    def cur_ip(self) -> np.ndarray:
        return self._cur_ip[: self.size]

    @property
    def cur_ipv6(self) -> np.ndarray:
        return self._cur_ipv6[: self.size]

    @property
    def cur_country(self) -> np.ndarray:
        return self._cur_country[: self.size]

    @property
    def cur_asn(self) -> np.ndarray:
        return self._cur_asn[: self.size]

    @property
    def cur_version(self) -> np.ndarray:
        return self._cur_version[: self.size]

    # ------------------------------------------------------------------ #
    # Day queries
    # ------------------------------------------------------------------ #
    def online_indices(self, day: int) -> np.ndarray:
        """Global indices of the peers online on ``day``."""
        return np.nonzero(self._presence[: self.size, day])[0]

    def departures_on(self, day: int) -> int:
        return int(np.count_nonzero(self._leave_day[: self.size] == day))


class MemmapPeerColumns(PeerColumns):
    """A read-only :class:`PeerColumns` whose columns are disk-backed arrays.

    Built by the exposure-cache bundle reader: each column is an
    ``np.memmap`` over a raw shard file (written once by the population
    build, mapped read-only thereafter), so restoring a paper-scale store
    costs page-cache instead of RSS.  Only the columns the streamed
    analyses read are persisted; touching anything else (presence matrix,
    current-assignment state, visibility class) raises ``AttributeError``
    with a pointer at the bundle format.  Peer ids are decoded lazily from
    the id blob on first access and cached.
    """

    #: Columns a bundle persists, in on-disk order (name → dtype).
    STORE_DTYPES: Dict[str, str] = {
        "tier_code": "int16",
        "advertised_mask": "uint8",
        "floodfill": "bool",
        "join_day": "int32",
        "port": "int32",
        "activity": "float64",
        "base_visibility": "float64",
    }

    def __init__(
        self,
        horizon_days: int,
        size: int,
        columns: Dict[str, np.ndarray],
        peer_id_blob: np.ndarray,
        peer_id_lengths: np.ndarray,
    ) -> None:
        if horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        missing = set(self.STORE_DTYPES) - set(columns)
        if missing:
            raise ValueError(f"bundle store is missing columns: {sorted(missing)}")
        self.horizon_days = horizon_days
        self.size = int(size)
        self._capacity = self.size
        self.retain_records = False
        self.records: List["PeerRecord"] = []
        for name in self.STORE_DTYPES:
            array = columns[name]
            if array.shape[0] != self.size:
                raise ValueError(
                    f"store column {name!r} has {array.shape[0]} rows, "
                    f"expected {self.size}"
                )
            setattr(self, f"_{name}", array)
        self._id_blob = peer_id_blob
        self._id_lengths = peer_id_lengths
        self._decoded_peer_ids: Optional[np.ndarray] = None

    @property
    def peer_ids(self) -> np.ndarray:
        if self._decoded_peer_ids is None:
            blob = bytes(memoryview(self._id_blob))
            offsets = np.concatenate(
                ([0], np.cumsum(np.asarray(self._id_lengths, dtype=np.int64)))
            )
            decoded = np.empty(self.size, dtype=object)
            for i in range(self.size):
                decoded[i] = blob[offsets[i] : offsets[i + 1]]
            self._decoded_peer_ids = decoded
        return self._decoded_peer_ids

    def append(self, record, static_ip, assignment):  # pragma: no cover - guard
        raise RuntimeError("a memmap-backed peer store is read-only")

    def set_assignment(self, index, assignment):  # pragma: no cover - guard
        raise RuntimeError("a memmap-backed peer store is read-only")

    def __getattr__(self, name: str):
        # Only reached for attributes never set: a column the bundle format
        # does not persist.
        raise AttributeError(
            f"{type(self).__name__} has no {name!r}: the exposure-cache "
            f"bundle only persists {sorted(self.STORE_DTYPES)} plus peer "
            f"ids; rebuild the population for anything else"
        )


@dataclass
class DayColumns:
    """One day's columns, restricted (and index-aligned) to online peers.

    ``indices`` maps each row back to the global peer index; every other
    array has one entry per online peer in global-index order — the same
    order the row-oriented snapshot list used, so positional observation
    indices stay interchangeable between the two representations.
    """

    day: int
    columns: PeerColumns
    indices: np.ndarray  # global peer indices (int64)
    peer_ids: np.ndarray  # object: bytes
    activity: np.ndarray  # float64
    base_visibility: np.ndarray  # float64
    tier_code: np.ndarray  # int16
    floodfill: np.ndarray  # bool
    reachable: np.ndarray  # bool
    firewalled: np.ndarray  # bool
    hidden: np.ndarray  # bool
    valid_ip: np.ndarray  # bool: has a usable public IPv4 today
    new_today: np.ndarray  # bool
    port: np.ndarray  # int32
    ip: np.ndarray  # object: str or None
    ipv6: np.ndarray  # object: str or None
    country: np.ndarray  # object: str
    asn: np.ndarray  # int64 (-1 = unknown)
    version: np.ndarray  # int64: IP-assignment version at capture time

    @property
    def count(self) -> int:
        return int(self.indices.size)
