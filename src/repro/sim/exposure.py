"""Shared exposure engine: one population + exposure computation, many experiments.

The paper's figure suite re-runs near-identical measurement campaigns under
varied monitor configurations: the bandwidth sweep (Figure 3), the router
count sweep (Figure 4), and the main campaign (Figures 5–12) all observe
*the same* seeded population.  Before this module each experiment rebuilt
that population — and re-drew the daily exposure indicators — from scratch,
so a full figure suite cost N× the single-campaign wall time.

:class:`ExposureEngine` is a keyed cache fixing that:

* **Cache key** — ``(PopulationConfig, observation_seed)``.  The population
  config (which includes the population seed, target size, and horizon) and
  the derived observation seed fully determine every array this module
  produces; ``days`` is *not* part of the key — day state is materialised
  lazily and a longer request simply extends the shared prefix, so an
  exposure computed for a 3-day sweep is byte-identical to the first three
  days of the 10-day main campaign's exposure.
* **Shared day state** — per cached key, a :class:`SharedExposure` holds the
  fully built columnar population, one :class:`~repro.sim.population.DayView`
  per materialised day, and one :class:`~repro.sim.observation.DayExposure`
  (the flood/tunnel indicator draws shared by every monitor) per day.
  Downstream consumers treat all of it as read-only.
* **Per-monitor masks** — ``monitor_day_mask(spec, day)`` returns the boolean
  observation mask of one monitor on one day, computed once and cached
  bit-packed.  Masks are drawn from a generator seeded by
  ``derive_seed(observation_seed, "monitor:<name>|<mode>|<kbps>|day:<day>")``,
  so a monitor's mask depends only on the cache key, the spec, and the day —
  *not* on which other monitors exist.  Experiments therefore share masks:
  the ``ff-0`` router of the main campaign and the ``ff-0`` router of the
  router-count sweep see exactly the same peers.

RNG draw-order note (documented break)
--------------------------------------
The historical engine drew exposure indicators and per-monitor uniforms from
one sequential stream in fleet order, which made every day's draws depend on
the fleet size of all earlier days.  The engine replaces that with the keyed
scheme above: a dedicated ``"exposure"`` substream consumed day by day, plus
one derived substream per ``(monitor, day)``.  Campaign realisations at a
fixed seed therefore differ from pre-engine versions draw-by-draw, while all
marginal observation probabilities — and hence every calibrated figure shape
— are unchanged.  In exchange, cached and rebuilt-from-scratch experiments
are byte-identical, which `tests/sim/test_exposure.py` locks in.

Cache invalidation is by eviction only: entries are immutable once built, a
small LRU (default 4 keys) bounds memory, and :meth:`ExposureEngine.clear`
drops everything.  An optional process-pool fan-out
(:meth:`SharedExposure.prefetch_masks` with ``workers > 1``, or the
``REPRO_EXPOSURE_WORKERS`` environment variable) computes per-monitor masks
for large fleets in parallel; results are identical to the serial path
because every mask has its own derived seed.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .observation import DayExposure, MonitorSpec, ObservationModel
from .population import DayView, I2PPopulation, PopulationConfig
from .rng import derive_seed

__all__ = [
    "CachedExposure",
    "ExposureEngine",
    "SharedExposure",
    "default_engine",
    "set_default_engine",
]


MonitorKey = Tuple[str, str, float]


def _monitor_key(spec: MonitorSpec) -> MonitorKey:
    return (spec.name, spec.mode.value, float(spec.shared_kbps))


def _mask_stream_name(spec: MonitorSpec, day: int) -> str:
    # repr() keeps full float precision: two monitors whose bandwidths agree
    # only to a few significant digits must not share a mask stream.
    return f"monitor:{spec.name}|{spec.mode.value}|{spec.shared_kbps!r}|day:{day}"


def _draw_monitor_mask(
    observation_seed: int, spec: MonitorSpec, day: int, exposure: DayExposure
) -> np.ndarray:
    """The pure per-(monitor, day) mask computation (also run in workers)."""
    probabilities = ObservationModel.observation_probabilities(exposure, spec)
    rng = np.random.default_rng(
        derive_seed(observation_seed, _mask_stream_name(spec, day))
    )
    return rng.random(probabilities.size) < probabilities


# --------------------------------------------------------------------------- #
# Optional process-pool fan-out
# --------------------------------------------------------------------------- #
#: Per-worker day exposure payload, installed by the pool initializer so each
#: task only ships its (spec, day) tuple instead of the day arrays.
_WORKER_EXPOSURES: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _pool_init(payload: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]) -> None:
    global _WORKER_EXPOSURES
    _WORKER_EXPOSURES = payload


def _pool_compute(
    task: Tuple[int, str, str, float, int]
) -> Tuple[str, str, float, int, np.ndarray, int]:
    observation_seed, name, mode_value, kbps, day = task
    flood, tunnel, visibility = _WORKER_EXPOSURES[day]
    from .observation import MonitorMode  # local import keeps workers lean

    spec = MonitorSpec(name, MonitorMode(mode_value), kbps)
    exposure = DayExposure(flood, tunnel, visibility)
    mask = _draw_monitor_mask(observation_seed, spec, day, exposure)
    return (name, mode_value, kbps, day, np.packbits(mask), mask.size)


def _parse_workers(value: object, source: str) -> int:
    """Validate a worker count: non-negative integer, clear error otherwise."""
    try:
        workers = int(str(value))
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 disables the process pool); got {value!r}"
        ) from None
    if workers < 0:
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 disables the process pool); got {workers}"
        )
    return workers


def _env_workers() -> int:
    value = os.environ.get("REPRO_EXPOSURE_WORKERS")
    if value is None or value.strip() == "":
        return 0
    return _parse_workers(value, "REPRO_EXPOSURE_WORKERS")


class SharedExposure:
    """Read-only day state shared by every experiment over one cache key."""

    def __init__(
        self, population_config: PopulationConfig, observation_seed: int
    ) -> None:
        self.population_config = population_config
        self.observation_seed = observation_seed
        self.population = I2PPopulation(config=population_config)
        self.views: List[DayView] = []
        self._exposures: List[DayExposure] = []
        self._exposure_rng = np.random.default_rng(
            derive_seed(observation_seed, "exposure")
        )
        #: Bit-packed masks keyed by (monitor key, day).
        self._masks: Dict[Tuple[MonitorKey, int], Tuple[np.ndarray, int]] = {}

    # ------------------------------------------------------------------ #
    # Day materialisation
    # ------------------------------------------------------------------ #
    @property
    def days_materialised(self) -> int:
        return len(self.views)

    def ensure_days(self, days: int) -> None:
        """Materialise day views and exposure draws for days ``[0, days)``.

        Extending is prefix-stable: the state for day *d* is identical no
        matter how many further days are materialised afterwards.
        """
        if days > self.population_config.horizon_days:
            raise ValueError(
                f"{days} days exceed the population horizon "
                f"{self.population_config.horizon_days}"
            )
        if days > len(self.views) and self.population._current_day != len(self.views) - 1:
            raise RuntimeError(
                "the shared population was advanced outside the exposure "
                "engine (e.g. via CampaignResult.population.day_view); the "
                "cached day state can no longer be extended — read days "
                "through SharedExposure.view(day), or use a private "
                "ExposureEngine for runs whose population you mutate"
            )
        while len(self.views) < days:
            view = self.population.day_view(len(self.views))
            self.views.append(view)
            self._exposures.append(
                ObservationModel.draw_day_exposure(view, self._exposure_rng)
            )

    def view(self, day: int) -> DayView:
        self.ensure_days(day + 1)
        return self.views[day]

    def exposure(self, day: int) -> DayExposure:
        self.ensure_days(day + 1)
        return self._exposures[day]

    def daily_online(self, days: int) -> List[int]:
        self.ensure_days(days)
        return [view.online_count for view in self.views[:days]]

    # ------------------------------------------------------------------ #
    # Per-monitor masks
    # ------------------------------------------------------------------ #
    def monitor_day_mask(self, spec: MonitorSpec, day: int) -> np.ndarray:
        """Boolean mask of the peers ``spec`` observes on ``day`` (cached)."""
        key = (_monitor_key(spec), day)
        cached = self._masks.get(key)
        if cached is None:
            mask = _draw_monitor_mask(
                self.observation_seed, spec, day, self.exposure(day)
            )
            self._masks[key] = (np.packbits(mask), mask.size)
            return mask
        packed, count = cached
        return np.unpackbits(packed, count=count).view(bool)

    def fleet_day_masks(
        self, specs: Sequence[MonitorSpec], day: int
    ) -> np.ndarray:
        """``(len(specs), online_count)`` boolean matrix for one day."""
        count = self.view(day).online_count
        masks = np.empty((len(specs), count), dtype=bool)
        for row, spec in enumerate(specs):
            masks[row] = self.monitor_day_mask(spec, day)
        return masks

    def prefetch_masks(
        self,
        specs: Sequence[MonitorSpec],
        days: int,
        workers: Optional[int] = None,
        min_tasks_per_worker: int = 4,
    ) -> None:
        """Compute (and cache) all ``(spec, day)`` masks, optionally in a
        process pool.

        ``workers`` defaults to the ``REPRO_EXPOSURE_WORKERS`` environment
        variable (0 = serial).  Results are bit-for-bit identical to the
        serial path — each mask has its own derived seed — so the pool is a
        pure wall-time optimisation for large fleets.  Any pool failure
        falls back to serial computation.  A non-integer or negative worker
        count (explicit or via the environment variable) raises
        ``ValueError`` up front.
        """
        workers = (
            _env_workers()
            if workers is None
            else _parse_workers(workers, "workers")
        )
        self.ensure_days(days)
        pending: List[Tuple[MonitorSpec, int]] = []
        for spec in specs:
            key = _monitor_key(spec)
            for day in range(days):
                if (key, day) not in self._masks:
                    pending.append((spec, day))
        if not pending:
            return
        if workers > 1 and len(pending) >= workers * min_tasks_per_worker:
            try:
                self._prefetch_pool(pending, days, workers)
                return
            except Exception:  # pragma: no cover - pool availability varies
                pass
        for spec, day in pending:
            self.monitor_day_mask(spec, day)

    def _prefetch_pool(
        self, pending: Sequence[Tuple[MonitorSpec, int]], days: int, workers: int
    ) -> None:
        from concurrent.futures import ProcessPoolExecutor

        payload = {
            day: (
                np.asarray(self._exposures[day].flood_exposed),
                np.asarray(self._exposures[day].tunnel_exposed),
                np.asarray(self._exposures[day].visibility),
            )
            for day in sorted({day for _, day in pending})
        }
        tasks = [
            (self.observation_seed, spec.name, spec.mode.value, float(spec.shared_kbps), day)
            for spec, day in pending
        ]
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_pool_init, initargs=(payload,)
        ) as pool:
            for name, mode_value, kbps, day, packed, count in pool.map(
                _pool_compute, tasks, chunksize=max(1, len(tasks) // (workers * 4))
            ):
                self._masks[((name, mode_value, kbps), day)] = (packed, count)

    # ------------------------------------------------------------------ #
    # Unions / coverage helpers
    # ------------------------------------------------------------------ #
    def union_day_mask(self, specs: Sequence[MonitorSpec], day: int) -> np.ndarray:
        masks = self.fleet_day_masks(specs, day)
        return np.logical_or.reduce(masks, axis=0)

    def cumulative_union_sizes(
        self, specs: Sequence[MonitorSpec], day: int
    ) -> List[int]:
        return ObservationModel.cumulative_union_sizes_from_masks(
            self.fleet_day_masks(specs, day)
        )


class CachedExposure(SharedExposure):
    """A read-only :class:`SharedExposure` restored from the npz disk cache.

    Day state comes fully materialised from the archive (see
    :mod:`repro.sim.exposure_cache` for the format); per-monitor masks are
    recomputed on demand from the restored exposure draws, bit-identically
    to a freshly built entry.  Restored entries cannot be extended — the
    population behind them is an array-only stub — so asking for more days
    than were persisted raises ``RuntimeError`` (the engine reacts by
    rebuilding from scratch).
    """

    def __init__(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        population,
        views: List[DayView],
        exposures: List["DayExposure"],
    ) -> None:
        self.population_config = population_config
        self.observation_seed = observation_seed
        self.population = population
        self.views = list(views)
        self._exposures = list(exposures)
        self._masks = {}

    def ensure_days(self, days: int) -> None:
        if days > len(self.views):
            raise RuntimeError(
                f"this exposure was restored from the disk cache with only "
                f"{len(self.views)} day(s) materialised and cannot be "
                f"extended to {days}; rebuild through an ExposureEngine"
            )


class ExposureEngine:
    """LRU cache of :class:`SharedExposure` entries, optionally disk-backed.

    With ``cache_dir`` set, entries are persisted as compressed npz files
    keyed by a digest of ``(population config, observation seed)`` (see
    :mod:`repro.sim.exposure_cache`), and ``get`` consults the directory
    before building a population — so repeated CLI runs across *processes*
    reuse paper-scale populations.  Disk entries holding at least the
    requested number of days are loaded read-only; shorter ones are
    rebuilt and overwritten with the longer day range.
    """

    def __init__(
        self, capacity: int = 4, cache_dir: Optional["os.PathLike"] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self._entries: "OrderedDict[Tuple[PopulationConfig, int], SharedExposure]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        #: Days already persisted per key (avoids rewriting unchanged files).
        self._persisted_days: Dict[Tuple[PopulationConfig, int], int] = {}

    def get(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        days: Optional[int] = None,
    ) -> SharedExposure:
        """The shared exposure for a key, built on first use.

        When ``days`` is given, at least that many days are materialised
        before returning.
        """
        key = (population_config, observation_seed)
        needed = 0 if days is None else days
        entry = self._entries.get(key)
        if entry is not None and (
            isinstance(entry, CachedExposure) and needed > entry.days_materialised
        ):
            # The restored entry is too short and cannot be extended.
            del self._entries[key]
            entry = None
        if entry is None:
            entry = self._load_from_disk(population_config, observation_seed, needed)
        if entry is None:
            self.misses += 1
            entry = SharedExposure(population_config, observation_seed)
        else:
            self.hits += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if days is not None:
            entry.ensure_days(days)
        self._maybe_persist(key, entry)
        return entry

    # ------------------------------------------------------------------ #
    # Disk cache
    # ------------------------------------------------------------------ #
    def _load_from_disk(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        needed_days: int,
    ) -> Optional[SharedExposure]:
        if self.cache_dir is None:
            return None
        from . import exposure_cache

        path = exposure_cache.cache_path(
            self.cache_dir, population_config, observation_seed
        )
        if not path.is_file():
            return None
        try:
            # Peek the meta record first: rejecting a too-short file must
            # not pay for decoding its full day state.
            meta = exposure_cache.read_meta(path)
            if needed_days > int(meta.get("days", -1)):
                return None
            entry = exposure_cache.load_exposure(path)
        except Exception as error:  # noqa: BLE001 - unreadable/corrupt/foreign
            # Any failure on an existing file (truncated zip, bad JSON
            # meta, missing keys, wrong schema) is a cache miss — but a
            # *loud* one: warn, evict the bad file, rebuild and overwrite.
            exposure_cache.evict_corrupt(path, error)
            return None
        if needed_days > entry.days_materialised:
            return None
        key = (population_config, observation_seed)
        self._persisted_days[key] = entry.days_materialised
        self.disk_hits += 1
        return entry

    def _maybe_persist(
        self, key: Tuple[PopulationConfig, int], entry: SharedExposure
    ) -> None:
        if self.cache_dir is None or isinstance(entry, CachedExposure):
            return
        days = entry.days_materialised
        if days <= 0 or days <= self._persisted_days.get(key, 0):
            return
        from . import exposure_cache

        try:
            exposure_cache.save_exposure(entry, self.cache_dir)
        except OSError:  # cache dir unwritable: stay in-memory only
            return
        self._persisted_days[key] = days

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        # An empty engine must stay truthy: callers write
        # ``engine or default_engine()`` style fallbacks and a fresh cache
        # is still a perfectly good engine.
        return True

    def clear(self) -> None:
        self._entries.clear()


_DEFAULT_ENGINE: Optional[ExposureEngine] = None


def default_engine() -> ExposureEngine:
    """The process-wide engine campaigns fall back to when none is passed."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExposureEngine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[ExposureEngine]) -> Optional[ExposureEngine]:
    """Replace the process-wide default engine; returns the previous one."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
