"""Shared exposure engine: one population + exposure computation, many experiments.

The paper's figure suite re-runs near-identical measurement campaigns under
varied monitor configurations: the bandwidth sweep (Figure 3), the router
count sweep (Figure 4), and the main campaign (Figures 5–12) all observe
*the same* seeded population.  Before this module each experiment rebuilt
that population — and re-drew the daily exposure indicators — from scratch,
so a full figure suite cost N× the single-campaign wall time.

:class:`ExposureEngine` is a keyed cache fixing that:

* **Cache key** — ``(PopulationConfig, observation_seed)``.  The population
  config (which includes the population seed, target size, and horizon) and
  the derived observation seed fully determine every array this module
  produces; ``days`` is *not* part of the key — day state is materialised
  lazily and a longer request simply extends the shared prefix, so an
  exposure computed for a 3-day sweep is byte-identical to the first three
  days of the 10-day main campaign's exposure.
* **Shared day state** — per cached key, a :class:`SharedExposure` holds the
  fully built columnar population, one :class:`~repro.sim.population.DayView`
  per materialised day, and one :class:`~repro.sim.observation.DayExposure`
  (the flood/tunnel indicator draws shared by every monitor) per day.
  Downstream consumers treat all of it as read-only.
* **Per-monitor masks** — ``monitor_day_mask(spec, day)`` returns the boolean
  observation mask of one monitor on one day, computed once and cached
  bit-packed.  Masks are drawn from a generator seeded by
  ``derive_seed(observation_seed, "monitor:<name>|<mode>|<kbps>|day:<day>")``,
  so a monitor's mask depends only on the cache key, the spec, and the day —
  *not* on which other monitors exist.  Experiments therefore share masks:
  the ``ff-0`` router of the main campaign and the ``ff-0`` router of the
  router-count sweep see exactly the same peers.

RNG draw-order note (documented break)
--------------------------------------
The historical engine drew exposure indicators and per-monitor uniforms from
one sequential stream in fleet order, which made every day's draws depend on
the fleet size of all earlier days.  The engine replaces that with the keyed
scheme above: a dedicated ``"exposure"`` substream consumed day by day, plus
one derived substream per ``(monitor, day)``.  Campaign realisations at a
fixed seed therefore differ from pre-engine versions draw-by-draw, while all
marginal observation probabilities — and hence every calibrated figure shape
— are unchanged.  In exchange, cached and rebuilt-from-scratch experiments
are byte-identical, which `tests/sim/test_exposure.py` locks in.

Cache invalidation is by eviction only: entries are immutable once built, a
small LRU (default 4 keys) bounds memory, and :meth:`ExposureEngine.clear`
drops everything.  An optional process-pool fan-out
(:meth:`SharedExposure.prefetch_masks` with ``workers > 1``, or the
``REPRO_EXPOSURE_WORKERS`` environment variable) computes per-monitor masks
for large fleets in parallel; results are identical to the serial path
because every mask has its own derived seed.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .columns import DayColumns
from .observation import DayExposure, MonitorSpec, ObservationModel
from .population import DayView, I2PPopulation, PopulationConfig
from .rng import derive_seed

__all__ = [
    "AUTO_WORKER_MONITOR_CROSSOVER",
    "CachedExposure",
    "ExposureEngine",
    "SharedExposure",
    "build_out_of_core",
    "default_engine",
    "set_default_engine",
]


MonitorKey = Tuple[str, str, float]


def _monitor_key(spec: MonitorSpec) -> MonitorKey:
    return (spec.name, spec.mode.value, float(spec.shared_kbps))


def _mask_stream_name(spec: MonitorSpec, day: int) -> str:
    # repr() keeps full float precision: two monitors whose bandwidths agree
    # only to a few significant digits must not share a mask stream.
    return f"monitor:{spec.name}|{spec.mode.value}|{spec.shared_kbps!r}|day:{day}"


def _draw_monitor_mask(
    observation_seed: int, spec: MonitorSpec, day: int, exposure: DayExposure
) -> np.ndarray:
    """The pure per-(monitor, day) mask computation (also run in workers)."""
    probabilities = ObservationModel.observation_probabilities(exposure, spec)
    rng = np.random.default_rng(
        derive_seed(observation_seed, _mask_stream_name(spec, day))
    )
    return rng.random(probabilities.size) < probabilities


# --------------------------------------------------------------------------- #
# Optional process-pool fan-out
# --------------------------------------------------------------------------- #
#: Per-worker day exposure payload, installed by the pool initializer so each
#: task only ships its (spec, day) tuple instead of the day arrays.
_WORKER_EXPOSURES: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}


def _pool_init(payload: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]]) -> None:
    global _WORKER_EXPOSURES
    _WORKER_EXPOSURES = payload


def _pool_compute(
    task: Tuple[int, str, str, float, int]
) -> Tuple[str, str, float, int, np.ndarray, int]:
    observation_seed, name, mode_value, kbps, day = task
    flood, tunnel, visibility = _WORKER_EXPOSURES[day]
    from .observation import MonitorMode  # local import keeps workers lean

    spec = MonitorSpec(name, MonitorMode(mode_value), kbps)
    exposure = DayExposure(flood, tunnel, visibility)
    mask = _draw_monitor_mask(observation_seed, spec, day, exposure)
    return (name, mode_value, kbps, day, np.packbits(mask), mask.size)


def _parse_workers(value: object, source: str) -> int:
    """Validate a worker count: non-negative integer, clear error otherwise."""
    try:
        workers = int(str(value))
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 disables the process pool); got {value!r}"
        ) from None
    if workers < 0:
        raise ValueError(
            f"{source} must be a non-negative integer "
            f"(0 disables the process pool); got {workers}"
        )
    return workers


def _env_workers() -> Optional[int]:
    """The ``REPRO_EXPOSURE_WORKERS`` override, or ``None`` when unset.

    An explicit value — including ``0`` — always wins over the automatic
    crossover policy.
    """
    value = os.environ.get("REPRO_EXPOSURE_WORKERS")
    if value is None or value.strip() == "":
        return None
    return _parse_workers(value, "REPRO_EXPOSURE_WORKERS")


#: Fleet size past which the process-pool fan-out pays for itself on a
#: multi-core host.  Measured on the 1-CPU reference container (see
#: ROADMAP): serial per-mask cost is ~0.4 ms (scale 1.0) to ~4 ms
#: (scale 10) against ~0.10–0.15 s of fixed pool spawn plus ~0.4 ms of
#: per-task dispatch, so with ≥ 4 effective workers the pool amortises its
#: spawn once a prefetch covers ≥ 32 monitors; below 2 CPUs it can never
#: win (measured speedup plateaus at 0.65–0.74×) and stays off.
AUTO_WORKER_MONITOR_CROSSOVER = 32


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _auto_workers(monitor_count: int) -> int:
    """Workers the crossover policy picks for a fleet of ``monitor_count``."""
    cpus = _available_cpus()
    if cpus < 2 or monitor_count < AUTO_WORKER_MONITOR_CROSSOVER:
        return 0
    return min(cpus, 8)


class SharedExposure:
    """Read-only day state shared by every experiment over one cache key."""

    def __init__(
        self, population_config: PopulationConfig, observation_seed: int
    ) -> None:
        self.population_config = population_config
        self.observation_seed = observation_seed
        self.population = I2PPopulation(config=population_config)
        self.views: List[DayView] = []
        self._exposures: List[DayExposure] = []
        self._exposure_rng = np.random.default_rng(
            derive_seed(observation_seed, "exposure")
        )
        #: Bit-packed masks keyed by (monitor key, day).
        self._masks: Dict[Tuple[MonitorKey, int], Tuple[np.ndarray, int]] = {}

    # ------------------------------------------------------------------ #
    # Day materialisation
    # ------------------------------------------------------------------ #
    @property
    def days_materialised(self) -> int:
        return len(self.views)

    def ensure_days(self, days: int) -> None:
        """Materialise day views and exposure draws for days ``[0, days)``.

        Extending is prefix-stable: the state for day *d* is identical no
        matter how many further days are materialised afterwards.
        """
        if days > self.population_config.horizon_days:
            raise ValueError(
                f"{days} days exceed the population horizon "
                f"{self.population_config.horizon_days}"
            )
        if days > len(self.views) and self.population._current_day != len(self.views) - 1:
            raise RuntimeError(
                "the shared population was advanced outside the exposure "
                "engine (e.g. via CampaignResult.population.day_view); the "
                "cached day state can no longer be extended — read days "
                "through SharedExposure.view(day), or use a private "
                "ExposureEngine for runs whose population you mutate"
            )
        while len(self.views) < days:
            view = self.population.day_view(len(self.views))
            self.views.append(view)
            self._exposures.append(
                ObservationModel.draw_day_exposure(view, self._exposure_rng)
            )

    def view(self, day: int) -> DayView:
        self.ensure_days(day + 1)
        return self.views[day]

    def exposure(self, day: int) -> DayExposure:
        self.ensure_days(day + 1)
        return self._exposures[day]

    def daily_online(self, days: int) -> List[int]:
        self.ensure_days(days)
        return [view.online_count for view in self.views[:days]]

    # ------------------------------------------------------------------ #
    # Per-monitor masks
    # ------------------------------------------------------------------ #
    def monitor_day_mask(self, spec: MonitorSpec, day: int) -> np.ndarray:
        """Boolean mask of the peers ``spec`` observes on ``day`` (cached)."""
        key = (_monitor_key(spec), day)
        cached = self._masks.get(key)
        if cached is None:
            mask = _draw_monitor_mask(
                self.observation_seed, spec, day, self.exposure(day)
            )
            self._masks[key] = (np.packbits(mask), mask.size)
            return mask
        packed, count = cached
        return np.unpackbits(packed, count=count).view(bool)

    def fleet_day_masks(
        self, specs: Sequence[MonitorSpec], day: int
    ) -> np.ndarray:
        """``(len(specs), online_count)`` boolean matrix for one day."""
        count = self.view(day).online_count
        masks = np.empty((len(specs), count), dtype=bool)
        for row, spec in enumerate(specs):
            masks[row] = self.monitor_day_mask(spec, day)
        return masks

    def prefetch_masks(
        self,
        specs: Sequence[MonitorSpec],
        days: int,
        workers: Optional[int] = None,
        min_tasks_per_worker: int = 4,
        start_day: int = 0,
    ) -> None:
        """Compute (and cache) the ``(spec, day)`` masks for days
        ``[start_day, days)``, optionally in a process pool.

        With ``workers=None`` the ``REPRO_EXPOSURE_WORKERS`` environment
        variable wins when set (0 = serial); otherwise the measured
        crossover policy decides — the pool switches on automatically for
        fleets of ≥ :data:`AUTO_WORKER_MONITOR_CROSSOVER` monitors when at
        least two CPUs are available.  Results are bit-for-bit identical to
        the serial path — each mask has its own derived seed — so the pool
        is a pure wall-time optimisation for large fleets.  Any pool
        failure falls back to serial computation.  A non-integer or
        negative worker count (explicit or via the environment variable)
        raises ``ValueError`` up front.

        ``start_day`` lets streamed consumers prefetch one day-range shard
        at a time without re-deriving masks they already released.
        """
        if workers is None:
            env = _env_workers()
            workers = _auto_workers(len(specs)) if env is None else env
        else:
            workers = _parse_workers(workers, "workers")
        self.ensure_days(days)
        pending: List[Tuple[MonitorSpec, int]] = []
        for spec in specs:
            key = _monitor_key(spec)
            for day in range(start_day, days):
                if (key, day) not in self._masks:
                    pending.append((spec, day))
        if not pending:
            return
        if workers > 1 and len(pending) >= workers * min_tasks_per_worker:
            try:
                self._prefetch_pool(pending, days, workers)
                return
            except Exception:  # pragma: no cover - pool availability varies
                pass
        for spec, day in pending:
            self.monitor_day_mask(spec, day)

    def _prefetch_pool(
        self, pending: Sequence[Tuple[MonitorSpec, int]], days: int, workers: int
    ) -> None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        global _WORKER_EXPOSURES

        payload = {
            day: (
                np.asarray(self._exposures[day].flood_exposed),
                np.asarray(self._exposures[day].tunnel_exposed),
                np.asarray(self._exposures[day].visibility),
            )
            for day in sorted({day for _, day in pending})
        }
        tasks = [
            (self.observation_seed, spec.name, spec.mode.value, float(spec.shared_kbps), day)
            for spec, day in pending
        ]
        if "fork" in multiprocessing.get_all_start_methods():
            # Forked workers inherit the payload copy-on-write through the
            # module global — no per-worker pickling of the day arrays.
            _WORKER_EXPOSURES = payload
            pool_kwargs = {"mp_context": multiprocessing.get_context("fork")}
        else:  # pragma: no cover - spawn-only platforms
            pool_kwargs = {"initializer": _pool_init, "initargs": (payload,)}
        try:
            with ProcessPoolExecutor(max_workers=workers, **pool_kwargs) as pool:
                for name, mode_value, kbps, day, packed, count in pool.map(
                    _pool_compute, tasks, chunksize=max(1, len(tasks) // (workers * 4))
                ):
                    self._masks[((name, mode_value, kbps), day)] = (packed, count)
        finally:
            _WORKER_EXPOSURES = {}

    # ------------------------------------------------------------------ #
    # Unions / coverage helpers
    # ------------------------------------------------------------------ #
    def union_day_mask(self, specs: Sequence[MonitorSpec], day: int) -> np.ndarray:
        masks = self.fleet_day_masks(specs, day)
        return np.logical_or.reduce(masks, axis=0)

    def cumulative_union_sizes(
        self, specs: Sequence[MonitorSpec], day: int
    ) -> List[int]:
        return ObservationModel.cumulative_union_sizes_from_masks(
            self.fleet_day_masks(specs, day)
        )

    # ------------------------------------------------------------------ #
    # Streaming hooks (real work only in CachedExposure)
    # ------------------------------------------------------------------ #
    @property
    def day_shard_size(self) -> int:
        """Days per shard for streamed iteration; 0 = everything in RAM.

        In-memory exposures report 0 so consumers process the whole
        horizon as one shard and *keep* every view and mask — sharing day
        state across experiments is the engine's core feature.  Disk-backed
        entries report their bundle's shard size so campaigns iterate (and
        release) shard by shard.
        """
        return 0

    def release_day_state(self, before_day: int) -> None:
        """Drop per-day state for days ``< before_day`` (no-op in RAM).

        Disk-backed exposures use this to keep the resident window at one
        shard; everything released is recomputed/re-read on demand, so
        calling it never changes results — only memory.
        """


class _LazyDays(Sequence):
    """Sequence façade over a bundle's per-day state, decoded on demand."""

    def __init__(self, count: int, fetch: Callable[[int], object]) -> None:
        self._count = count
        self._fetch = fetch

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return [self._fetch(i) for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError("day index out of range")
        return self._fetch(index)


class CachedExposure(SharedExposure):
    """A read-only :class:`SharedExposure` streaming from a disk bundle.

    Day state lives in the bundle's day-range shards (see
    :mod:`repro.sim.exposure_cache` for the format) and is decoded lazily:
    ``views[day]`` / ``exposure(day)`` materialise one day at a time
    through a small decoded-day window, and :meth:`release_day_state`
    drops the window plus the underlying shard mappings as streamed
    consumers move on — so a paper-scale campaign's resident set tracks
    one shard, not the horizon.  Per-monitor masks are recomputed on
    demand from the persisted exposure draws, bit-identically to a freshly
    built entry.  Restored entries cannot be extended — the population
    behind them is an array-only stub — so asking for more days than were
    persisted raises ``RuntimeError`` (the engine reacts by rebuilding
    from scratch).
    """

    #: Decoded days kept at once: the day being recorded plus a little
    #: slack for consumers that look back one day.
    _DAY_WINDOW = 3

    def __init__(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        population,
        reader,
    ) -> None:
        self.population_config = population_config
        self.observation_seed = observation_seed
        self.population = population
        self._reader = reader
        self.views = _LazyDays(reader.days, lambda day: self._day_state(day)[0])
        self._exposures = _LazyDays(
            reader.days, lambda day: self._day_state(day)[1]
        )
        self._masks = {}
        self._day_cache: "OrderedDict[int, Tuple[DayView, DayExposure]]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------ #
    @property
    def days_materialised(self) -> int:
        return self._reader.days

    @property
    def day_shard_size(self) -> int:
        return int(self._reader.shard_days)

    def ensure_days(self, days: int) -> None:
        if days > self._reader.days:
            raise RuntimeError(
                f"this exposure was restored from the disk cache with only "
                f"{self._reader.days} day(s) materialised and cannot be "
                f"extended to {days}; rebuild through an ExposureEngine"
            )

    def daily_online(self, days: int) -> List[int]:
        self.ensure_days(days)
        return list(self._reader.online[:days])

    def release_day_state(self, before_day: int) -> None:
        for day in [d for d in self._day_cache if d < before_day]:
            del self._day_cache[day]
        for key in [k for k in self._masks if k[1] < before_day]:
            del self._masks[key]
        self._reader.release_before(before_day)

    # ------------------------------------------------------------------ #
    def _day_state(self, day: int) -> Tuple[DayView, DayExposure]:
        cached = self._day_cache.get(day)
        if cached is not None:
            self._day_cache.move_to_end(day)
            return cached
        self.ensure_days(day + 1)
        reader = self._reader
        store = self.population.columns
        from .exposure_cache import _decode_strings

        indices = np.asarray(reader.day_array(day, "indices"))
        day_columns = DayColumns(
            day=day,
            columns=store,
            indices=indices,
            peer_ids=store.peer_ids[indices],
            activity=np.asarray(store.activity[indices]),
            base_visibility=np.asarray(store.base_visibility[indices]),
            tier_code=np.asarray(store.tier_code[indices]),
            floodfill=np.asarray(store.floodfill[indices]),
            reachable=np.asarray(reader.day_array(day, "reachable")),
            firewalled=np.asarray(reader.day_array(day, "firewalled")),
            hidden=np.asarray(reader.day_array(day, "hidden")),
            valid_ip=np.asarray(reader.day_array(day, "valid_ip")),
            new_today=np.asarray(store.join_day[indices]) == day,
            port=np.asarray(store.port[indices]),
            ip=_decode_strings(np.asarray(reader.day_array(day, "ip"))),
            ipv6=_decode_strings(np.asarray(reader.day_array(day, "ipv6"))),
            country=_decode_strings(np.asarray(reader.day_array(day, "country"))),
            asn=np.asarray(reader.day_array(day, "asn")),
            version=np.asarray(reader.day_array(day, "version")),
        )
        view = DayView(
            day=day,
            new_arrivals=reader.new_arrivals[day],
            departures=reader.departures[day],
            columns=day_columns,
        )
        # Streamed monitors defer IP-set materialisation through this hook
        # instead of pinning the day's decoded address arrays (see
        # core.monitor.DailyIpSets.append_lazy).
        view.address_loader = lambda: (
            _decode_strings(np.asarray(reader.day_array(day, "ip"))),
            _decode_strings(np.asarray(reader.day_array(day, "ipv6"))),
        )
        draw = DayExposure(
            flood_exposed=np.asarray(reader.day_array(day, "flood")),
            tunnel_exposed=np.asarray(reader.day_array(day, "tunnel")),
            visibility=np.asarray(reader.day_array(day, "visibility")),
        )
        self._day_cache[day] = (view, draw)
        while len(self._day_cache) > self._DAY_WINDOW:
            self._day_cache.popitem(last=False)
        return view, draw


def build_out_of_core(
    population_config: PopulationConfig,
    observation_seed: int,
    days: int,
    directory,
    shard_days: Optional[int] = None,
) -> CachedExposure:
    """Build an exposure straight to a disk bundle and stream it back.

    The population is built *lean* (no row-oriented records) and every
    materialised day is encoded and flushed to the bundle immediately, so
    peak RSS is the mutable population plus one day of encode buffers —
    never the full day state.  The resulting entry is byte-identical to an
    in-memory build saved and restored: both paths draw from the same
    substreams in the same order (locked in by tests).
    """
    from . import exposure_cache

    if days <= 0:
        raise ValueError("days must be positive")
    if days > population_config.horizon_days:
        raise ValueError(
            f"{days} days exceed the population horizon "
            f"{population_config.horizon_days}"
        )
    population = I2PPopulation(config=population_config, retain_records=False)
    exposure_rng = np.random.default_rng(derive_seed(observation_seed, "exposure"))
    writer = exposure_cache.BundleWriter(
        directory,
        population_config,
        observation_seed,
        shard_days=exposure_cache.DEFAULT_SHARD_DAYS
        if shard_days is None
        else shard_days,
    )
    try:
        for day in range(days):
            view = population.day_view(day)
            draw = ObservationModel.draw_day_exposure(view, exposure_rng)
            writer.add_day(view, draw)
        writer.write_store(population.columns)
        path = writer.finalise()
    except BaseException:
        writer.abort()
        raise
    del population
    return exposure_cache.load_exposure(path)


def _env_max_bytes() -> Optional[int]:
    value = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if value is None or value.strip() == "":
        return None
    return parse_byte_size(value, "REPRO_CACHE_MAX_BYTES")


def parse_byte_size(value: object, source: str) -> int:
    """``'512M'`` / ``'2GiB'`` / ``'1048576'`` → bytes (binary units)."""
    text = str(value).strip()
    multiplier = 1
    suffixes = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}
    lowered = text.lower()
    for ending in ("ib", "b"):
        if lowered.endswith(ending) and len(lowered) > len(ending):
            candidate = lowered[: -len(ending)]
            if candidate and candidate[-1] in suffixes:
                lowered = candidate
            break
    if lowered and lowered[-1] in suffixes:
        multiplier = suffixes[lowered[-1]]
        lowered = lowered[:-1]
    try:
        count = float(lowered)
    except ValueError:
        raise ValueError(
            f"{source} must be a byte count (number with optional K/M/G/T "
            f"suffix, e.g. 512M or 1.5G); got {value!r}"
        ) from None
    if count < 0:
        raise ValueError(f"{source} must be non-negative; got {value!r}")
    return int(count * multiplier)


def _env_shard_days() -> int:
    value = os.environ.get("REPRO_CACHE_SHARD_DAYS")
    if value is None or value.strip() == "":
        from .exposure_cache import DEFAULT_SHARD_DAYS

        return DEFAULT_SHARD_DAYS
    try:
        days = int(value)
    except ValueError:
        days = 0
    if days <= 0:
        raise ValueError(
            f"REPRO_CACHE_SHARD_DAYS must be a positive integer; got {value!r}"
        )
    return days


class ExposureEngine:
    """LRU cache of :class:`SharedExposure` entries, optionally disk-backed.

    With ``cache_dir`` set, entries are persisted as sharded bundles keyed
    by a digest of ``(population config, observation seed)`` (see
    :mod:`repro.sim.exposure_cache`), and ``get`` consults the directory
    before building a population — so repeated CLI runs across *processes*
    reuse paper-scale populations.  Disk entries holding at least the
    requested number of days are loaded read-only (streaming from disk);
    shorter ones are rebuilt and replaced with the longer day range.

    ``backend`` picks how a cache miss is built: ``"in_memory"`` (the
    default) materialises the whole day range in RAM, ``"out_of_core"``
    streams it straight to a disk bundle through a lean population build,
    bounding peak RSS to roughly the mutable population — the backend for
    10–100× paper-scale campaigns (requires ``cache_dir``).

    First-run persistence is off the critical path: saves run on a
    background thread (``background_writes=False`` restores synchronous
    writes); :meth:`flush` joins any writes still in flight.  ``max_bytes``
    (or ``REPRO_CACHE_MAX_BYTES``) bounds the cache directory with
    least-recently-used eviction after each save.
    """

    BACKENDS = ("in_memory", "out_of_core")

    def __init__(
        self,
        capacity: int = 4,
        cache_dir: Optional["os.PathLike"] = None,
        backend: str = "in_memory",
        max_bytes: Optional[int] = None,
        shard_days: Optional[int] = None,
        background_writes: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        backend = str(backend).replace("-", "_")
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown exposure backend {backend!r}; pick one of "
                f"{'/'.join(self.BACKENDS)}"
            )
        self.capacity = capacity
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        if backend == "out_of_core" and self.cache_dir is None:
            raise ValueError(
                "the out-of-core exposure backend streams through the disk "
                "cache and needs cache_dir (drop --no-cache / set --cache-dir)"
            )
        self.backend = backend
        self.max_bytes = _env_max_bytes() if max_bytes is None else int(max_bytes)
        self.shard_days = _env_shard_days() if shard_days is None else int(shard_days)
        if self.shard_days <= 0:
            raise ValueError("shard_days must be positive")
        self.background_writes = background_writes
        self._entries: "OrderedDict[Tuple[PopulationConfig, int], SharedExposure]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        #: Days already persisted per key (avoids rewriting unchanged files).
        self._persisted_days: Dict[Tuple[PopulationConfig, int], int] = {}
        #: In-flight background saves per key: (thread, days being saved).
        self._pending: Dict[
            Tuple[PopulationConfig, int], Tuple[threading.Thread, int]
        ] = {}

    def get(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        days: Optional[int] = None,
    ) -> SharedExposure:
        """The shared exposure for a key, built on first use.

        When ``days`` is given, at least that many days are materialised
        before returning.
        """
        key = (population_config, observation_seed)
        needed = 0 if days is None else days
        entry = self._entries.get(key)
        if entry is not None and (
            isinstance(entry, CachedExposure) and needed > entry.days_materialised
        ):
            # The restored entry is too short and cannot be extended.
            del self._entries[key]
            entry = None
        if entry is None:
            entry = self._load_from_disk(population_config, observation_seed, needed)
        if entry is None:
            self.misses += 1
            if self.backend == "out_of_core":
                entry = self._build_out_of_core(
                    population_config, observation_seed, needed
                )
            else:
                entry = SharedExposure(population_config, observation_seed)
        else:
            self.hits += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if days is not None:
            entry.ensure_days(days)
        self._maybe_persist(key, entry)
        return entry

    # ------------------------------------------------------------------ #
    # Disk cache
    # ------------------------------------------------------------------ #
    def _build_out_of_core(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        needed_days: int,
    ) -> "CachedExposure":
        days = needed_days if needed_days > 0 else population_config.horizon_days
        entry = build_out_of_core(
            population_config,
            observation_seed,
            days,
            self.cache_dir,
            shard_days=self.shard_days,
        )
        key = (population_config, observation_seed)
        self._persisted_days[key] = entry.days_materialised
        if self.max_bytes is not None:
            from . import exposure_cache

            try:
                exposure_cache.enforce_cache_budget(
                    self.cache_dir, self.max_bytes, protect=entry._reader.path
                )
            except OSError:  # pragma: no cover - cache dir raced away
                pass
        return entry

    def _load_from_disk(
        self,
        population_config: PopulationConfig,
        observation_seed: int,
        needed_days: int,
    ) -> Optional[SharedExposure]:
        if self.cache_dir is None:
            return None
        from . import exposure_cache

        key = (population_config, observation_seed)
        pending = self._pending.get(key)
        if pending is not None:
            # A background save of this very key may still be in flight —
            # the on-disk state is unreadable-by-design until it lands.
            pending[0].join()
        path = exposure_cache.cache_path(
            self.cache_dir, population_config, observation_seed
        )
        if not (path / "meta.json").is_file():
            return None
        try:
            # Peek the meta record first: rejecting a too-short file must
            # not pay for decoding its full day state.
            meta = exposure_cache.read_meta(path)
            if needed_days > int(meta.get("days", -1)):
                return None
            entry = exposure_cache.load_exposure(path)
        except Exception as error:  # noqa: BLE001 - unreadable/corrupt/foreign
            # Any failure on an existing file (truncated zip, bad JSON
            # meta, missing keys, wrong schema) is a cache miss — but a
            # *loud* one: warn, evict the bad file, rebuild and overwrite.
            exposure_cache.evict_corrupt(path, error)
            return None
        if needed_days > entry.days_materialised:
            return None
        key = (population_config, observation_seed)
        self._persisted_days[key] = entry.days_materialised
        self.disk_hits += 1
        return entry

    def _maybe_persist(
        self, key: Tuple[PopulationConfig, int], entry: SharedExposure
    ) -> None:
        if self.cache_dir is None or isinstance(entry, CachedExposure):
            return
        days = entry.days_materialised
        if days <= 0 or days <= self._persisted_days.get(key, 0):
            return
        pending = self._pending.get(key)
        if pending is not None:
            if pending[0].is_alive() and pending[1] >= days:
                return
            pending[0].join()  # serialise writes of one key
            if days <= self._persisted_days.get(key, 0):
                return
        if not self.background_writes:
            self._persist_now(key, entry, days)
            return
        thread = threading.Thread(
            target=self._persist_now,
            args=(key, entry, days),
            name="repro-exposure-persist",
        )
        self._pending[key] = (thread, days)
        thread.start()

    def _persist_now(
        self, key: Tuple[PopulationConfig, int], entry: SharedExposure, days: int
    ) -> None:
        """Write one entry's bundle (runs on the persist thread).

        Day state is prefix-stable and ``entry.views`` only ever grows, so
        snapshotting ``days`` up front keeps the write consistent even
        while the main thread extends the same entry.
        """
        from . import exposure_cache

        try:
            path = exposure_cache.save_exposure(
                entry, self.cache_dir, shard_days=self.shard_days
            )
        except OSError:  # cache dir unwritable: stay in-memory only
            return
        if days > self._persisted_days.get(key, 0):
            self._persisted_days[key] = days
        if self.max_bytes is not None:
            try:
                exposure_cache.enforce_cache_budget(
                    self.cache_dir, self.max_bytes, protect=path
                )
            except OSError:  # pragma: no cover - cache dir raced away
                pass

    def flush(self) -> None:
        """Join background cache writes still in flight (idempotent)."""
        for thread, _days in list(self._pending.values()):
            thread.join()
        self._pending = {
            key: value
            for key, value in self._pending.items()
            if value[0].is_alive()
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        # An empty engine must stay truthy: callers write
        # ``engine or default_engine()`` style fallbacks and a fresh cache
        # is still a perfectly good engine.
        return True

    def clear(self) -> None:
        self._entries.clear()


_DEFAULT_ENGINE: Optional[ExposureEngine] = None


def default_engine() -> ExposureEngine:
    """The process-wide engine campaigns fall back to when none is passed."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExposureEngine()
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[ExposureEngine]) -> Optional[ExposureEngine]:
    """Replace the process-wide default engine; returns the previous one."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous
