"""Calibrated synthetic I2P population.

The population model is the ground truth the measurement pipeline observes.
It generates router identities with attributes calibrated against the
paper's findings (Section 5):

* a stable daily population (default ≈30.5K online peers per day);
* roughly half of the daily peers have unknown IPs, split into ~14K
  firewalled, ~4K hidden, with ~2.6K flapping between the two (Figure 6);
* capacity tiers dominated by L, then N (Figure 9), ~9 % floodfills of
  which ~30 % are manually enabled/unqualified (Table 1);
* geographic placement via :mod:`repro.sim.geo` (Figures 10–12) with
  hidden-mode enabled by default in poor-press-freedom countries;
* membership lengths and daily presence reproducing the longevity curves
  (Figure 7) and residential IP churn (Figure 8) via
  :mod:`repro.sim.churn` and :mod:`repro.sim.ip`.

The model exposes one simulated day at a time (:class:`DayView`), which the
monitoring, blocking, and usability analyses consume.  Days must be
consumed in order because IP rotation is stateful, mirroring real time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..netdb.identity import RouterIdentity
from .bandwidth import BandwidthModel, TierAssignment
from .churn import ChurnModel, PresenceSchedule
from .clock import SECONDS_PER_DAY
from .geo import GeoRegistry, default_registry
from .ip import IpAssignmentManager
from .peer import PeerDaySnapshot, PeerRecord, VisibilityClass
from .rng import SeededStreams
from ..transport.ports import random_i2p_port

__all__ = ["PopulationConfig", "DayView", "I2PPopulation"]


@dataclass(frozen=True)
class PopulationConfig:
    """Configuration of the synthetic population.

    ``target_daily_population`` scales the whole network; the paper's
    full-scale value is 30,500 daily peers, benchmarks typically use a
    scaled-down value for speed (results are reported as shares).
    """

    target_daily_population: int = 30_500
    horizon_days: int = 90
    seed: int = 2018

    #: Visibility-class fractions (Section 5.1 / Figure 6 calibration).
    public_fraction: float = 0.495
    firewalled_fraction: float = 0.374
    hidden_fraction: float = 0.046
    flapping_fraction: float = 0.085

    #: Extra probability mass moved to hidden mode for peers in countries
    #: with poor press-freedom scores (hidden-by-default behaviour).
    poor_press_freedom_hidden_boost: float = 0.25

    def __post_init__(self) -> None:
        if self.target_daily_population <= 0:
            raise ValueError("target_daily_population must be positive")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        fractions = (
            self.public_fraction
            + self.firewalled_fraction
            + self.hidden_fraction
            + self.flapping_fraction
        )
        if not math.isclose(fractions, 1.0, rel_tol=1e-6):
            raise ValueError("visibility-class fractions must sum to 1")


@dataclass
class DayView:
    """Everything observable about the network on one simulation day."""

    day: int
    snapshots: List[PeerDaySnapshot]
    new_arrivals: int = 0
    departures: int = 0

    @property
    def online_count(self) -> int:
        return len(self.snapshots)

    @property
    def known_ip_count(self) -> int:
        return sum(1 for s in self.snapshots if s.has_valid_ip)

    @property
    def firewalled_count(self) -> int:
        return sum(1 for s in self.snapshots if s.firewalled)

    @property
    def hidden_count(self) -> int:
        return sum(1 for s in self.snapshots if s.hidden)

    @property
    def floodfill_count(self) -> int:
        return sum(1 for s in self.snapshots if s.floodfill)

    def by_peer_id(self) -> Dict[bytes, PeerDaySnapshot]:
        return {s.peer_id: s for s in self.snapshots}

    def ip_addresses(self) -> List[str]:
        """All publicly visible IPv4 addresses on this day."""
        return [s.ip for s in self.snapshots if s.has_valid_ip and s.ip is not None]


class I2PPopulation:
    """Generates and evolves the synthetic peer population day by day."""

    #: Base-visibility mixture (multiplier applied to monitor reach), chosen
    #: so coverage saturates the way Figures 3, 4, and 13 report.
    _VISIBILITY_MIXTURE: Tuple[Tuple[float, Tuple[float, float]], ...] = (
        (0.55, (1.10, 1.45)),  # well-integrated peers
        (0.30, (0.70, 1.10)),  # moderately integrated
        (0.10, (0.25, 0.70)),  # peripheral
        (0.05, (0.02, 0.18)),  # nearly invisible (short uptimes, new peers)
    )

    def __init__(
        self,
        config: Optional[PopulationConfig] = None,
        registry: Optional[GeoRegistry] = None,
        churn_model: Optional[ChurnModel] = None,
        bandwidth_model: Optional[BandwidthModel] = None,
    ) -> None:
        self.config = config or PopulationConfig()
        self.registry = registry or default_registry()
        self.streams = SeededStreams(self.config.seed)
        self._churn_rng = self.streams.python("churn")
        self._attr_rng = self.streams.python("attributes")
        self._ip_rng = self.streams.python("ip")
        self._day_rng = self.streams.python("daily")
        self.churn_model = churn_model or ChurnModel(rng=self._churn_rng)
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.ip_manager = IpAssignmentManager(self.registry, self._ip_rng)

        self.peers: List[PeerRecord] = []
        self._peers_by_id: Dict[bytes, PeerRecord] = {}
        self._next_index = 0
        self._current_day = -1
        self._expected_online_probability = 0.85

        self._bootstrap_initial_population()
        #: Poisson arrival rate that keeps the daily population stable.
        self._arrival_rate = max(
            1.0,
            len(self.peers) / max(1.0, self.churn_model.expected_lifetime_days()),
        )

    # ------------------------------------------------------------------ #
    # Peer creation
    # ------------------------------------------------------------------ #
    def _sample_visibility_class(self, country_code: str) -> VisibilityClass:
        cfg = self.config
        roll = self._attr_rng.random()
        country = self.registry.country(country_code)
        if country.poor_press_freedom:
            # Hidden-by-default: move part of the public mass to hidden.
            boost = cfg.poor_press_freedom_hidden_boost
            hidden_cut = cfg.hidden_fraction + cfg.public_fraction * boost
            public_cut = hidden_cut + cfg.public_fraction * (1.0 - boost)
            firewalled_cut = public_cut + cfg.firewalled_fraction
            if roll < hidden_cut:
                return VisibilityClass.HIDDEN
            if roll < public_cut:
                return VisibilityClass.PUBLIC
            if roll < firewalled_cut:
                return VisibilityClass.FIREWALLED
            return VisibilityClass.FLAPPING
        public_cut = cfg.public_fraction
        firewalled_cut = public_cut + cfg.firewalled_fraction
        hidden_cut = firewalled_cut + cfg.hidden_fraction
        if roll < public_cut:
            return VisibilityClass.PUBLIC
        if roll < firewalled_cut:
            return VisibilityClass.FIREWALLED
        if roll < hidden_cut:
            return VisibilityClass.HIDDEN
        return VisibilityClass.FLAPPING

    def _sample_base_visibility(
        self, visibility_class: VisibilityClass, tier: TierAssignment
    ) -> float:
        roll = self._attr_rng.random()
        acc = 0.0
        chosen = self._VISIBILITY_MIXTURE[-1][1]
        for weight, bounds in self._VISIBILITY_MIXTURE:
            acc += weight
            if roll <= acc:
                chosen = bounds
                break
        value = self._attr_rng.uniform(*chosen)
        if visibility_class is VisibilityClass.HIDDEN:
            value *= 0.55
        elif visibility_class is VisibilityClass.FIREWALLED:
            value *= 0.85
        elif visibility_class is VisibilityClass.FLAPPING:
            value *= 0.75
        if tier.primary_tier.value in ("O", "P", "X"):
            value *= 1.10
        return min(value, 1.6)

    def _create_peer(self, schedule: PresenceSchedule) -> PeerRecord:
        index = self._next_index
        self._next_index += 1
        identity = RouterIdentity.generate(self._attr_rng)
        country = self.registry.sample_country(self._attr_rng)
        assignment = self.ip_manager.register_peer(identity.hash, country.code)
        tier = self.bandwidth_model.sample(self._attr_rng)
        visibility_class = self._sample_visibility_class(country.code)
        base_visibility = self._sample_base_visibility(visibility_class, tier)
        activity = min(1.0, 0.25 + 0.75 * self._attr_rng.random() + 0.05 * (
            tier.primary_tier.value in ("N", "O", "P", "X")
        ))
        port = random_i2p_port(self._attr_rng)
        asys = self.registry.autonomous_system(assignment.asn)

        horizon = self.config.horizon_days
        presence: List[bool] = [False] * horizon
        for day in range(max(0, schedule.join_day), min(horizon, schedule.leave_day)):
            if day == schedule.join_day or day == schedule.leave_day - 1:
                presence[day] = True
            else:
                presence[day] = self._attr_rng.random() < schedule.online_probability

        record = PeerRecord(
            index=index,
            identity=identity,
            tier=tier,
            visibility_class=visibility_class,
            schedule=schedule,
            country_code=assignment.country_code,
            home_asn=assignment.asn,
            port=port,
            base_visibility=base_visibility,
            activity=activity,
            supports_ipv6=asys.supports_ipv6,
            presence=presence,
        )
        self.peers.append(record)
        self._peers_by_id[record.peer_id] = record
        return record

    def _bootstrap_initial_population(self) -> None:
        """Create the steady-state population present on day 0.

        Initial members are sampled with *length-biased* lifetimes (a
        stationary population over-represents long-lived peers relative to
        the arrival distribution), then back-dated uniformly within their
        lifetime so day 0 is statistically indistinguishable from any later
        day.
        """
        target_members = int(
            round(
                self.config.target_daily_population
                / self._expected_online_probability
            )
        )
        classes = self.churn_model._classes  # calibrated mixture
        length_biased_weights = [
            cls.weight * (cls.min_days + cls.max_days) / 2.0 for cls in classes
        ]
        total_weight = sum(length_biased_weights)
        for _ in range(target_members):
            point = self._churn_rng.random() * total_weight
            acc = 0.0
            chosen = classes[-1]
            for cls, weight in zip(classes, length_biased_weights):
                acc += weight
                if point <= acc:
                    chosen = cls
                    break
            lifetime = max(1, int(round(self._churn_rng.uniform(chosen.min_days, chosen.max_days))))
            elapsed = self._churn_rng.randint(0, lifetime - 1)
            schedule = PresenceSchedule(
                join_day=-elapsed,
                leave_day=-elapsed + lifetime,
                online_probability=self._churn_rng.uniform(
                    *chosen.online_probability_range
                ),
                lifetime_class=chosen.name,
            )
            self._create_peer(schedule)

    # ------------------------------------------------------------------ #
    # Day-by-day evolution
    # ------------------------------------------------------------------ #
    def _spawn_arrivals(self, day: int) -> int:
        """Create the new identities joining the network on ``day``."""
        expected = self._arrival_rate
        # Poisson draw via inversion; rates here are small enough (<10^4).
        arrivals = 0
        threshold = math.exp(-expected)
        product = self._day_rng.random()
        while product > threshold:
            arrivals += 1
            product *= self._day_rng.random()
        for _ in range(arrivals):
            schedule = self.churn_model.sample_schedule(day, self._churn_rng)
            self._create_peer(schedule)
        return arrivals

    def day_view(self, day: int) -> DayView:
        """Materialise the network state for ``day``.

        Days must be requested in non-decreasing order (IP churn is
        stateful).  Requesting the same day twice is not supported; callers
        that need the data again should keep the returned view.
        """
        if day < 0 or day >= self.config.horizon_days:
            raise ValueError(
                f"day {day} outside the campaign horizon [0, {self.config.horizon_days})"
            )
        if day <= self._current_day:
            raise ValueError("days must be consumed strictly in order")
        # Advance through skipped days so arrivals/IP churn stay consistent.
        view: Optional[DayView] = None
        for current in range(self._current_day + 1, day + 1):
            view = self._materialise_day(current)
        self._current_day = day
        assert view is not None
        return view

    def iter_days(self, start: int = 0, end: Optional[int] = None) -> Iterator[DayView]:
        """Iterate day views from ``start`` to ``end`` (exclusive)."""
        end = self.config.horizon_days if end is None else end
        for day in range(start, end):
            yield self.day_view(day)

    def _materialise_day(self, day: int) -> DayView:
        arrivals = self._spawn_arrivals(day)
        snapshots: List[PeerDaySnapshot] = []
        departures = 0
        for record in self.peers:
            if record.schedule.leave_day == day:
                departures += 1
            if not record.is_online(day):
                continue
            snapshots.append(self._snapshot_for(record, day))
        return DayView(
            day=day, snapshots=snapshots, new_arrivals=arrivals, departures=departures
        )

    def _snapshot_for(self, record: PeerRecord, day: int) -> PeerDaySnapshot:
        assignment = self.ip_manager.maybe_rotate(record.peer_id)
        visibility = record.visibility_class
        if visibility is VisibilityClass.FLAPPING:
            flap_today = self._day_rng.random() < 0.5
            firewalled = flap_today
            hidden = not flap_today
        else:
            firewalled = visibility is VisibilityClass.FIREWALLED
            hidden = visibility is VisibilityClass.HIDDEN
        reachable = visibility is VisibilityClass.PUBLIC
        ipv6 = assignment.ipv6 if record.supports_ipv6 else None
        return PeerDaySnapshot(
            peer_id=record.peer_id,
            index=record.index,
            day=day,
            ip=assignment.ip,
            ipv6=ipv6,
            asn=assignment.asn,
            country_code=assignment.country_code,
            port=record.port,
            bandwidth_tier=record.tier.primary_tier,
            advertised_tiers=record.tier.advertised_tiers,
            floodfill=record.tier.floodfill,
            reachable=reachable,
            firewalled=firewalled,
            hidden=hidden,
            is_new_today=(day == record.schedule.join_day),
            base_visibility=record.base_visibility,
            activity=record.activity,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def peer(self, peer_id: bytes) -> PeerRecord:
        return self._peers_by_id[peer_id]

    def total_identities(self) -> int:
        """All identities created so far (members past and present)."""
        return len(self.peers)

    def estimated_network_size(self) -> int:
        """The model's own notion of the daily active population."""
        return self.config.target_daily_population
