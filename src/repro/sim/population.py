"""Calibrated synthetic I2P population.

The population model is the ground truth the measurement pipeline observes.
It generates router identities with attributes calibrated against the
paper's findings (Section 5):

* a stable daily population (default ≈30.5K online peers per day);
* roughly half of the daily peers have unknown IPs, split into ~14K
  firewalled, ~4K hidden, with ~2.6K flapping between the two (Figure 6);
* capacity tiers dominated by L, then N (Figure 9), ~9 % floodfills of
  which ~30 % are manually enabled/unqualified (Table 1);
* geographic placement via :mod:`repro.sim.geo` (Figures 10–12) with
  hidden-mode enabled by default in poor-press-freedom countries;
* membership lengths and daily presence reproducing the longevity curves
  (Figure 7) and residential IP churn (Figure 8) via
  :mod:`repro.sim.churn` and :mod:`repro.sim.ip`.

The model exposes one simulated day at a time (:class:`DayView`), which the
monitoring, blocking, and usability analyses consume.  Days must be
consumed in order because IP rotation is stateful, mirroring real time.

Storage is columnar (:mod:`repro.sim.columns`): peer attributes live in
struct-of-arrays NumPy columns plus a peers × horizon presence bitmatrix,
built once at population bootstrap and appended to as arrivals join.  A
:class:`DayView` is therefore a cheap bundle of per-day array slices;
row-oriented :class:`~repro.sim.peer.PeerDaySnapshot` objects are only
materialised *lazily* — on first access to ``DayView.snapshots`` — so the
vectorised observation pipeline never pays for them while legacy callers
(usability sampling, CLI inspection, tests) keep working unchanged.

RNG scheme: *bootstrap* draws whole attribute columns at a time from the
dedicated NumPy ``"bootstrap"`` substream (a documented draw-order break
from the historical per-peer sampling — see
:meth:`I2PPopulation._bootstrap_initial_population`; the marginal
distributions are unchanged and locked in by
``tests/sim/test_bootstrap_distribution.py``).  The per-day evolution draw
order (arrival Poisson, IP rotation, flapping splits) is unchanged, and
fixed seeds reproduce identical campaigns run-to-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..netdb.identity import RouterIdentity
from .bandwidth import BandwidthModel, TierAssignment
from .churn import ChurnModel, PresenceSchedule
from .columns import (
    TIER_ORDER,
    VIS_CODE,
    VIS_FIREWALLED,
    VIS_FLAPPING,
    VIS_HIDDEN,
    VIS_PUBLIC,
    DayColumns,
    PeerColumns,
)
from .geo import GeoRegistry, default_registry
from .ip import IpAssignmentManager
from .peer import PeerDaySnapshot, PeerRecord, VisibilityClass
from .rng import SeededStreams
from ..netdb.identity import IDENTITY_KEY_LENGTH
from ..transport.ports import random_i2p_port, random_i2p_ports_batch

#: Reverse of :data:`repro.sim.columns.VIS_CODE`.
_VIS_CLASS_BY_CODE = {code: cls for cls, code in VIS_CODE.items()}

__all__ = [
    "PopulationConfig",
    "DayView",
    "I2PPopulation",
    "snapshot_allocations",
    "reset_snapshot_allocations",
]


#: Running count of PeerDaySnapshot objects materialised from columnar day
#: views — the perf-budget benchmark uses it to prove the hot path stays
#: allocation-free.
_SNAPSHOT_ALLOCATIONS = 0


def snapshot_allocations() -> int:
    """Total snapshots lazily materialised since the last reset."""
    return _SNAPSHOT_ALLOCATIONS


def reset_snapshot_allocations() -> None:
    global _SNAPSHOT_ALLOCATIONS
    _SNAPSHOT_ALLOCATIONS = 0


@dataclass(frozen=True)
class PopulationConfig:
    """Configuration of the synthetic population.

    ``target_daily_population`` scales the whole network; the paper's
    full-scale value is 30,500 daily peers, benchmarks typically use a
    scaled-down value for speed (results are reported as shares).
    """

    target_daily_population: int = 30_500
    horizon_days: int = 90
    seed: int = 2018

    #: Visibility-class fractions (Section 5.1 / Figure 6 calibration).
    public_fraction: float = 0.495
    firewalled_fraction: float = 0.374
    hidden_fraction: float = 0.046
    flapping_fraction: float = 0.085

    #: Extra probability mass moved to hidden mode for peers in countries
    #: with poor press-freedom scores (hidden-by-default behaviour).
    poor_press_freedom_hidden_boost: float = 0.25

    def __post_init__(self) -> None:
        if self.target_daily_population <= 0:
            raise ValueError("target_daily_population must be positive")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        fractions = (
            self.public_fraction
            + self.firewalled_fraction
            + self.hidden_fraction
            + self.flapping_fraction
        )
        if not math.isclose(fractions, 1.0, rel_tol=1e-6):
            raise ValueError("visibility-class fractions must sum to 1")


class DayView:
    """Everything observable about the network on one simulation day.

    Columnar views (the ones the population produces) carry a
    :class:`~repro.sim.columns.DayColumns` bundle and materialise their
    ``snapshots`` list lazily on first access; views built directly from a
    snapshot list (legacy/tests) work the same as before.  The count
    properties are cached — from the arrays when columnar, from one
    snapshot pass otherwise.
    """

    def __init__(
        self,
        day: int,
        snapshots: Optional[List[PeerDaySnapshot]] = None,
        new_arrivals: int = 0,
        departures: int = 0,
        columns: Optional[DayColumns] = None,
    ) -> None:
        if snapshots is None and columns is None:
            raise ValueError("a DayView needs snapshots or columns")
        self.day = day
        self.new_arrivals = new_arrivals
        self.departures = departures
        self.columns = columns
        self._snapshots: Optional[List[PeerDaySnapshot]] = (
            list(snapshots) if snapshots is not None else None
        )
        self._counts: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Row-oriented compatibility layer
    # ------------------------------------------------------------------ #
    @property
    def snapshots(self) -> List[PeerDaySnapshot]:
        """Per-peer snapshots, materialised lazily for columnar views."""
        if self._snapshots is None:
            self._snapshots = self._materialise_snapshots()
        return self._snapshots

    def _materialise_snapshots(self) -> List[PeerDaySnapshot]:
        global _SNAPSHOT_ALLOCATIONS
        cols = self.columns
        assert cols is not None
        records = cols.columns.records
        day = self.day
        snapshots: List[PeerDaySnapshot] = []
        append = snapshots.append
        for row in range(cols.count):
            record = records[int(cols.indices[row])]
            append(
                PeerDaySnapshot(
                    peer_id=record.peer_id,
                    index=record.index,
                    day=day,
                    ip=cols.ip[row],
                    ipv6=cols.ipv6[row],
                    asn=int(cols.asn[row]) if cols.asn[row] >= 0 else None,
                    country_code=cols.country[row],
                    port=int(cols.port[row]),
                    bandwidth_tier=TIER_ORDER[cols.tier_code[row]],
                    advertised_tiers=record.tier.advertised_tiers,
                    floodfill=bool(cols.floodfill[row]),
                    reachable=bool(cols.reachable[row]),
                    firewalled=bool(cols.firewalled[row]),
                    hidden=bool(cols.hidden[row]),
                    is_new_today=bool(cols.new_today[row]),
                    base_visibility=float(cols.base_visibility[row]),
                    activity=float(cols.activity[row]),
                )
            )
        _SNAPSHOT_ALLOCATIONS += len(snapshots)
        return snapshots

    # ------------------------------------------------------------------ #
    # Cached counts (derived from the columnar view when available)
    # ------------------------------------------------------------------ #
    def _count(self, name: str) -> int:
        cached = self._counts.get(name)
        if cached is None:
            if self.columns is not None:
                array = {
                    "known_ip": self.columns.valid_ip,
                    "firewalled": self.columns.firewalled,
                    "hidden": self.columns.hidden,
                    "floodfill": self.columns.floodfill,
                }[name]
                cached = int(np.count_nonzero(array))
            else:
                predicate = {
                    "known_ip": lambda s: s.has_valid_ip,
                    "firewalled": lambda s: s.firewalled,
                    "hidden": lambda s: s.hidden,
                    "floodfill": lambda s: s.floodfill,
                }[name]
                cached = sum(1 for s in self.snapshots if predicate(s))
            self._counts[name] = cached
        return cached

    @property
    def online_count(self) -> int:
        if self.columns is not None:
            return self.columns.count
        return len(self.snapshots)

    @property
    def known_ip_count(self) -> int:
        return self._count("known_ip")

    @property
    def firewalled_count(self) -> int:
        return self._count("firewalled")

    @property
    def hidden_count(self) -> int:
        return self._count("hidden")

    @property
    def floodfill_count(self) -> int:
        return self._count("floodfill")

    def by_peer_id(self) -> Dict[bytes, PeerDaySnapshot]:
        return {s.peer_id: s for s in self.snapshots}

    def ip_addresses(self) -> List[str]:
        """All publicly visible IPv4 addresses on this day."""
        if self.columns is not None:
            return list(self.columns.ip[self.columns.valid_ip])
        return [s.ip for s in self.snapshots if s.has_valid_ip and s.ip is not None]


class I2PPopulation:
    """Generates and evolves the synthetic peer population day by day."""

    #: Base-visibility mixture (multiplier applied to monitor reach), chosen
    #: so coverage saturates the way Figures 3, 4, and 13 report.
    _VISIBILITY_MIXTURE: Tuple[Tuple[float, Tuple[float, float]], ...] = (
        (0.55, (1.10, 1.45)),  # well-integrated peers
        (0.30, (0.70, 1.10)),  # moderately integrated
        (0.10, (0.25, 0.70)),  # peripheral
        (0.05, (0.02, 0.18)),  # nearly invisible (short uptimes, new peers)
    )

    def __init__(
        self,
        config: Optional[PopulationConfig] = None,
        registry: Optional[GeoRegistry] = None,
        churn_model: Optional[ChurnModel] = None,
        bandwidth_model: Optional[BandwidthModel] = None,
        retain_records: bool = True,
    ) -> None:
        self.config = config or PopulationConfig()
        #: Lean mode for the out-of-core exposure build: per-peer
        #: ``PeerRecord`` objects (and the id → record map) are dropped as
        #: soon as their columns are extracted.  Every RNG draw is
        #: unchanged, so lean and full populations are byte-identical
        #: column for column; only row-oriented access (``peers``,
        #: ``peer()``, snapshot materialisation) is unavailable.
        self.retain_records = retain_records
        self.registry = registry or default_registry()
        self.streams = SeededStreams(self.config.seed)
        self._churn_rng = self.streams.python("churn")
        self._attr_rng = self.streams.python("attributes")
        self._ip_rng = self.streams.python("ip")
        self._day_rng = self.streams.python("daily")
        self.churn_model = churn_model or ChurnModel(rng=self._churn_rng)
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.ip_manager = IpAssignmentManager(
            self.registry, self._ip_rng, retain_history=retain_records
        )

        self._columns = PeerColumns(
            horizon_days=self.config.horizon_days,
            initial_capacity=max(
                1024, int(self.config.target_daily_population * 1.6)
            ),
            retain_records=retain_records,
        )
        #: Row-oriented records, index-aligned with the columns (the list is
        #: shared with :attr:`PeerColumns.records`).
        self.peers: List[PeerRecord] = self._columns.records
        self._peers_by_id: Dict[bytes, PeerRecord] = {}
        self._next_index = 0
        self._current_day = -1
        self._expected_online_probability = 0.85

        self._bootstrap_initial_population()
        #: Poisson arrival rate that keeps the daily population stable.
        #: (``columns.size`` == the identity count whether or not records
        #: are retained, so lean populations draw identically.)
        self._arrival_rate = max(
            1.0,
            self._columns.size
            / max(1.0, self.churn_model.expected_lifetime_days()),
        )

    @property
    def columns(self) -> PeerColumns:
        """The population's struct-of-arrays backing store."""
        return self._columns

    # ------------------------------------------------------------------ #
    # Peer creation
    # ------------------------------------------------------------------ #
    def _sample_visibility_class(self, country_code: str) -> VisibilityClass:
        cfg = self.config
        roll = self._attr_rng.random()
        country = self.registry.country(country_code)
        if country.poor_press_freedom:
            # Hidden-by-default: move part of the public mass to hidden.
            boost = cfg.poor_press_freedom_hidden_boost
            hidden_cut = cfg.hidden_fraction + cfg.public_fraction * boost
            public_cut = hidden_cut + cfg.public_fraction * (1.0 - boost)
            firewalled_cut = public_cut + cfg.firewalled_fraction
            if roll < hidden_cut:
                return VisibilityClass.HIDDEN
            if roll < public_cut:
                return VisibilityClass.PUBLIC
            if roll < firewalled_cut:
                return VisibilityClass.FIREWALLED
            return VisibilityClass.FLAPPING
        public_cut = cfg.public_fraction
        firewalled_cut = public_cut + cfg.firewalled_fraction
        hidden_cut = firewalled_cut + cfg.hidden_fraction
        if roll < public_cut:
            return VisibilityClass.PUBLIC
        if roll < firewalled_cut:
            return VisibilityClass.FIREWALLED
        if roll < hidden_cut:
            return VisibilityClass.HIDDEN
        return VisibilityClass.FLAPPING

    def _sample_base_visibility(
        self, visibility_class: VisibilityClass, tier: TierAssignment
    ) -> float:
        roll = self._attr_rng.random()
        acc = 0.0
        chosen = self._VISIBILITY_MIXTURE[-1][1]
        for weight, bounds in self._VISIBILITY_MIXTURE:
            acc += weight
            if roll <= acc:
                chosen = bounds
                break
        value = self._attr_rng.uniform(*chosen)
        if visibility_class is VisibilityClass.HIDDEN:
            value *= 0.55
        elif visibility_class is VisibilityClass.FIREWALLED:
            value *= 0.85
        elif visibility_class is VisibilityClass.FLAPPING:
            value *= 0.75
        if tier.primary_tier.value in ("O", "P", "X"):
            value *= 1.10
        return min(value, 1.6)

    def _create_peer(self, schedule: PresenceSchedule) -> PeerRecord:
        index = self._next_index
        self._next_index += 1
        identity = RouterIdentity.generate(self._attr_rng)
        country = self.registry.sample_country(self._attr_rng)
        assignment = self.ip_manager.register_peer(identity.hash, country.code)
        tier = self.bandwidth_model.sample(self._attr_rng)
        visibility_class = self._sample_visibility_class(country.code)
        base_visibility = self._sample_base_visibility(visibility_class, tier)
        activity = min(1.0, 0.25 + 0.75 * self._attr_rng.random() + 0.05 * (
            tier.primary_tier.value in ("N", "O", "P", "X")
        ))
        port = random_i2p_port(self._attr_rng)
        asys = self.registry.autonomous_system(assignment.asn)

        horizon = self.config.horizon_days
        presence = np.zeros(horizon, dtype=bool)
        rnd = self._attr_rng.random
        for day in range(max(0, schedule.join_day), min(horizon, schedule.leave_day)):
            if day == schedule.join_day or day == schedule.leave_day - 1:
                presence[day] = True
            else:
                presence[day] = rnd() < schedule.online_probability

        record = PeerRecord(
            index=index,
            identity=identity,
            tier=tier,
            visibility_class=visibility_class,
            schedule=schedule,
            country_code=assignment.country_code,
            home_asn=assignment.asn,
            port=port,
            base_visibility=base_visibility,
            activity=activity,
            supports_ipv6=asys.supports_ipv6,
            presence=presence,
        )
        profile = self.ip_manager.profile(record.peer_id)
        self._columns.append(
            record,
            static_ip=profile.change_interval_days == float("inf"),
            assignment=assignment,
        )
        if self.retain_records:
            self._peers_by_id[record.peer_id] = record
        return record

    def _bootstrap_initial_population(self) -> None:
        """Create the steady-state population present on day 0, batched.

        Initial members are sampled with *length-biased* lifetimes (a
        stationary population over-represents long-lived peers relative to
        the arrival distribution), then back-dated uniformly within their
        lifetime so day 0 is statistically indistinguishable from any later
        day.

        **Batched RNG scheme (documented draw-order break).**  Historically
        every bootstrap attribute was drawn per peer from the ``churn`` /
        ``attributes`` / ``ip`` Python streams, which cost ~2.3s of a
        paper-scale campaign (≈2.3M scalar draws for the presence vectors
        alone).  Bootstrap now draws whole columns at a time from the
        dedicated NumPy ``"bootstrap"`` substream: schedules, the presence
        bitmatrix, identity key material, countries, IP profiles, tiers,
        visibility, activity, and ports, in that fixed order.  Populations
        generated at a fixed seed therefore differ peer-by-peer from
        pre-batch versions, but every marginal distribution (lifetime
        classes, country weights, tier weights, visibility fractions,
        presence statistics) is unchanged —
        ``tests/sim/test_bootstrap_distribution.py`` locks that in against
        the per-peer reference sampler, which arrivals still use.
        """
        target_members = int(
            round(
                self.config.target_daily_population
                / self._expected_online_probability
            )
        )
        boot = self.streams.numpy("bootstrap")
        horizon = self.config.horizon_days
        n = target_members

        # 1. Length-biased schedules.
        classes = self.churn_model._classes  # calibrated mixture
        length_biased = np.asarray(
            [cls.weight * (cls.min_days + cls.max_days) / 2.0 for cls in classes]
        )
        class_cum = np.cumsum(length_biased / length_biased.sum())
        cls_idx = np.minimum(
            np.searchsorted(class_cum, boot.random(n), side="left"), len(classes) - 1
        )
        min_days = np.asarray([c.min_days for c in classes])[cls_idx]
        max_days = np.asarray([c.max_days for c in classes])[cls_idx]
        lifetimes = np.maximum(
            1, np.round(min_days + boot.random(n) * (max_days - min_days)).astype(np.int64)
        )
        elapsed = np.minimum(
            (boot.random(n) * lifetimes).astype(np.int64), lifetimes - 1
        )
        p_lo = np.asarray([c.online_probability_range[0] for c in classes])[cls_idx]
        p_hi = np.asarray([c.online_probability_range[1] for c in classes])[cls_idx]
        online_p = p_lo + boot.random(n) * (p_hi - p_lo)
        join_days = -elapsed
        leave_days = join_days + lifetimes

        # 2. Presence bitmatrix: one uniform matrix instead of ~n × horizon
        # scalar draws; membership boundary days are forced online.
        day_index = np.arange(horizon)
        member = (day_index >= join_days[:, None]) & (day_index < leave_days[:, None])
        presence = member & (boot.random((n, horizon)) < online_p[:, None])
        rows = np.arange(n)
        join_in = (join_days >= 0) & (join_days < horizon)
        presence[rows[join_in], join_days[join_in]] = True
        last_days = leave_days - 1
        last_in = (last_days >= 0) & (last_days < horizon)
        presence[rows[last_in], last_days[last_in]] = True

        # 3. Identities, countries, IP profiles.
        material = boot.bytes(n * IDENTITY_KEY_LENGTH)
        identities = [
            RouterIdentity(material[i * IDENTITY_KEY_LENGTH : (i + 1) * IDENTITY_KEY_LENGTH])
            for i in range(n)
        ]
        peer_ids = [identity.hash for identity in identities]
        countries = self.registry.sample_country_codes_batch(n, boot).tolist()
        assignments = self.ip_manager.register_peers_batch(peer_ids, countries, boot)

        # 4. Tiers, visibility, activity, ports.
        tiers = self.bandwidth_model.sample_batch(n, boot)
        poor = np.asarray(
            [self.registry.country(code).poor_press_freedom for code in countries],
            dtype=bool,
        )
        vis_codes = self._sample_visibility_classes_batch(poor, boot.random(n))
        base_visibility = self._sample_base_visibility_batch(
            vis_codes, tiers, boot.random(n), boot.random(n)
        )
        fast_tier = np.asarray(
            [t.primary_tier.value in ("N", "O", "P", "X") for t in tiers], dtype=float
        )
        activity = np.minimum(1.0, 0.25 + 0.75 * boot.random(n) + 0.05 * fast_tier)
        ports = random_i2p_ports_batch(n, boot)

        # 5. Install the records (per-peer object assembly, no draws).
        class_names = [c.name for c in classes]
        for i in range(n):
            schedule = PresenceSchedule(
                join_day=int(join_days[i]),
                leave_day=int(leave_days[i]),
                online_probability=float(online_p[i]),
                lifetime_class=class_names[int(cls_idx[i])],
            )
            assignment = assignments[i]
            asys = self.registry.autonomous_system(assignment.asn)
            record = PeerRecord(
                index=self._next_index,
                identity=identities[i],
                tier=tiers[i],
                visibility_class=_VIS_CLASS_BY_CODE[int(vis_codes[i])],
                schedule=schedule,
                country_code=assignment.country_code,
                home_asn=assignment.asn,
                port=int(ports[i]),
                base_visibility=float(base_visibility[i]),
                activity=float(activity[i]),
                supports_ipv6=asys.supports_ipv6,
                presence=presence[i],
            )
            self._next_index += 1
            profile = self.ip_manager.profile(record.peer_id)
            self._columns.append(
                record,
                static_ip=profile.change_interval_days == float("inf"),
                assignment=assignment,
            )
            if self.retain_records:
                self._peers_by_id[record.peer_id] = record

    def _sample_visibility_classes_batch(
        self, poor: np.ndarray, rolls: np.ndarray
    ) -> np.ndarray:
        """Visibility-class codes for a batch, split by press-freedom branch.

        Mirrors :meth:`_sample_visibility_class` exactly, including the
        hidden-by-default boost for poor-press-freedom countries.
        """
        cfg = self.config
        boost = cfg.poor_press_freedom_hidden_boost
        poor_cuts = np.cumsum(
            [
                cfg.hidden_fraction + cfg.public_fraction * boost,
                cfg.public_fraction * (1.0 - boost),
                cfg.firewalled_fraction,
            ]
        )
        poor_classes = np.asarray(
            [VIS_HIDDEN, VIS_PUBLIC, VIS_FIREWALLED, VIS_FLAPPING], dtype=np.uint8
        )
        normal_cuts = np.cumsum(
            [cfg.public_fraction, cfg.firewalled_fraction, cfg.hidden_fraction]
        )
        normal_classes = np.asarray(
            [VIS_PUBLIC, VIS_FIREWALLED, VIS_HIDDEN, VIS_FLAPPING], dtype=np.uint8
        )
        codes = np.empty(rolls.size, dtype=np.uint8)
        codes[poor] = poor_classes[
            np.searchsorted(poor_cuts, rolls[poor], side="right")
        ]
        codes[~poor] = normal_classes[
            np.searchsorted(normal_cuts, rolls[~poor], side="right")
        ]
        return codes

    def _sample_base_visibility_batch(
        self,
        vis_codes: np.ndarray,
        tiers: List[TierAssignment],
        mixture_rolls: np.ndarray,
        value_rolls: np.ndarray,
    ) -> np.ndarray:
        """Batch counterpart of :meth:`_sample_base_visibility`."""
        weights = np.asarray([w for w, _ in self._VISIBILITY_MIXTURE])
        bounds = np.asarray([b for _, b in self._VISIBILITY_MIXTURE])
        component = np.minimum(
            np.searchsorted(np.cumsum(weights), mixture_rolls, side="left"),
            len(self._VISIBILITY_MIXTURE) - 1,
        )
        low = bounds[component, 0]
        high = bounds[component, 1]
        value = low + value_rolls * (high - low)
        value = np.where(vis_codes == VIS_HIDDEN, value * 0.55, value)
        value = np.where(vis_codes == VIS_FIREWALLED, value * 0.85, value)
        value = np.where(vis_codes == VIS_FLAPPING, value * 0.75, value)
        high_end = np.asarray(
            [t.primary_tier.value in ("O", "P", "X") for t in tiers], dtype=bool
        )
        value = np.where(high_end, value * 1.10, value)
        return np.minimum(value, 1.6)

    # ------------------------------------------------------------------ #
    # Day-by-day evolution
    # ------------------------------------------------------------------ #
    def _spawn_arrivals(self, day: int) -> int:
        """Create the new identities joining the network on ``day``."""
        expected = self._arrival_rate
        # Poisson draw via inversion; rates here are small enough (<10^4).
        arrivals = 0
        threshold = math.exp(-expected)
        product = self._day_rng.random()
        while product > threshold:
            arrivals += 1
            product *= self._day_rng.random()
        for _ in range(arrivals):
            schedule = self.churn_model.sample_schedule(day, self._churn_rng)
            self._create_peer(schedule)
        return arrivals

    def day_view(self, day: int) -> DayView:
        """Materialise the network state for ``day``.

        Days must be requested in non-decreasing order (IP churn is
        stateful).  Requesting the same day twice is not supported; callers
        that need the data again should keep the returned view.
        """
        if day < 0 or day >= self.config.horizon_days:
            raise ValueError(
                f"day {day} outside the campaign horizon [0, {self.config.horizon_days})"
            )
        if day <= self._current_day:
            raise ValueError("days must be consumed strictly in order")
        # Advance through skipped days so arrivals/IP churn stay consistent.
        view: Optional[DayView] = None
        for current in range(self._current_day + 1, day + 1):
            view = self._materialise_day(current)
        self._current_day = day
        assert view is not None
        return view

    def iter_days(self, start: int = 0, end: Optional[int] = None) -> Iterator[DayView]:
        """Iterate day views from ``start`` to ``end`` (exclusive)."""
        end = self.config.horizon_days if end is None else end
        for day in range(start, end):
            yield self.day_view(day)

    def _materialise_day(self, day: int) -> DayView:
        """Build the columnar view for one day.

        The RNG draw order matches the historical row-oriented engine: the
        arrival Poisson draw first, then one ``_ip_rng`` draw per online
        peer with a non-static address profile (in global index order),
        then one ``_day_rng`` draw per online flapping peer (same order) —
        so fixed seeds produce byte-identical campaigns.
        """
        arrivals = self._spawn_arrivals(day)
        cols = self._columns
        online_idx = cols.online_indices(day)
        departures = cols.departures_on(day)

        # Daily IP churn for online peers (stateful, order-preserving).
        rotate_idx = online_idx[~cols.static_ip[online_idx]]
        if rotate_idx.size:
            rotated = self.ip_manager.maybe_rotate_many(
                cols.peer_ids[rotate_idx].tolist()
            )
            for position, assignment in rotated:
                cols.set_assignment(int(rotate_idx[position]), assignment)

        # Visibility split, including the daily flapping coin flips.
        vis = cols.vis_class[online_idx]
        firewalled = vis == VIS_FIREWALLED
        hidden = vis == VIS_HIDDEN
        flapping_rows = np.nonzero(vis == VIS_FLAPPING)[0]
        if flapping_rows.size:
            rnd = self._day_rng.random
            draws = np.fromiter(
                (rnd() for _ in range(flapping_rows.size)),
                dtype=np.float64,
                count=flapping_rows.size,
            )
            flap_firewalled = draws < 0.5
            firewalled[flapping_rows[flap_firewalled]] = True
            hidden[flapping_rows[~flap_firewalled]] = True
        reachable = vis == VIS_PUBLIC

        ip = cols.cur_ip[online_idx]
        valid_ip = np.not_equal(ip, None) & ~firewalled & ~hidden
        day_columns = DayColumns(
            day=day,
            columns=cols,
            indices=online_idx,
            peer_ids=cols.peer_ids[online_idx],
            activity=cols.activity[online_idx],
            base_visibility=cols.base_visibility[online_idx],
            tier_code=cols.tier_code[online_idx],
            floodfill=cols.floodfill[online_idx],
            reachable=reachable,
            firewalled=firewalled,
            hidden=hidden,
            valid_ip=valid_ip,
            new_today=cols.join_day[online_idx] == day,
            port=cols.port[online_idx],
            ip=ip,
            ipv6=cols.cur_ipv6[online_idx],
            country=cols.cur_country[online_idx],
            asn=cols.cur_asn[online_idx],
            version=cols.cur_version[online_idx],
        )
        return DayView(
            day=day,
            new_arrivals=arrivals,
            departures=departures,
            columns=day_columns,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def peer(self, peer_id: bytes) -> PeerRecord:
        if not self.retain_records:
            raise RuntimeError(
                "row-oriented peer access is unavailable on a lean "
                "(retain_records=False) population"
            )
        return self._peers_by_id[peer_id]

    def total_identities(self) -> int:
        """All identities created so far (members past and present)."""
        return self._columns.size

    def estimated_network_size(self) -> int:
        """The model's own notion of the daily active population."""
        return self.config.target_daily_population
