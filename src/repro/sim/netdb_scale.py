"""netDb message-plane throughput measurement (routers vs msgs/sec).

One measurement point stands up a network of ``router_count`` routers
(10% floodfills by default, mirroring the I2P network's observed ratio),
converges it, and times steady-state publish rounds on the message
plane.  The same routine backs the ``netdb-scale`` scenario and the
``benchmarks/test_perf_budget.py`` throughput curve, so the CLI and the
regression guard always report the same quantity.

Methodology
-----------

* convergence rounds (publish + explore + expiry) grow every router's
  floodfill view to the fixpoint;
* warm-up publish rounds run until the batched plane reaches its steady
  state — two consecutive rounds served by the replay fast path — or a
  round cap is hit.  Early rounds are slower by construction: candidate
  sets are still growing, and one-off store writes from those unstable
  rounds keep expiring (and invalidating the replay cache) for one
  simulated expiry window afterwards;
* the measured rounds advance the simulation clock like the convergence
  loop does and time ``publish_all`` alone; the reported throughput is
  the round's message count over the **median** round time, which is
  robust against a stray slow round (GC, cache rebuild).
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..netdb.routerinfo import BandwidthTier
from .faults import FaultPlan
from .network import I2PNetwork

__all__ = ["NetDbScalePoint", "measure_netdb_scale", "DEFAULT_ROUTER_COUNTS"]

#: The curve recorded by the benchmark suite and the bundled scenario.
DEFAULT_ROUTER_COUNTS: Tuple[int, ...] = (300, 1_000, 10_000)


@dataclass(frozen=True)
class NetDbScalePoint:
    """One measured (network size, publish throughput) point."""

    router_count: int
    floodfill_count: int
    messages_per_round: int
    rounds_measured: int
    median_round_seconds: float
    messages_per_second: float
    warmup_rounds: int
    replay_rounds: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "router_count": self.router_count,
            "floodfill_count": self.floodfill_count,
            "messages_per_round": self.messages_per_round,
            "rounds_measured": self.rounds_measured,
            "median_round_seconds": self.median_round_seconds,
            "messages_per_second": self.messages_per_second,
            "warmup_rounds": self.warmup_rounds,
            "replay_rounds": self.replay_rounds,
        }


def measure_netdb_scale(
    router_count: int,
    floodfill_fraction: float = 0.1,
    seed: int = 2018,
    convergence_rounds: int = 3,
    warmup_limit: int = 16,
    measure_rounds: int = 5,
    batched: bool = True,
    fault_plan: Optional[FaultPlan] = None,
) -> NetDbScalePoint:
    """Measure steady-state publish throughput at ``router_count`` routers.

    ``fault_plan`` attaches a fault-injection plan before convergence —
    the benchmark suite uses an all-zero plan to assert the disabled-fault
    path costs nothing measurable.
    """
    if router_count < 2:
        raise ValueError("need at least two routers")
    floodfill_count = max(1, int(round(router_count * floodfill_fraction)))
    net = I2PNetwork(seed=seed, batched=batched, fault_plan=fault_plan)
    for _ in range(floodfill_count):
        net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    net.batch_add_routers(router_count - floodfill_count)
    net.run_convergence_rounds(rounds=convergence_rounds)

    warmup = 0
    replay_streak = 0
    while warmup < warmup_limit and replay_streak < 2:
        replays_before = net.plane_stats["replay_rounds"]
        net.step_hours(0.25)
        net.publish_all()
        warmup += 1
        if net.plane_stats["replay_rounds"] > replays_before:
            replay_streak += 1
        else:
            replay_streak = 0

    round_seconds = []
    messages_per_round = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(measure_rounds):
            net.step_hours(0.25)
            start = time.perf_counter()
            messages_per_round = net.publish_all()
            round_seconds.append(time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    median_seconds = statistics.median(round_seconds)
    return NetDbScalePoint(
        router_count=router_count,
        floodfill_count=floodfill_count,
        messages_per_round=messages_per_round,
        rounds_measured=measure_rounds,
        median_round_seconds=median_seconds,
        messages_per_second=messages_per_round / median_seconds
        if median_seconds > 0
        else float("inf"),
        warmup_rounds=warmup,
        replay_rounds=net.plane_stats["replay_rounds"],
    )
