"""Tunnel building and capacity-based peer selection.

I2P clients build unidirectional inbound and outbound tunnels whose hops
are selected from the peers in the local netDb, weighted by observed
capacity (the Java router's peer profiling prefers fast, reliable peers).
Tunnels are rebuilt every ten minutes, and a single request/response
between two parties traverses four tunnels (Section 2.1.1, Figure 1).

The usability experiment of Section 6.2.3 depends on exactly this
machinery: when a censor null-routes a fraction of the peer IPs a client
knows, tunnel-build attempts through blocked hops time out, page loads
slow down, and above ~90 % blocking the network becomes unusable.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..netdb.routerinfo import BandwidthTier, RouterInfo

__all__ = [
    "TUNNEL_LIFETIME",
    "TunnelDirection",
    "TunnelBuildOutcome",
    "Tunnel",
    "TunnelBuildResult",
    "PeerSelector",
    "TunnelBuilder",
]

#: Tunnels are rebuilt every ten minutes (Section 2.1.1).
TUNNEL_LIFETIME = 600.0

#: Default hop count for client tunnels (configurable up to seven).
DEFAULT_TUNNEL_LENGTH = 2
MAX_TUNNEL_LENGTH = 7

#: Capacity weight per bandwidth tier used by the peer selector.  Faster
#: peers are proportionally more likely to be chosen for tunnels, which is
#: also why a high-bandwidth monitoring router observes more of the network
#: (Section 4.1).
_TIER_SELECTION_WEIGHT: Dict[BandwidthTier, float] = {
    BandwidthTier.K: 0.05,
    BandwidthTier.L: 0.35,
    BandwidthTier.M: 0.55,
    BandwidthTier.N: 1.00,
    BandwidthTier.O: 1.60,
    BandwidthTier.P: 2.40,
    BandwidthTier.X: 3.20,
}


class TunnelDirection(str, enum.Enum):
    INBOUND = "inbound"
    OUTBOUND = "outbound"


class TunnelBuildOutcome(str, enum.Enum):
    SUCCESS = "success"
    TIMEOUT = "timeout"  # a hop was unreachable (e.g. null-routed)
    REJECTED = "rejected"  # a hop declined to participate
    NO_PEERS = "no_peers"  # not enough usable peers in the netDb


@dataclass(frozen=True)
class Tunnel:
    """A built tunnel: ordered hops from gateway to endpoint."""

    direction: TunnelDirection
    hops: Tuple[bytes, ...]
    created_at: float

    @property
    def gateway(self) -> bytes:
        return self.hops[0]

    @property
    def endpoint(self) -> bytes:
        return self.hops[-1]

    @property
    def length(self) -> int:
        return len(self.hops)

    def expires_at(self) -> float:
        return self.created_at + TUNNEL_LIFETIME

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at()


@dataclass
class TunnelBuildResult:
    """Outcome and cost of one tunnel-build attempt."""

    outcome: TunnelBuildOutcome
    tunnel: Optional[Tunnel]
    elapsed_seconds: float
    attempted_hops: Tuple[bytes, ...] = ()

    @property
    def succeeded(self) -> bool:
        return self.outcome is TunnelBuildOutcome.SUCCESS


class PeerSelector:
    """Capacity-weighted peer selection over a set of candidate RouterInfos."""

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._rng = rng or random.Random()

    @staticmethod
    def selection_weight(info: RouterInfo) -> float:
        """Relative probability weight of choosing a peer as a tunnel hop."""
        weight = _TIER_SELECTION_WEIGHT.get(info.bandwidth_tier, 0.5)
        if not info.is_reachable:
            # Unreachable/firewalled peers can still participate but are
            # penalised by the profiling algorithm.
            weight *= 0.35
        if info.is_hidden:
            # Hidden peers do not route traffic for others at all.
            weight = 0.0
        return weight

    def select_hops(
        self,
        candidates: Sequence[RouterInfo],
        count: int,
        exclude: Optional[Set[bytes]] = None,
    ) -> List[RouterInfo]:
        """Select ``count`` distinct hops, capacity-weighted, or fewer if the
        candidate pool is too small."""
        if count <= 0:
            raise ValueError("hop count must be positive")
        exclude = exclude or set()
        pool: List[RouterInfo] = []
        weights: List[float] = []
        for info in candidates:
            if info.hash in exclude:
                continue
            weight = self.selection_weight(info)
            if weight <= 0:
                continue
            pool.append(info)
            weights.append(weight)
        if not pool:
            return []
        chosen: List[RouterInfo] = []
        chosen_hashes: Set[bytes] = set()
        # Weighted sampling without replacement.
        for _ in range(min(count, len(pool))):
            total = sum(
                w for info, w in zip(pool, weights) if info.hash not in chosen_hashes
            )
            if total <= 0:
                break
            point = self._rng.random() * total
            acc = 0.0
            for info, weight in zip(pool, weights):
                if info.hash in chosen_hashes:
                    continue
                acc += weight
                if point <= acc:
                    chosen.append(info)
                    chosen_hashes.add(info.hash)
                    break
        return chosen


class TunnelBuilder:
    """Builds tunnels over a netDb view, honouring an optional blocklist.

    Parameters
    ----------
    hop_latency_seconds:
        One-way per-hop message latency used to cost successful builds.
    build_timeout_seconds:
        Time lost when a build fails because a hop is unreachable (the
        build request is simply never answered).
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        hop_latency_seconds: float = 0.35,
        build_timeout_seconds: float = 8.0,
        rejection_probability: float = 0.05,
    ) -> None:
        self._rng = rng or random.Random()
        self._selector = PeerSelector(self._rng)
        self.hop_latency_seconds = hop_latency_seconds
        self.build_timeout_seconds = build_timeout_seconds
        self.rejection_probability = rejection_probability

    def build(
        self,
        candidates: Sequence[RouterInfo],
        direction: TunnelDirection,
        now: float,
        length: int = DEFAULT_TUNNEL_LENGTH,
        blocked_ips: Optional[Set[str]] = None,
        exclude: Optional[Set[bytes]] = None,
    ) -> TunnelBuildResult:
        """Attempt to build one tunnel.

        A hop whose every published IP is in ``blocked_ips`` is unreachable:
        the build request to it is blackholed and the attempt times out
        after ``build_timeout_seconds`` — the null-routing behaviour the
        paper configures on its upstream router (Section 6.2.3).
        """
        if not 1 <= length <= MAX_TUNNEL_LENGTH:
            raise ValueError(f"tunnel length must be in [1, {MAX_TUNNEL_LENGTH}]")
        blocked_ips = blocked_ips or set()
        hops = self._selector.select_hops(candidates, length, exclude=exclude)
        if len(hops) < length:
            return TunnelBuildResult(
                outcome=TunnelBuildOutcome.NO_PEERS,
                tunnel=None,
                elapsed_seconds=0.5,
            )
        attempted = tuple(hop.hash for hop in hops)
        elapsed = 0.0
        for position, hop in enumerate(hops):
            elapsed += self.hop_latency_seconds
            hop_ips = set(hop.ip_addresses)
            if hop_ips and hop_ips.issubset(blocked_ips):
                return TunnelBuildResult(
                    outcome=TunnelBuildOutcome.TIMEOUT,
                    tunnel=None,
                    elapsed_seconds=elapsed + self.build_timeout_seconds,
                    attempted_hops=attempted,
                )
            if self._rng.random() < self.rejection_probability:
                return TunnelBuildResult(
                    outcome=TunnelBuildOutcome.REJECTED,
                    tunnel=None,
                    elapsed_seconds=elapsed + 0.5,
                    attempted_hops=attempted,
                )
        tunnel = Tunnel(direction=direction, hops=attempted, created_at=now)
        return TunnelBuildResult(
            outcome=TunnelBuildOutcome.SUCCESS,
            tunnel=tunnel,
            elapsed_seconds=elapsed + self.hop_latency_seconds,
            attempted_hops=attempted,
        )

    def build_with_retries(
        self,
        candidates: Sequence[RouterInfo],
        direction: TunnelDirection,
        now: float,
        length: int = DEFAULT_TUNNEL_LENGTH,
        blocked_ips: Optional[Set[str]] = None,
        deadline_seconds: float = 60.0,
    ) -> Tuple[Optional[Tunnel], float, int]:
        """Retry builds until success or until ``deadline_seconds`` is spent.

        Returns ``(tunnel_or_None, elapsed_seconds, attempts)``.
        """
        elapsed = 0.0
        attempts = 0
        while elapsed < deadline_seconds:
            attempts += 1
            result = self.build(
                candidates,
                direction,
                now + elapsed,
                length=length,
                blocked_ips=blocked_ips,
            )
            elapsed += result.elapsed_seconds
            if result.succeeded:
                return result.tunnel, elapsed, attempts
            if result.outcome is TunnelBuildOutcome.NO_PEERS:
                break
        return None, min(elapsed, deadline_seconds), attempts
