"""Peer churn and longevity model.

Section 5.2 of the paper measures, over a three-month campaign, how long
peers remain observable:

* more than half of all observed peers stay in the network for more than a
  week (56.36 % continuously, 73.93 % intermittently);
* roughly a fifth stay for more than a month (20.03 % continuously,
  31.15 % intermittently);
* the daily population nevertheless remains stable at ~30.5K peers, which
  requires a steady stream of short-lived peers joining and leaving.

The :class:`ChurnModel` assigns each peer a *membership length* (how many
days it keeps its identity in the network) drawn from a heavy-tailed
mixture, and a per-day *online probability* that turns continuous
membership into the intermittent presence the paper observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LifetimeClass", "ChurnModel", "PresenceSchedule"]


@dataclass(frozen=True)
class LifetimeClass:
    """One component of the lifetime mixture."""

    name: str
    weight: float
    min_days: float
    max_days: float
    online_probability_range: Tuple[float, float]


#: Lifetime mixture calibrated so that (a) the share of peers whose
#: membership exceeds 7 and 30 days matches Figure 7's intermittent curve,
#: and (b) daily presence of long-lived peers (high online probability)
#: yields the continuous-presence percentages.
DEFAULT_LIFETIME_CLASSES: Tuple[LifetimeClass, ...] = (
    LifetimeClass("ephemeral", 0.16, 1.0, 3.0, (0.90, 1.00)),
    LifetimeClass("short", 0.12, 3.0, 8.0, (0.85, 1.00)),
    LifetimeClass("medium", 0.40, 8.0, 32.0, (0.82, 0.99)),
    LifetimeClass("long", 0.22, 32.0, 95.0, (0.80, 0.99)),
    LifetimeClass("permanent", 0.10, 95.0, 400.0, (0.85, 0.995)),
)


@dataclass
class PresenceSchedule:
    """A peer's membership window and daily online behaviour.

    Attributes
    ----------
    join_day:
        Day index (may be negative for peers that joined before the
        campaign started) on which the identity first appears.
    leave_day:
        Day index after which the identity never reappears (exclusive).
    online_probability:
        Probability of being online on any day inside the membership
        window.  The first and last membership days are always online so
        that membership length equals the intermittent observation span.
    """

    join_day: int
    leave_day: int
    online_probability: float
    lifetime_class: str = ""

    def __post_init__(self) -> None:
        if self.leave_day <= self.join_day:
            raise ValueError("leave_day must be after join_day")
        if not 0.0 <= self.online_probability <= 1.0:
            raise ValueError("online_probability must be within [0, 1]")

    @property
    def membership_days(self) -> int:
        return self.leave_day - self.join_day

    def is_member_on(self, day: int) -> bool:
        return self.join_day <= day < self.leave_day

    def is_online_on(self, day: int, rng: random.Random) -> bool:
        """Sample whether the peer is online on ``day``.

        Membership boundary days are always online; interior days are
        Bernoulli draws.  Callers that need a reproducible per-day answer
        should use :class:`ChurnModel.presence_for_days` instead, which
        fixes the draws once.
        """
        if not self.is_member_on(day):
            return False
        if day == self.join_day or day == self.leave_day - 1:
            return True
        return rng.random() < self.online_probability


class ChurnModel:
    """Generates presence schedules and sustains a stable daily population."""

    def __init__(
        self,
        lifetime_classes: Sequence[LifetimeClass] = DEFAULT_LIFETIME_CLASSES,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not lifetime_classes:
            raise ValueError("at least one lifetime class is required")
        total = sum(c.weight for c in lifetime_classes)
        if total <= 0:
            raise ValueError("lifetime class weights must sum to a positive value")
        self._classes = tuple(lifetime_classes)
        self._total_weight = total
        self._rng = rng or random.Random()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_class(self, rng: Optional[random.Random] = None) -> LifetimeClass:
        rng = rng or self._rng
        point = rng.random() * self._total_weight
        acc = 0.0
        for cls in self._classes:
            acc += cls.weight
            if point <= acc:
                return cls
        return self._classes[-1]

    def sample_schedule(
        self, join_day: int, rng: Optional[random.Random] = None
    ) -> PresenceSchedule:
        """Sample a schedule for a peer joining on ``join_day``."""
        rng = rng or self._rng
        cls = self.sample_class(rng)
        lifetime = rng.uniform(cls.min_days, cls.max_days)
        leave_day = join_day + max(1, int(round(lifetime)))
        online_probability = rng.uniform(*cls.online_probability_range)
        return PresenceSchedule(
            join_day=join_day,
            leave_day=leave_day,
            online_probability=online_probability,
            lifetime_class=cls.name,
        )

    def sample_initial_schedule(
        self, campaign_start_day: int = 0, rng: Optional[random.Random] = None
    ) -> PresenceSchedule:
        """Sample a schedule for a peer that is already in the network.

        The join day is back-dated uniformly within the sampled lifetime so
        that the initial population is (approximately) in steady state
        rather than all joining on day zero.
        """
        rng = rng or self._rng
        cls = self.sample_class(rng)
        lifetime = max(1, int(round(rng.uniform(cls.min_days, cls.max_days))))
        elapsed = rng.randint(0, lifetime - 1)
        join_day = campaign_start_day - elapsed
        leave_day = join_day + lifetime
        online_probability = rng.uniform(*cls.online_probability_range)
        return PresenceSchedule(
            join_day=join_day,
            leave_day=leave_day,
            online_probability=online_probability,
            lifetime_class=cls.name,
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def expected_lifetime_days(self) -> float:
        """Mean membership length implied by the mixture."""
        return sum(
            (cls.weight / self._total_weight) * (cls.min_days + cls.max_days) / 2.0
            for cls in self._classes
        )

    def expected_daily_turnover(self, population: int) -> float:
        """Expected number of peers replaced per day in steady state."""
        return population / self.expected_lifetime_days()

    def presence_for_days(
        self,
        schedule: PresenceSchedule,
        days: int,
        rng: Optional[random.Random] = None,
    ) -> List[bool]:
        """Materialise a per-day online vector over ``days`` campaign days."""
        rng = rng or self._rng
        presence: List[bool] = []
        for day in range(days):
            presence.append(schedule.is_online_on(day, rng))
        return presence
