"""Statistical observation model: what a monitoring router sees per day.

Section 4.2 of the paper identifies four ways a router learns about other
peers: reseed bootstrap, DatabaseLookup exploration, tunnel participation,
and (for floodfills) stores/flooding.  At paper scale (~32K peers × 90
days × up to 40 monitors) simulating every message is unnecessary for the
analyses; what matters is *which peers end up in which monitor's netDb each
day*.  This module provides that mapping as a calibrated probabilistic
model — the same modelling approach the paper itself uses for its blocking
analysis (Section 6.2: "probabilistic model").

For a monitor with mode *mode* and shared bandwidth *B* (KB/s), and a peer
snapshot with base visibility ``m`` and activity ``a``, the per-day
observation probability is::

    p = 1 - (1 - E_f · c_f(mode, B) · m^b) · (1 - E_t · c_t(mode, B) · m^b)

where ``E_f``/``E_t`` are the peer's daily flood/tunnel exposure indicators
(Bernoulli draws shared by all monitors, driven by the peer's activity),
``c_f``/``c_t`` are mode- and bandwidth-dependent coverage curves, and
``b`` is a selection-bias exponent (1 for monitors, >1 for ordinary
clients, whose netDbs are biased towards well-integrated peers through
capacity-based peer selection).

The coverage-curve constants are calibrated so that the model reproduces
the shapes of Figures 2–4:

* a single well-provisioned router observes roughly half of the daily
  population, with non-floodfill slightly ahead of floodfill at 8 MB/s;
* at low shared bandwidth floodfill routers observe 1.5–2K more peers than
  non-floodfill ones, with the ordering flipping above ~2 MB/s;
* the union of a floodfill + non-floodfill pair is larger than either and
  varies only mildly with bandwidth;
* the cumulative union over 20 mixed monitors covers ≈95 % of the daily
  population, converging towards ≈100 % by 40 monitors.

The sampling pipeline is columnar end to end: :meth:`ObservationModel.
day_exposure` reads activity/visibility/hidden arrays straight off a
columnar :class:`~repro.sim.population.DayView` (snapshot-backed views
fall back to a one-pass extraction), and
:meth:`ObservationModel.observe_day_masks` returns one boolean row per
monitor so unions, cumulative coverage curves, and campaign recording are
``np.logical_or`` reductions rather than Python set unions.  The
index-array API (:meth:`ObservationModel.observe_day`) remains as a thin
wrapper with an identical RNG draw sequence.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .population import DayView

__all__ = ["MonitorMode", "MonitorSpec", "ObservationModel", "DayExposure"]


class MonitorMode(str, enum.Enum):
    FLOODFILL = "floodfill"
    NON_FLOODFILL = "non-floodfill"
    CLIENT = "client"


@dataclass(frozen=True)
class MonitorSpec:
    """Configuration of one observing router."""

    name: str
    mode: MonitorMode
    shared_kbps: float = 8_000.0

    def __post_init__(self) -> None:
        if self.shared_kbps <= 0:
            raise ValueError("shared bandwidth must be positive")


@dataclass
class DayExposure:
    """Per-day exposure draws shared by every monitor (one per snapshot).

    ``flood_exposed``/``tunnel_exposed`` are 0/1 indicator arrays; the
    sequential :meth:`ObservationModel.day_exposure` path stores them as
    floats (historical behaviour), the shared exposure engine
    (:mod:`repro.sim.exposure`) as booleans — both work in the probability
    arithmetic, which upcasts as needed.
    """

    flood_exposed: np.ndarray
    tunnel_exposed: np.ndarray
    visibility: np.ndarray


class ObservationModel:
    """Computes per-monitor daily observation sets over a :class:`DayView`."""

    #: Bandwidth saturation constant (KB/s) for the coverage curves.
    BANDWIDTH_HALF_SATURATION = 1_500.0

    #: Maximum single-monitor, single-day observation probability.
    MAX_PROBABILITY = 0.98

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # Coverage curves
    # ------------------------------------------------------------------ #
    @classmethod
    def _saturation(cls, shared_kbps: float) -> float:
        return shared_kbps / (shared_kbps + cls.BANDWIDTH_HALF_SATURATION)

    @classmethod
    def flood_coverage(cls, mode: MonitorMode, shared_kbps: float) -> float:
        """Coverage via stores/flooding and DLM exploration."""
        s = cls._saturation(shared_kbps)
        if mode is MonitorMode.FLOODFILL:
            return 0.46 + 0.08 * s
        if mode is MonitorMode.NON_FLOODFILL:
            return 0.35
        return 0.12  # client: passive exploration only

    @classmethod
    def tunnel_coverage(cls, mode: MonitorMode, shared_kbps: float) -> float:
        """Coverage via tunnel participation (grows with shared bandwidth)."""
        s = cls._saturation(shared_kbps)
        if mode is MonitorMode.FLOODFILL:
            return 0.30 * s
        if mode is MonitorMode.NON_FLOODFILL:
            return 0.75 * s
        return 0.45 * s

    @classmethod
    def selection_bias(cls, mode: MonitorMode) -> float:
        """Exponent applied to peer visibility (clients are biased high)."""
        return 1.6 if mode is MonitorMode.CLIENT else 1.0

    # ------------------------------------------------------------------ #
    # Daily sampling
    # ------------------------------------------------------------------ #
    @staticmethod
    def exposure_probabilities(
        activity: np.ndarray, hidden: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-peer daily flood / tunnel exposure probabilities."""
        flood_prob = np.clip(0.55 + 0.40 * activity, 0.0, 1.0)
        tunnel_prob = np.clip(0.15 + 0.80 * activity, 0.0, 1.0) * (1.0 - 0.3 * hidden)
        return flood_prob, tunnel_prob

    @classmethod
    def draw_day_exposure(
        cls, view: DayView, rng: np.random.Generator
    ) -> DayExposure:
        """Draw a :class:`DayExposure` for ``view`` from an explicit generator.

        This is the pure core behind :meth:`day_exposure`; the shared
        exposure engine calls it with its own dedicated stream so exposure
        draws no longer depend on how many monitors sampled earlier days.
        Indicators are returned as booleans.
        """
        activity, visibility, hidden = cls._exposure_inputs(view)
        flood_prob, tunnel_prob = cls.exposure_probabilities(activity, hidden)
        count = activity.size
        flood_exposed = rng.random(count) < flood_prob
        tunnel_exposed = rng.random(count) < tunnel_prob
        return DayExposure(
            flood_exposed=flood_exposed,
            tunnel_exposed=tunnel_exposed,
            visibility=visibility,
        )

    @staticmethod
    def _exposure_inputs(view: DayView) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Extract (activity, visibility, hidden) arrays from a day view.

        Columnar views are read straight from their arrays; snapshot-backed
        views fall back to one pass over the snapshot list.
        """
        if view.columns is not None:
            count = view.columns.count
            activity = view.columns.activity
            visibility = view.columns.base_visibility
            hidden = view.columns.hidden.astype(float)
        else:
            count = len(view.snapshots)
            activity = np.fromiter(
                (s.activity for s in view.snapshots), dtype=float, count=count
            )
            visibility = np.fromiter(
                (s.base_visibility for s in view.snapshots), dtype=float, count=count
            )
            hidden = np.fromiter(
                (1.0 if s.hidden else 0.0 for s in view.snapshots),
                dtype=float,
                count=count,
            )
        return activity, visibility, hidden

    def day_exposure(self, view: DayView) -> DayExposure:
        """Draw the per-peer daily exposure indicators for a day view.

        Uses the model's own sequential stream (the historical draw order);
        indicators come back as 0/1 floats for backwards compatibility.
        """
        exposure = self.draw_day_exposure(view, self._rng)
        return DayExposure(
            flood_exposed=exposure.flood_exposed.astype(float),
            tunnel_exposed=exposure.tunnel_exposed.astype(float),
            visibility=exposure.visibility,
        )

    @classmethod
    def observation_probabilities(
        cls, exposure: DayExposure, monitor: MonitorSpec
    ) -> np.ndarray:
        """Per-snapshot probability that ``monitor`` observes each peer today."""
        bias = cls.selection_bias(monitor.mode)
        vis = np.power(np.clip(exposure.visibility, 0.0, 1.6), bias)
        flood_term = (
            exposure.flood_exposed
            * cls.flood_coverage(monitor.mode, monitor.shared_kbps)
            * vis
        )
        tunnel_term = (
            exposure.tunnel_exposed
            * cls.tunnel_coverage(monitor.mode, monitor.shared_kbps)
            * vis
        )
        probability = 1.0 - (1.0 - np.clip(flood_term, 0.0, 1.0)) * (
            1.0 - np.clip(tunnel_term, 0.0, 1.0)
        )
        return np.clip(probability, 0.0, cls.MAX_PROBABILITY)

    def observe_day(
        self,
        view: DayView,
        monitors: Sequence[MonitorSpec],
        exposure: Optional[DayExposure] = None,
    ) -> List[np.ndarray]:
        """Sample, for each monitor, the indices of snapshots it observes.

        Returns one integer index array (into ``view.snapshots``) per
        monitor.  Exposure draws are shared across monitors, so two
        monitors of the same configuration see positively correlated but
        not identical subsets, matching the diminishing returns of
        Figure 4.
        """
        masks = self.observe_day_masks(view, monitors, exposure=exposure)
        return [np.nonzero(mask)[0] for mask in masks]

    def observe_day_masks(
        self,
        view: DayView,
        monitors: Sequence[MonitorSpec],
        exposure: Optional[DayExposure] = None,
    ) -> np.ndarray:
        """Sample per-monitor observations as a boolean matrix.

        Returns a ``(len(monitors), online_count)`` boolean array; row *m*
        marks which peers monitor *m* observes today.  This is the
        vectorised core behind :meth:`observe_day` — unions and cumulative
        coverage reduce to ``np.logical_or`` over rows instead of Python
        set arithmetic.  The RNG draw sequence (one uniform array per
        monitor, in fleet order) is identical to the historical
        index-returning path.
        """
        if exposure is None:
            exposure = self.day_exposure(view)
        count = view.online_count
        masks = np.empty((len(monitors), count), dtype=bool)
        for row, monitor in enumerate(monitors):
            probabilities = self.observation_probabilities(exposure, monitor)
            draws = self._rng.random(count)
            np.less(draws, probabilities, out=masks[row])
        return masks

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    @staticmethod
    def union_coverage(observations: Sequence[np.ndarray], total: int) -> float:
        """Fraction of the day's population covered by a set of monitors."""
        if total <= 0:
            return 0.0
        union: set = set()
        for indices in observations:
            union.update(int(i) for i in indices)
        return len(union) / total

    @staticmethod
    def cumulative_union_sizes(observations: Sequence[np.ndarray]) -> List[int]:
        """Union size after adding monitors one at a time (Figure 4 series)."""
        union: set = set()
        sizes: List[int] = []
        for indices in observations:
            union.update(int(i) for i in indices)
            sizes.append(len(union))
        return sizes

    @staticmethod
    def cumulative_union_sizes_from_masks(masks: np.ndarray) -> List[int]:
        """Mask-matrix counterpart of :meth:`cumulative_union_sizes`."""
        if len(masks) == 0:
            return []
        running = np.logical_or.accumulate(masks, axis=0)
        return [int(n) for n in running.sum(axis=1)]


def standard_monitor_fleet(
    floodfill_count: int,
    non_floodfill_count: int,
    shared_kbps: float = 8_000.0,
) -> List[MonitorSpec]:
    """Build the interleaved floodfill / non-floodfill monitor fleet used by
    the paper's main campaign (Section 5: 10 + 10 routers at 8 MB/s)."""
    monitors: List[MonitorSpec] = []
    ff_needed, nff_needed = floodfill_count, non_floodfill_count
    index = 0
    while ff_needed > 0 or nff_needed > 0:
        if ff_needed > 0:
            monitors.append(
                MonitorSpec(f"ff-{index}", MonitorMode.FLOODFILL, shared_kbps)
            )
            ff_needed -= 1
        if nff_needed > 0:
            monitors.append(
                MonitorSpec(f"nff-{index}", MonitorMode.NON_FLOODFILL, shared_kbps)
            )
            nff_needed -= 1
        index += 1
    return monitors
