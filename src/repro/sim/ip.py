"""IP address assignment and residential address churn.

Section 5.2.2 of the paper documents the *IP address churn* phenomenon:
most ISPs rotate dynamic IPs for residential connections, so over the
three-month campaign 55 % of known-IP peers were associated with two or
more addresses, 45 % with exactly one, and a small group (460 peers,
0.65 %) with more than one hundred addresses; 8.4 % of peers appeared in
more than ten ASes (routers operated behind VPNs or Tor), with extremes of
39 ASes and 25 countries.

:class:`IpAssignmentManager` reproduces those dynamics: each peer has a
home AS, a per-peer address-change rate drawn from a heavy-tailed mixture,
and (rarely) a "nomadic" profile that hops across ASes and countries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .geo import AutonomousSystem, GeoRegistry

__all__ = ["AddressProfile", "IpAssignment", "IpAssignmentManager"]


#: One shared string per /16 — every profile in an AS points at the same
#: object, so recording the prefix costs one slot pointer per peer, not a
#: fresh ~60-byte string (the scale-10 memory gate rides on this).
_PREFIX_STRINGS: dict = {}


def _home_prefix(asys: AutonomousSystem) -> str:
    """The /16 CIDR prefix an AS allocates its synthetic addresses from.

    Derived from the already-sampled AS, so recording it draws no RNG —
    populations stay bit-identical with or without the enrichment plane.
    """
    key = asys.ipv4_prefix
    prefix = _PREFIX_STRINGS.get(key)
    if prefix is None:
        prefix = f"{key[0]}.{key[1]}.0.0/16"
        _PREFIX_STRINGS[key] = prefix
    return prefix


@dataclass(frozen=True, slots=True)
class IpAssignment:
    """One IP address lease: the address plus where it resolves to.

    Slotted: a paper-scale population holds ~2.5 of these per peer
    (current + history), so the per-instance ``__dict__`` would cost
    hundreds of MiB at 10× scale.
    """

    ip: str
    asn: int
    country_code: str
    ipv6: Optional[str] = None


@dataclass(slots=True)
class AddressProfile:
    """How a peer's public address evolves over time.

    Attributes
    ----------
    home_asn / home_country:
        The AS and country the peer physically resides in.
    change_interval_days:
        Mean days between address changes (DHCP lease rotation).  ``inf``
        means a static address.
    nomadic:
        When true, each address change may also move the peer to a
        different AS (and possibly country) — the VPN/Tor-operated profile.
    nomad_as_pool:
        The ASes a nomadic peer hops between.
    home_prefix:
        The originating CIDR prefix of the home AS (the /16 its addresses
        are allocated from) — the enrichment plane's prefix-granular
        blocking analyses key on this.
    """

    home_asn: int
    home_country: str
    change_interval_days: float
    nomadic: bool = False
    nomad_as_pool: Tuple[int, ...] = ()
    home_prefix: str = ""


class IpAssignmentManager:
    """Allocates addresses and drives per-peer address churn.

    The manager is deliberately independent of the peer model: it maps an
    opaque ``peer_id`` (the router hash) to its current
    :class:`IpAssignment` and history.  The population model asks it for
    initial assignments, and the network engine calls
    :meth:`maybe_rotate` once per simulated day per online peer.
    """

    #: Fraction of peers with a static address (never rotates).
    STATIC_FRACTION = 0.30

    #: Fraction of peers with a "nomadic" (multi-AS) profile: routers
    #: operated behind VPNs or Tor, which the paper identifies as the cause
    #: of peers spanning many ASes (8.4 % of peers appear in more than ten
    #: ASes, with extremes of 39 ASes / 25 countries).
    NOMADIC_FRACTION = 0.15

    #: Fraction of nomadic peers with an extreme profile (hundreds of
    #: addresses over the campaign — the paper's 460-peer group).
    EXTREME_NOMAD_FRACTION = 0.5

    def __init__(
        self,
        registry: GeoRegistry,
        rng: random.Random,
        retain_history: bool = True,
    ) -> None:
        self._registry = registry
        self._rng = rng
        self._profiles: Dict[bytes, AddressProfile] = {}
        self._current: Dict[bytes, IpAssignment] = {}
        #: Per-peer past leases.  ``retain_history=False`` (lean population
        #: builds) skips the appends entirely — no RNG draw depends on the
        #: history, so churn stays bit-identical while the retired
        #: ``IpAssignment`` objects become garbage immediately.
        self.retain_history = retain_history
        self._history: Dict[bytes, List[IpAssignment]] = {}
        self._host_counters: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _next_host_index(self, asn: int) -> int:
        index = self._host_counters.get(asn, 0)
        self._host_counters[asn] = index + 1
        return index

    def _allocate_in_as(self, asys: AutonomousSystem) -> IpAssignment:
        host_index = self._next_host_index(asys.asn)
        ipv4 = asys.ipv4_for(host_index)
        ipv6 = asys.ipv6_for(host_index) if asys.supports_ipv6 else None
        return IpAssignment(
            ip=ipv4, asn=asys.asn, country_code=asys.country_code, ipv6=ipv6
        )

    def register_peer(
        self,
        peer_id: bytes,
        country_code: Optional[str] = None,
        asn: Optional[int] = None,
    ) -> IpAssignment:
        """Create an address profile and the first assignment for a peer."""
        if peer_id in self._profiles:
            raise ValueError("peer already registered")
        if country_code is None:
            country_code = self._registry.sample_country(self._rng).code
        if asn is None:
            asys = self._registry.sample_as(country_code, self._rng)
        else:
            asys = self._registry.autonomous_system(asn)

        roll = self._rng.random()
        nomadic = False
        nomad_pool: Tuple[int, ...] = ()
        if roll < self.NOMADIC_FRACTION:
            nomadic = True
            extreme = self._rng.random() < self.EXTREME_NOMAD_FRACTION
            pool_size = self._rng.randint(11, 39) if extreme else self._rng.randint(2, 10)
            # VPN/Tor exits concentrate where the network itself is large,
            # so the hop-pool is sampled with the same country weights as
            # the population (keeping Figure 10's country shape intact).
            pool: List[int] = []
            seen_asns = set()
            while len(pool) < pool_size and len(seen_asns) < 400:
                country = self._registry.sample_country(self._rng)
                candidate = self._registry.sample_as(country.code, self._rng)
                seen_asns.add(candidate.asn)
                if candidate.asn not in pool:
                    pool.append(candidate.asn)
            nomad_pool = tuple(pool)
            if extreme:
                change_interval = self._rng.uniform(0.6, 1.5)
            else:
                change_interval = self._rng.uniform(1.5, 5.0)
        elif roll < self.NOMADIC_FRACTION + self.STATIC_FRACTION:
            change_interval = float("inf")
        else:
            # Dynamic residential connections: lease rotation every few
            # days to a few weeks (heavy-tailed).
            change_interval = self._rng.choice(self.DYNAMIC_INTERVALS)

        profile = AddressProfile(
            home_asn=asys.asn,
            home_country=asys.country_code,
            change_interval_days=change_interval,
            nomadic=nomadic,
            nomad_as_pool=nomad_pool,
            home_prefix=_home_prefix(asys),
        )
        self._profiles[peer_id] = profile
        assignment = self._allocate_in_as(asys)
        self._current[peer_id] = assignment
        if self.retain_history:
            self._history[peer_id] = [assignment]
        return assignment

    #: Dynamic-lease rotation intervals (days), heavy-tailed.
    DYNAMIC_INTERVALS: Tuple[float, ...] = (2.0, 4.0, 7.0, 10.0, 14.0, 21.0, 30.0)

    def register_peers_batch(
        self,
        peer_ids: Sequence[bytes],
        country_codes: Sequence[str],
        rng: np.random.Generator,
    ) -> List[IpAssignment]:
        """Register many peers with batched profile draws (bootstrap path).

        Marginal distributions match :meth:`register_peer`; the draws come
        from a NumPy generator in column order (home ASes, profile rolls,
        intervals, nomad pools) instead of one :mod:`random` stream in
        per-peer order.  Nomad hop-pools are assembled from one joint
        country × AS candidate batch with per-peer order-preserving
        de-duplication, so a pool may (rarely) end up slightly smaller than
        its drawn target size — the same truncation the per-peer sampler's
        attempt cap produced.
        """
        count = len(peer_ids)
        if len(country_codes) != count:
            raise ValueError("peer_ids and country_codes must align")
        for peer_id in peer_ids:
            if peer_id in self._profiles:
                raise ValueError("peer already registered")

        home_asns = self._registry.sample_as_batch(country_codes, rng)
        rolls = rng.random(count)
        nomadic = rolls < self.NOMADIC_FRACTION
        static = ~nomadic & (rolls < self.NOMADIC_FRACTION + self.STATIC_FRACTION)

        intervals = np.empty(count, dtype=np.float64)
        intervals[static] = np.inf
        dynamic = ~nomadic & ~static
        dynamic_count = int(np.count_nonzero(dynamic))
        if dynamic_count:
            choices = np.asarray(self.DYNAMIC_INTERVALS)
            intervals[dynamic] = choices[
                rng.integers(0, choices.size, size=dynamic_count)
            ]

        nomad_rows = np.nonzero(nomadic)[0]
        pools: Dict[int, Tuple[int, ...]] = {}
        if nomad_rows.size:
            extreme = rng.random(nomad_rows.size) < self.EXTREME_NOMAD_FRACTION
            pool_sizes = np.where(
                extreme,
                rng.integers(11, 40, size=nomad_rows.size),
                rng.integers(2, 11, size=nomad_rows.size),
            )
            intervals[nomad_rows] = np.where(
                extreme,
                0.6 + rng.random(nomad_rows.size) * (1.5 - 0.6),
                1.5 + rng.random(nomad_rows.size) * (5.0 - 1.5),
            )
            # Over-draw joint candidates in one batch, then de-duplicate per
            # peer preserving order.
            overdraw = pool_sizes * 2 + 4
            candidates = self._registry.sample_joint_as_batch(
                int(overdraw.sum()), rng
            )
            cursor = 0
            for position, row in enumerate(nomad_rows.tolist()):
                take = int(overdraw[position])
                window = candidates[cursor : cursor + take]
                cursor += take
                pool: List[int] = []
                seen = set()
                target = int(pool_sizes[position])
                for asn in window.tolist():
                    if asn not in seen:
                        seen.add(asn)
                        pool.append(asn)
                        if len(pool) == target:
                            break
                pools[row] = tuple(pool)

        assignments: List[IpAssignment] = []
        for i, peer_id in enumerate(peer_ids):
            asys = self._registry.autonomous_system(int(home_asns[i]))
            profile = AddressProfile(
                home_asn=asys.asn,
                home_country=asys.country_code,
                change_interval_days=float(intervals[i]),
                nomadic=bool(nomadic[i]),
                nomad_as_pool=pools.get(i, ()),
                home_prefix=_home_prefix(asys),
            )
            self._profiles[peer_id] = profile
            assignment = self._allocate_in_as(asys)
            self._current[peer_id] = assignment
            if self.retain_history:
                self._history[peer_id] = [assignment]
            assignments.append(assignment)
        return assignments

    def is_registered(self, peer_id: bytes) -> bool:
        return peer_id in self._profiles

    # ------------------------------------------------------------------ #
    # Rotation
    # ------------------------------------------------------------------ #
    def maybe_rotate(self, peer_id: bytes) -> IpAssignment:
        """Possibly rotate the peer's address (call once per simulated day).

        The probability of a change on a given day is ``1/interval``; for
        nomadic peers the new address may come from any AS in their pool.
        """
        profile = self._profiles[peer_id]
        current = self._current[peer_id]
        if profile.change_interval_days == float("inf"):
            return current
        if self._rng.random() >= 1.0 / profile.change_interval_days:
            return current

        if profile.nomadic and profile.nomad_as_pool:
            asn = self._rng.choice(profile.nomad_as_pool)
        else:
            asn = profile.home_asn
        assignment = self._allocate_in_as(self._registry.autonomous_system(asn))
        self._current[peer_id] = assignment
        if self.retain_history:
            self._history[peer_id].append(assignment)
        return assignment

    def maybe_rotate_many(
        self, peer_ids: Sequence[bytes]
    ) -> List[Tuple[int, IpAssignment]]:
        """Apply :meth:`maybe_rotate` to many peers in order, cheaply.

        Returns ``(position, new_assignment)`` for the peers whose address
        actually changed.  The RNG draw sequence is identical to calling
        :meth:`maybe_rotate` once per peer in the given order, so columnar
        and row-oriented day materialisation produce the same churn; the
        batch form just hoists the attribute/dict lookups out of the
        per-peer hot loop (~2.7M calls per paper-scale campaign).
        """
        rng = self._rng
        rng_random = rng.random
        profiles = self._profiles
        current = self._current
        history = self._history if self.retain_history else None
        autonomous_system = self._registry.autonomous_system
        changed: List[Tuple[int, IpAssignment]] = []
        for position, peer_id in enumerate(peer_ids):
            profile = profiles[peer_id]
            interval = profile.change_interval_days
            if interval == float("inf"):
                continue
            if rng_random() >= 1.0 / interval:
                continue
            if profile.nomadic and profile.nomad_as_pool:
                asn = rng.choice(profile.nomad_as_pool)
            else:
                asn = profile.home_asn
            assignment = self._allocate_in_as(autonomous_system(asn))
            current[peer_id] = assignment
            if history is not None:
                history[peer_id].append(assignment)
            changed.append((position, assignment))
        return changed

    def force_rotate(self, peer_id: bytes) -> IpAssignment:
        """Unconditionally rotate the peer's address within its home AS."""
        profile = self._profiles[peer_id]
        assignment = self._allocate_in_as(
            self._registry.autonomous_system(profile.home_asn)
        )
        self._current[peer_id] = assignment
        if self.retain_history:
            self._history[peer_id].append(assignment)
        return assignment

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def current(self, peer_id: bytes) -> IpAssignment:
        return self._current[peer_id]

    def profile(self, peer_id: bytes) -> AddressProfile:
        return self._profiles[peer_id]

    def _require_history(self, peer_id: bytes) -> List[IpAssignment]:
        if not self.retain_history:
            raise RuntimeError(
                "address history is not retained by a lean "
                "(retain_history=False) assignment manager"
            )
        return self._history[peer_id]

    def history(self, peer_id: bytes) -> List[IpAssignment]:
        return list(self._require_history(peer_id))

    def address_count(self, peer_id: bytes) -> int:
        """Distinct IPv4 addresses the peer has held so far."""
        return len({a.ip for a in self._require_history(peer_id)})

    def asn_count(self, peer_id: bytes) -> int:
        return len({a.asn for a in self._require_history(peer_id)})

    def country_count(self, peer_id: bytes) -> int:
        return len({a.country_code for a in self._require_history(peer_id)})

    def all_peer_ids(self) -> List[bytes]:
        return list(self._profiles.keys())
