"""Deterministic fault-injection plane for the netDb message engine.

The paper's censorship scenarios (Section 6) act on *membership* — which
routers a monitor or censor can see — while the message plane of
:mod:`repro.sim.network` models perfectly reliable delivery.  This module
adds the missing *protocol* failure axis: a declarative, seeded
:class:`FaultPlan` describes per-link message drops, floodfill
crash/recover windows, reseed-server outages and region link blackouts;
a :class:`FaultInjector` answers point queries ("is this delivery
dropped?", "is this floodfill down right now?") that the network consults
at delivery time.

Two properties are load-bearing:

* **Zero-fault exactness** — a no-op plan normalises to no injector at
  all (``I2PNetwork.set_fault_plan`` keeps ``faults=None``), so the
  fault-free hot path, including the replay fast path, is byte-identical
  to a network that never heard of faults.
* **Plane-independent determinism** — every fault decision is a pure
  function of the plan seed and the event coordinates (channel, source,
  target, simulated time) via a keyed blake2b hash.  No shared RNG
  stream exists to desynchronise, so the batched and legacy planes see
  the *same* failures in the *same* places and produce identical
  degradation curves.

:func:`measure_degradation` is the measurement driver behind the
``floodfill-takedown`` / ``reseed-outage`` / ``lossy-network`` scenarios:
it converges a fault-free network, attaches the plan, then runs measured
publish/lookup rounds streaming :class:`RoundSample` records.
"""

from __future__ import annotations

import hashlib
import random
import struct
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Mapping, Tuple

from .directory import region_of_hash

__all__ = [
    "CrashWindow",
    "ReseedOutage",
    "LinkBlackout",
    "FaultPlan",
    "FaultInjector",
    "RoundSample",
    "FaultMetrics",
    "DegradationResult",
    "measure_degradation",
    "scenario_fault_plan",
]

#: Channel tags keep the drop coins of different message kinds
#: independent: a store and a lookup crossing the same link at the same
#: instant fail independently.
CHANNEL_STORE = b"S"
CHANNEL_LOOKUP = b"L"
CHANNEL_EXPLORE = b"E"

_TWO_64 = float(2**64)


def _check_window(start: float, end: float, fraction: float, what: str) -> None:
    if end <= start:
        raise ValueError(f"{what} window must end after it starts")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"{what} fraction must be in (0, 1]")


@dataclass(frozen=True)
class CrashWindow:
    """A fraction of the floodfills is down during ``[start, end)``.

    Which floodfills crash is decided per window by a seeded coin on the
    router hash, so the same plan takes down the same routers every run.
    Times are in simulated seconds.
    """

    start: float
    end: float
    fraction: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, self.fraction, "crash")


@dataclass(frozen=True)
class ReseedOutage:
    """A fraction of the reseed servers is blocked during ``[start, end)``."""

    start: float
    end: float
    fraction: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, self.fraction, "reseed outage")


@dataclass(frozen=True)
class LinkBlackout:
    """Cross-border links of one region are cut during ``[start, end)``.

    Routers are partitioned into ``FaultPlan.regions`` regions by
    :func:`repro.sim.directory.region_of_hash`; while the blackout is
    active, any message with exactly one endpoint inside ``region`` is
    dropped (intra-region and fully-outside traffic still flows) —
    the shape of a national border blackout.
    """

    start: float
    end: float
    region: int = 0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, 1.0, "blackout")
        if self.region < 0:
            raise ValueError("blackout region must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded schedule of netDb failures.

    Schedule fields
    ---------------
    ``drop_probability``
        iid per-message drop probability on every link (0 disables).
    ``floodfill_crashes``
        :class:`CrashWindow` tuple — floodfill crash/recover windows.
    ``reseed_outages``
        :class:`ReseedOutage` tuple — reseed servers refuse bootstraps.
    ``link_blackouts``
        :class:`LinkBlackout` tuple — regional border cuts (routers are
        hashed into ``regions`` regions).

    Robustness knobs
    ----------------
    ``store_retry_budget``
        extra next-closest floodfills a publisher may try after the
        first ``FLOOD_REDUNDANCY`` store targets fail to ack.
    ``lookup_retry_budget``
        extra walk attempts a lookup may make, each preceded by an
        exploration fallback (learn fresh floodfills, then re-walk).
    ``backoff_base_seconds``
        exponential-backoff base: the k-th retry adds
        ``backoff_base_seconds * 2**(k-1)`` of modelled latency.
    ``lookup_timeout_seconds`` / ``hop_seconds``
        modelled latency of a timed-out and of a successful query hop.

    All failure decisions derive from ``seed`` alone — two runs of the
    same plan produce identical failures.
    """

    seed: int = 0
    drop_probability: float = 0.0
    floodfill_crashes: Tuple[CrashWindow, ...] = ()
    reseed_outages: Tuple[ReseedOutage, ...] = ()
    link_blackouts: Tuple[LinkBlackout, ...] = ()
    regions: int = 4
    store_retry_budget: int = 2
    lookup_retry_budget: int = 1
    backoff_base_seconds: float = 1.0
    lookup_timeout_seconds: float = 4.0
    hop_seconds: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if self.regions < 1:
            raise ValueError("regions must be at least 1")
        if self.store_retry_budget < 0 or self.lookup_retry_budget < 0:
            raise ValueError("retry budgets must be non-negative")
        for blackout in self.link_blackouts:
            if blackout.region >= self.regions:
                raise ValueError("blackout region out of range")

    @property
    def is_noop(self) -> bool:
        """True when the plan cannot produce a single fault."""
        return (
            self.drop_probability == 0.0
            and not self.floodfill_crashes
            and not self.reseed_outages
            and not self.link_blackouts
        )

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every schedule window moved ``offset`` seconds later.

        Plans are naturally authored relative to a measurement start;
        the driver shifts them onto the absolute simulation clock once
        the network has converged.
        """
        return replace(
            self,
            floodfill_crashes=tuple(
                replace(w, start=w.start + offset, end=w.end + offset)
                for w in self.floodfill_crashes
            ),
            reseed_outages=tuple(
                replace(w, start=w.start + offset, end=w.end + offset)
                for w in self.reseed_outages
            ),
            link_blackouts=tuple(
                replace(w, start=w.start + offset, end=w.end + offset)
                for w in self.link_blackouts
            ),
        )


class FaultInjector:
    """Answers point fault queries for one :class:`FaultPlan`.

    Every answer is a pure function of the plan and the query — there is
    no internal RNG stream, so the answers are independent of the order
    in which the network asks (a requirement for batched/legacy plane
    equivalence).
    """

    __slots__ = ("plan", "_key", "_crash_cache", "_reseed_cache", "_region_cache")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._key = plan.seed.to_bytes(8, "little", signed=True)
        self._crash_cache: Dict[Tuple[int, bytes], bool] = {}
        self._reseed_cache: Dict[Tuple[int, str], bool] = {}
        self._region_cache: Dict[bytes, int] = {}

    def _unit(self, *parts: bytes) -> float:
        """Uniform [0, 1) coin keyed on the plan seed and the event parts."""
        digest = hashlib.blake2b(b"".join(parts), digest_size=8, key=self._key)
        return int.from_bytes(digest.digest(), "little") / _TWO_64

    def region_of(self, router_hash: bytes) -> int:
        region = self._region_cache.get(router_hash)
        if region is None:
            region = region_of_hash(router_hash, self.plan.regions)
            self._region_cache[router_hash] = region
        return region

    def cut_regions(self, now: float) -> FrozenSet[int]:
        """Regions whose border links are cut at ``now``."""
        return frozenset(
            w.region for w in self.plan.link_blackouts if w.start <= now < w.end
        )

    def crashed(self, router_hash: bytes, now: float) -> bool:
        """Is this (floodfill) router inside an active crash window?"""
        for idx, window in enumerate(self.plan.floodfill_crashes):
            if window.start <= now < window.end:
                key = (idx, router_hash)
                hit = self._crash_cache.get(key)
                if hit is None:
                    hit = (
                        window.fraction >= 1.0
                        or self._unit(b"C", idx.to_bytes(4, "little"), router_hash)
                        < window.fraction
                    )
                    self._crash_cache[key] = hit
                if hit:
                    return True
        return False

    def reseed_blocked(self, hostname: str, now: float) -> bool:
        """Is this reseed server inside an active outage window?"""
        for idx, window in enumerate(self.plan.reseed_outages):
            if window.start <= now < window.end:
                key = (idx, hostname)
                hit = self._reseed_cache.get(key)
                if hit is None:
                    hit = (
                        window.fraction >= 1.0
                        or self._unit(
                            b"R", idx.to_bytes(4, "little"), hostname.encode()
                        )
                        < window.fraction
                    )
                    self._reseed_cache[key] = hit
                if hit:
                    return True
        return False

    def message_dropped(
        self, src_hash: bytes, dst_hash: bytes, now: float, channel: bytes
    ) -> bool:
        """Is a ``channel`` message from ``src`` to ``dst`` lost at ``now``?"""
        plan = self.plan
        if plan.link_blackouts:
            cut = self.cut_regions(now)
            if cut:
                src_in = self.region_of(src_hash) in cut
                dst_in = self.region_of(dst_hash) in cut
                if src_in != dst_in:
                    return True
        probability = plan.drop_probability
        if probability <= 0.0:
            return False
        return (
            self._unit(b"D", channel, src_hash, dst_hash, struct.pack("<d", now))
            < probability
        )


@dataclass(frozen=True)
class RoundSample:
    """Degradation metrics of one measured publish round."""

    round_index: int
    sim_time: float
    publishers: int
    publishers_acked: int
    publish_success_ratio: float
    store_attempts: int
    store_acks: int
    store_drops: int
    store_retries: int
    retry_latency_seconds: float
    crashed_floodfills: int
    netdb_coverage: float
    lookup_attempts: int
    lookup_successes: int
    lookup_timeouts: int
    lookup_mean_rounds: float
    lookup_mean_latency_seconds: float
    bootstrap_attempts: int
    bootstrap_successes: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "round_index": self.round_index,
            "sim_time": self.sim_time,
            "publishers": self.publishers,
            "publishers_acked": self.publishers_acked,
            "publish_success_ratio": round(self.publish_success_ratio, 6),
            "store_attempts": self.store_attempts,
            "store_acks": self.store_acks,
            "store_drops": self.store_drops,
            "store_retries": self.store_retries,
            "retry_latency_seconds": round(self.retry_latency_seconds, 6),
            "crashed_floodfills": self.crashed_floodfills,
            "netdb_coverage": round(self.netdb_coverage, 6),
            "lookup_attempts": self.lookup_attempts,
            "lookup_successes": self.lookup_successes,
            "lookup_timeouts": self.lookup_timeouts,
            "lookup_mean_rounds": round(self.lookup_mean_rounds, 6),
            "lookup_mean_latency_seconds": round(
                self.lookup_mean_latency_seconds, 6
            ),
            "bootstrap_attempts": self.bootstrap_attempts,
            "bootstrap_successes": self.bootstrap_successes,
        }


class FaultMetrics:
    """Accumulates per-round degradation samples while a plan is active.

    Lookup and bootstrap outcomes arrive between publish rounds; they are
    buffered and folded into the :class:`RoundSample` of the next publish
    round, which closes the round.
    """

    def __init__(self) -> None:
        self.rounds: List[RoundSample] = []
        self._lookup_attempts = 0
        self._lookup_successes = 0
        self._lookup_timeouts = 0
        self._lookup_rounds_sum = 0
        self._lookup_latency_sum = 0.0
        self._bootstrap_attempts = 0
        self._bootstrap_successes = 0

    def note_lookup(self, success: bool, rounds_used: int, latency: float) -> None:
        self._lookup_attempts += 1
        if success:
            self._lookup_successes += 1
        self._lookup_rounds_sum += rounds_used
        self._lookup_latency_sum += latency

    def note_lookup_timeout(self) -> None:
        self._lookup_timeouts += 1

    def note_bootstrap(self, success: bool) -> None:
        self._bootstrap_attempts += 1
        if success:
            self._bootstrap_successes += 1

    def record_publish_round(
        self,
        *,
        sim_time: float,
        publishers: int,
        publishers_acked: int,
        store_attempts: int,
        store_acks: int,
        store_drops: int,
        store_retries: int,
        retry_latency_seconds: float,
        crashed_floodfills: int,
        netdb_coverage: float,
    ) -> RoundSample:
        attempts = self._lookup_attempts
        sample = RoundSample(
            round_index=len(self.rounds),
            sim_time=sim_time,
            publishers=publishers,
            publishers_acked=publishers_acked,
            publish_success_ratio=(
                publishers_acked / publishers if publishers else 1.0
            ),
            store_attempts=store_attempts,
            store_acks=store_acks,
            store_drops=store_drops,
            store_retries=store_retries,
            retry_latency_seconds=retry_latency_seconds,
            crashed_floodfills=crashed_floodfills,
            netdb_coverage=netdb_coverage,
            lookup_attempts=attempts,
            lookup_successes=self._lookup_successes,
            lookup_timeouts=self._lookup_timeouts,
            lookup_mean_rounds=(
                self._lookup_rounds_sum / attempts if attempts else 0.0
            ),
            lookup_mean_latency_seconds=(
                self._lookup_latency_sum / attempts if attempts else 0.0
            ),
            bootstrap_attempts=self._bootstrap_attempts,
            bootstrap_successes=self._bootstrap_successes,
        )
        self.rounds.append(sample)
        self._lookup_attempts = 0
        self._lookup_successes = 0
        self._lookup_timeouts = 0
        self._lookup_rounds_sum = 0
        self._lookup_latency_sum = 0.0
        self._bootstrap_attempts = 0
        self._bootstrap_successes = 0
        return sample

    def curve(self) -> List[Dict[str, float]]:
        return [sample.as_dict() for sample in self.rounds]


@dataclass(frozen=True)
class DegradationResult:
    """Output of :func:`measure_degradation`."""

    router_count: int
    floodfill_count: int
    rounds: int
    round_seconds: float
    batched: bool
    samples: Tuple[RoundSample, ...]
    region_counts: Tuple[int, ...]

    def curve(self) -> List[Dict[str, float]]:
        return [sample.as_dict() for sample in self.samples]

    def summary(self) -> Dict[str, float]:
        """Scalar digest for scenario result tables."""
        ratios = [s.publish_success_ratio for s in self.samples]
        coverages = [s.netdb_coverage for s in self.samples]
        lookup_attempts = sum(s.lookup_attempts for s in self.samples)
        lookup_successes = sum(s.lookup_successes for s in self.samples)
        return {
            "router_count": self.router_count,
            "floodfill_count": self.floodfill_count,
            "rounds": self.rounds,
            "publish_success_min": round(min(ratios), 4),
            "publish_success_mean": round(sum(ratios) / len(ratios), 4),
            "publish_success_final": round(ratios[-1], 4),
            "coverage_min": round(min(coverages), 4),
            "coverage_final": round(coverages[-1], 4),
            "store_drops_total": sum(s.store_drops for s in self.samples),
            "store_retries_total": sum(s.store_retries for s in self.samples),
            "degraded_rounds": sum(1 for r in ratios if r < 1.0),
            "lookup_success_ratio": round(
                lookup_successes / lookup_attempts if lookup_attempts else 1.0, 4
            ),
            "lookup_timeouts_total": sum(s.lookup_timeouts for s in self.samples),
            "bootstrap_attempts": sum(s.bootstrap_attempts for s in self.samples),
            "bootstrap_successes": sum(s.bootstrap_successes for s in self.samples),
        }


def scenario_fault_plan(
    params: Mapping[str, object], round_seconds: float
) -> FaultPlan:
    """Build a :class:`FaultPlan` from scenario parameters.

    Window bounds are given in *measured publish rounds*
    (``outage_start_round`` inclusive, ``outage_end_round`` exclusive) and
    converted to round-relative seconds here; :func:`measure_degradation`
    shifts them onto the absolute clock so that round ``r``'s publish
    falls inside the window exactly when
    ``outage_start_round <= r < outage_end_round``.
    """
    start_round = int(params.get("outage_start_round", 0))
    end_round = int(params.get("outage_end_round", 0))
    crashes: Tuple[CrashWindow, ...] = ()
    crash_fraction = float(params.get("crash_fraction", 0.0))
    if crash_fraction > 0.0:
        crashes = (
            CrashWindow(
                start=start_round * round_seconds,
                end=end_round * round_seconds,
                fraction=crash_fraction,
            ),
        )
    outages: Tuple[ReseedOutage, ...] = ()
    reseed_fraction = float(params.get("reseed_fraction", 0.0))
    if reseed_fraction > 0.0:
        outages = (
            ReseedOutage(
                start=start_round * round_seconds,
                end=end_round * round_seconds,
                fraction=reseed_fraction,
            ),
        )
    blackouts: Tuple[LinkBlackout, ...] = ()
    if "blackout_region" in params:
        blackouts = (
            LinkBlackout(
                start=start_round * round_seconds,
                end=end_round * round_seconds,
                region=int(params["blackout_region"]),
            ),
        )
    return FaultPlan(
        seed=int(params.get("fault_seed", 7)),
        drop_probability=float(params.get("drop_probability", 0.0)),
        floodfill_crashes=crashes,
        reseed_outages=outages,
        link_blackouts=blackouts,
        regions=int(params.get("regions", 4)),
        store_retry_budget=int(params.get("store_retry_budget", 2)),
        lookup_retry_budget=int(params.get("lookup_retry_budget", 1)),
    )


def measure_degradation(
    plan: FaultPlan,
    router_count: int = 300,
    floodfill_fraction: float = 0.1,
    seed: int = 2018,
    convergence_rounds: int = 3,
    rounds: int = 24,
    round_hours: float = 0.25,
    lookup_probes: int = 8,
    joiners_per_round: int = 0,
    batched: bool = True,
) -> DegradationResult:
    """Measure how the netDb degrades (and recovers) under ``plan``.

    A network of ``router_count`` routers converges fault-free, the plan
    is attached (windows shifted so plan second ``r * round_seconds``
    lines up with measured round ``r``), then ``rounds`` rounds run: the
    clock steps, ``joiners_per_round`` new routers bootstrap, seeded
    probe lookups measure retrieval, and the full network publishes.
    Every round appends a :class:`RoundSample`; identical plans and
    seeds reproduce the exact same curve on either message plane.
    """
    from ..netdb.routerinfo import BandwidthTier
    from .network import I2PNetwork

    if plan.is_noop:
        raise ValueError(
            "fault plan is a no-op; give it drops, crashes, outages or blackouts"
        )
    if router_count < 2:
        raise ValueError("router count must be at least 2")
    if rounds < 1:
        raise ValueError("need at least one measured round")
    floodfill_count = max(1, round(router_count * floodfill_fraction))
    net = I2PNetwork(seed=seed, batched=batched)
    for _ in range(floodfill_count):
        net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    net.batch_add_routers(router_count - floodfill_count)
    net.run_convergence_rounds(rounds=convergence_rounds)

    round_seconds = round_hours * 3600.0
    # Round r publishes after the (r+1)-th clock step, hence the extra
    # round_seconds in the shift (see scenario_fault_plan).
    net.set_fault_plan(plan.shifted(net.clock.now + round_seconds))
    probe_rng = random.Random((seed << 1) ^ plan.seed ^ 0x5EED)
    probe_hashes = sorted(net.routers)
    for _ in range(rounds):
        net.step_hours(round_hours)
        for _ in range(joiners_per_round):
            net.add_router()
        if lookup_probes and len(probe_hashes) >= 2:
            for _ in range(lookup_probes):
                requester_hash, target_hash = probe_rng.sample(probe_hashes, 2)
                net.lookup_routerinfo(requester_hash, target_hash)
        net.publish_all()

    region_codes = net.directory.region_codes(plan.regions)
    counts = [0] * plan.regions
    for code in region_codes.tolist():
        counts[code] += 1
    return DegradationResult(
        router_count=router_count,
        floodfill_count=floodfill_count,
        rounds=rounds,
        round_seconds=round_seconds,
        batched=batched,
        samples=tuple(net.fault_metrics.rounds),
        region_counts=tuple(counts),
    )
