"""Deterministic random-number streams.

Reproducibility is essential for a measurement reproduction: every
experiment in the benchmark harness must be repeatable run-to-run.  The
:class:`SeededStreams` factory derives independent named substreams from a
single master seed, so adding a new consumer of randomness does not perturb
the draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np

__all__ = ["SeededStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class SeededStreams:
    """A factory of named, independent random streams.

    Examples
    --------
    >>> streams = SeededStreams(42)
    >>> churn_rng = streams.python("churn")
    >>> geo_rng = streams.python("geo")
    >>> churn_rng.random() != geo_rng.random()
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._python_streams: Dict[str, random.Random] = {}
        self._numpy_streams: Dict[str, np.random.Generator] = {}

    def python(self, name: str) -> random.Random:
        """A :class:`random.Random` dedicated to ``name`` (cached)."""
        if name not in self._python_streams:
            self._python_streams[name] = random.Random(
                derive_seed(self.master_seed, name)
            )
        return self._python_streams[name]

    def numpy(self, name: str) -> np.random.Generator:
        """A NumPy generator dedicated to ``name`` (cached)."""
        if name not in self._numpy_streams:
            self._numpy_streams[name] = np.random.default_rng(
                derive_seed(self.master_seed, name)
            )
        return self._numpy_streams[name]

    def fork(self, name: str) -> "SeededStreams":
        """A child factory whose master seed is derived from ``name``.

        Used when an experiment spawns sub-experiments (e.g. one per
        monitoring-router count in the Figure 4 sweep).
        """
        return SeededStreams(derive_seed(self.master_seed, f"fork:{name}"))
