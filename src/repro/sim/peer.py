"""Simulated I2P peers: static attributes plus per-day snapshots.

A :class:`PeerRecord` holds everything that stays fixed for the lifetime of
one router identity (the identity itself, bandwidth tier, floodfill flag,
visibility class, presence schedule, home location).  A
:class:`PeerDaySnapshot` is the materialised view of that peer on one
simulation day: whether it is online, which IP it currently holds, and
whether it presents as public, firewalled, or hidden that day.

Since the columnar engine (:mod:`repro.sim.columns`) the per-peer
``presence`` vector is a NumPy boolean row (any boolean sequence is still
accepted), and day snapshots are no longer built eagerly: the measurement
pipeline works on column arrays, and ``DayView.snapshots`` materialises
these dataclasses lazily only for callers that ask for them.

The visibility classes correspond to Section 5.1 of the paper:

* ``PUBLIC`` — publishes a direct address, counted as reachable;
* ``FIREWALLED`` — behind NAT/firewall, publishes introducers only;
* ``HIDDEN`` — publishes neither address nor introducers;
* ``FLAPPING`` — switches between firewalled and hidden day to day (the
  ~2.6K "overlapping" peers of Figure 6).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..netdb.identity import RouterIdentity
from ..netdb.routerinfo import (
    BandwidthTier,
    CapacityFlags,
    Introducer,
    RouterAddress,
    RouterInfo,
    TransportStyle,
)
from .bandwidth import TierAssignment
from .churn import PresenceSchedule
from .ip import IpAssignment

__all__ = ["VisibilityClass", "PeerRecord", "PeerDaySnapshot", "build_routerinfo"]


class VisibilityClass(str, enum.Enum):
    PUBLIC = "public"
    FIREWALLED = "firewalled"
    HIDDEN = "hidden"
    FLAPPING = "flapping"


@dataclass
class PeerRecord:
    """Static, per-identity attributes of one simulated peer."""

    index: int
    identity: RouterIdentity
    tier: TierAssignment
    visibility_class: VisibilityClass
    schedule: PresenceSchedule
    country_code: str
    home_asn: int
    port: int
    base_visibility: float
    activity: float
    supports_ipv6: bool = False
    #: One entry per campaign day; a NumPy bool row when produced by the
    #: columnar population, but any boolean sequence works.
    presence: Sequence[bool] = field(default_factory=list)

    @property
    def peer_id(self) -> bytes:
        return self.identity.hash

    @property
    def is_floodfill(self) -> bool:
        return self.tier.floodfill

    @property
    def bandwidth_tier(self) -> BandwidthTier:
        return self.tier.primary_tier

    def is_online(self, day: int) -> bool:
        """Whether the peer is online on a (0-based) campaign day."""
        if day < 0 or day >= len(self.presence):
            return False
        return self.presence[day]

    def is_member(self, day: int) -> bool:
        return self.schedule.is_member_on(day)

    def membership_days(self) -> int:
        return self.schedule.membership_days

    def online_days(self) -> List[int]:
        return [day for day, online in enumerate(self.presence) if online]


@dataclass(frozen=True)
class PeerDaySnapshot:
    """A peer's observable state on one simulation day."""

    peer_id: bytes
    index: int
    day: int
    ip: Optional[str]
    ipv6: Optional[str]
    asn: Optional[int]
    country_code: str
    port: int
    bandwidth_tier: BandwidthTier
    advertised_tiers: Tuple[BandwidthTier, ...]
    floodfill: bool
    reachable: bool
    firewalled: bool
    hidden: bool
    is_new_today: bool
    base_visibility: float
    activity: float
    introducer_ips: Tuple[str, ...] = ()

    @property
    def has_valid_ip(self) -> bool:
        return self.ip is not None and not self.hidden and not self.firewalled

    @property
    def unknown_ip(self) -> bool:
        return self.firewalled or self.hidden

    @property
    def ip_addresses(self) -> Tuple[str, ...]:
        """The addresses this snapshot exposes to observers (may be empty)."""
        if self.unknown_ip:
            return ()
        addresses: Tuple[str, ...] = ()
        if self.ip is not None:
            addresses = (self.ip,)
        if self.ipv6 is not None:
            addresses = addresses + (self.ipv6,)
        return addresses


def build_routerinfo(
    snapshot: PeerDaySnapshot,
    identity: RouterIdentity,
    published_at: float,
    introducers: Sequence[Introducer] = (),
) -> RouterInfo:
    """Construct the RouterInfo a peer publishes for one daily snapshot.

    The structure follows the classification rules of Section 5.1: a public
    peer includes its direct addresses, a firewalled peer includes an
    address block with introducers but no host, and a hidden peer includes
    no address block at all.
    """
    capacity = CapacityFlags(
        tiers=snapshot.advertised_tiers,
        floodfill=snapshot.floodfill,
        reachable=snapshot.reachable,
        unreachable=not snapshot.reachable,
    )
    addresses: List[RouterAddress] = []
    if snapshot.hidden:
        addresses = []
    elif snapshot.firewalled:
        addresses.append(
            RouterAddress(
                style=TransportStyle.SSU,
                host=None,
                port=None,
                introducers=tuple(introducers),
            )
        )
    else:
        if snapshot.ip is not None:
            addresses.append(
                RouterAddress(
                    style=TransportStyle.NTCP, host=snapshot.ip, port=snapshot.port
                )
            )
            addresses.append(
                RouterAddress(
                    style=TransportStyle.SSU, host=snapshot.ip, port=snapshot.port
                )
            )
        if snapshot.ipv6 is not None:
            addresses.append(
                RouterAddress(
                    style=TransportStyle.NTCP, host=snapshot.ipv6, port=snapshot.port
                )
            )
    return RouterInfo(
        identity=identity,
        addresses=tuple(addresses),
        capacity=capacity,
        published_at=published_at,
        options=(("netdb.knownRouters", "0"), ("router.version", "0.9.34")),
    )
