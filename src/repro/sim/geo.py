"""Synthetic geographic / autonomous-system registry.

The paper maps peer IP addresses to countries and ASNs with a locally
installed MaxMind database (Section 3, Section 5.3.2).  Offline
reproduction needs an equivalent: this module provides a deterministic
registry of countries (with Reporters-Without-Borders press-freedom
scores), autonomous systems, and IPv4/IPv6 prefixes, calibrated so that the
geographic shape of the synthetic population matches Figures 10–12:

* the United States hosts the largest share of peers, and the top six
  countries (US, RU, GB, FR, CA, AU) contribute more than 40 %;
* the top-20 countries cover roughly 60 % of peers, the remainder being
  spread across ~200 other countries;
* roughly thirty countries with poor press-freedom scores (>50) contribute
  a combined ~19 % of the *daily* population is not required — the paper
  reports ≈6K unique peers over the campaign, dominated by China, then
  Singapore and Turkey;
* each country's peers concentrate in a handful of residential ASes, with
  AS7922 (Comcast) the single largest origin.

The registry is also the *inverse* mapping used by analysis code: given an
IP it returns country and ASN without any network access, mirroring the
paper's offline MaxMind usage.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Country",
    "AutonomousSystem",
    "GeoRegistry",
    "PRESS_FREEDOM_HIDDEN_THRESHOLD",
    "default_registry",
]

#: Press-freedom score above which the I2P router defaults to hidden mode
#: (Section 5.1: countries "with poor Press Freedom scores (i.e., greater
#: than 50)" default to hidden).
PRESS_FREEDOM_HIDDEN_THRESHOLD = 50.0


@dataclass(frozen=True)
class Country:
    """A country participating in the synthetic population."""

    code: str
    name: str
    weight: float
    press_freedom_score: float

    @property
    def poor_press_freedom(self) -> bool:
        return self.press_freedom_score > PRESS_FREEDOM_HIDDEN_THRESHOLD


@dataclass(frozen=True)
class AutonomousSystem:
    """An autonomous system: number, operator name, country, peer weight."""

    asn: int
    name: str
    country_code: str
    weight: float
    ipv4_prefix: Tuple[int, int]  # (first octet, second octet) of a /16
    supports_ipv6: bool = False

    def ipv4_for(self, host_index: int) -> str:
        """A deterministic IPv4 address inside this AS's /16."""
        third = (host_index // 254) % 254 + 1
        fourth = host_index % 254 + 1
        return f"{self.ipv4_prefix[0]}.{self.ipv4_prefix[1]}.{third}.{fourth}"

    def ipv6_for(self, host_index: int) -> str:
        """A deterministic IPv6 address inside a synthetic /32 for this AS."""
        return f"2a{self.asn % 16:01x}:{self.asn & 0xFFFF:x}::{host_index & 0xFFFF:x}"


# --------------------------------------------------------------------------- #
# Calibration tables
# --------------------------------------------------------------------------- #
# Top-20 countries of Figure 10, weights chosen so the top six exceed 40 %
# of the population and the top twenty land near 60–65 %.
_TOP20_COUNTRIES: List[Tuple[str, str, float, float]] = [
    # code, name, population weight, RSF press-freedom score (2018-ish)
    ("US", "United States", 0.2250, 23.7),
    ("RU", "Russia", 0.0820, 49.9),
    ("GB", "United Kingdom", 0.0545, 23.3),
    ("FR", "France", 0.0460, 21.9),
    ("CA", "Canada", 0.0395, 15.3),
    ("AU", "Australia", 0.0340, 14.5),
    ("DE", "Germany", 0.0300, 14.4),
    ("NL", "Netherlands", 0.0240, 10.0),
    ("BR", "Brazil", 0.0210, 31.3),
    ("IT", "Italy", 0.0200, 24.1),
    ("ES", "Spain", 0.0180, 20.1),
    ("IN", "India", 0.0170, 43.2),
    ("CN", "China", 0.0160, 78.3),
    ("JP", "Japan", 0.0150, 28.6),
    ("UA", "Ukraine", 0.0140, 32.9),
    ("SE", "Sweden", 0.0130, 8.3),
    ("BE", "Belgium", 0.0120, 13.2),
    ("CH", "Switzerland", 0.0110, 11.3),
    ("PL", "Poland", 0.0110, 26.6),
    ("ZA", "South Africa", 0.0100, 20.1),
]

# Countries with poor press-freedom scores (>50); the paper observes ~30 of
# them contributing about 6K unique peers over the campaign, led by China,
# Singapore, and Turkey.  China already appears in the top-20 table.
_POOR_PRESS_FREEDOM_COUNTRIES: List[Tuple[str, str, float, float]] = [
    ("SG", "Singapore", 0.0060, 50.9),
    ("TR", "Turkey", 0.0050, 52.9),
    ("BY", "Belarus", 0.0030, 51.7),
    ("VN", "Vietnam", 0.0028, 75.1),
    ("IR", "Iran", 0.0026, 64.4),
    ("SA", "Saudi Arabia", 0.0024, 61.0),
    ("EG", "Egypt", 0.0022, 56.5),
    ("PK", "Pakistan", 0.0020, 51.3),
    ("KZ", "Kazakhstan", 0.0018, 54.0),
    ("AZ", "Azerbaijan", 0.0016, 59.1),
    ("TH", "Thailand", 0.0016, 53.6),
    ("MY", "Malaysia", 0.0015, 50.7),
    ("AE", "United Arab Emirates", 0.0014, 58.8),
    ("BH", "Bahrain", 0.0012, 61.2),
    ("IQ", "Iraq", 0.0012, 55.5),
    ("LY", "Libya", 0.0010, 56.8),
    ("YE", "Yemen", 0.0010, 65.8),
    ("SD", "Sudan", 0.0010, 71.4),
    ("ET", "Ethiopia", 0.0010, 69.6),
    ("CU", "Cuba", 0.0009, 68.9),
    ("VE", "Venezuela", 0.0009, 51.4),
    ("RW", "Rwanda", 0.0008, 55.1),
    ("BD", "Bangladesh", 0.0008, 55.6),
    ("KH", "Cambodia", 0.0008, 52.6),
    ("LA", "Laos", 0.0007, 66.4),
    ("MM", "Myanmar", 0.0007, 53.9),
    ("TJ", "Tajikistan", 0.0006, 54.3),
    ("TM", "Turkmenistan", 0.0006, 84.2),
    ("UZ", "Uzbekistan", 0.0006, 66.1),
    ("QA", "Qatar", 0.0005, 57.5),
    ("OM", "Oman", 0.0005, 57.9),
]

# A long tail of "other" countries with free-ish press; collectively they
# absorb the remaining population weight.
_OTHER_COUNTRIES: List[Tuple[str, str, float, float]] = [
    ("FI", "Finland", 0.0090, 10.3),
    ("NO", "Norway", 0.0085, 7.6),
    ("DK", "Denmark", 0.0080, 9.9),
    ("AT", "Austria", 0.0078, 13.0),
    ("CZ", "Czechia", 0.0075, 17.0),
    ("PT", "Portugal", 0.0070, 14.2),
    ("GR", "Greece", 0.0065, 30.3),
    ("RO", "Romania", 0.0065, 24.5),
    ("HU", "Hungary", 0.0060, 29.1),
    ("IE", "Ireland", 0.0058, 14.6),
    ("NZ", "New Zealand", 0.0055, 13.0),
    ("MX", "Mexico", 0.0055, 48.9),
    ("AR", "Argentina", 0.0052, 26.0),
    ("CL", "Chile", 0.0050, 22.7),
    ("CO", "Colombia", 0.0048, 41.5),
    ("KR", "South Korea", 0.0048, 23.5),
    ("TW", "Taiwan", 0.0045, 23.4),
    ("HK", "Hong Kong", 0.0045, 29.0),
    ("ID", "Indonesia", 0.0042, 42.0),
    ("PH", "Philippines", 0.0040, 42.5),
    ("IL", "Israel", 0.0040, 32.0),
    ("SK", "Slovakia", 0.0038, 15.5),
    ("BG", "Bulgaria", 0.0036, 35.0),
    ("HR", "Croatia", 0.0035, 29.0),
    ("RS", "Serbia", 0.0034, 31.6),
    ("LT", "Lithuania", 0.0032, 22.0),
    ("LV", "Latvia", 0.0030, 19.0),
    ("EE", "Estonia", 0.0030, 12.0),
    ("SI", "Slovenia", 0.0028, 21.7),
    ("UY", "Uruguay", 0.0026, 16.6),
    ("PE", "Peru", 0.0025, 30.2),
    ("EC", "Ecuador", 0.0024, 32.5),
    ("MA", "Morocco", 0.0022, 43.1),
    ("TN", "Tunisia", 0.0022, 30.9),
    ("KE", "Kenya", 0.0020, 30.8),
    ("NG", "Nigeria", 0.0020, 39.4),
    ("GE", "Georgia", 0.0018, 27.3),
    ("AM", "Armenia", 0.0018, 28.0),
    ("MD", "Moldova", 0.0016, 30.0),
    ("IS", "Iceland", 0.0015, 14.7),
    ("LU", "Luxembourg", 0.0014, 15.7),
    ("CY", "Cyprus", 0.0012, 21.0),
    ("MT", "Malta", 0.0010, 23.4),
    ("LK", "Sri Lanka", 0.0010, 41.4),
    ("NP", "Nepal", 0.0009, 35.0),
    ("BO", "Bolivia", 0.0008, 32.4),
    ("PY", "Paraguay", 0.0008, 33.7),
    ("CR", "Costa Rica", 0.0008, 11.9),
    ("PA", "Panama", 0.0007, 30.6),
    ("DO", "Dominican Republic", 0.0006, 27.9),
]

# A wide long tail of additional countries with small individual weights so
# that the top-20 countries end up covering roughly 60–65 % of the
# population (Figure 10: the top twenty make up "more than 60%", the rest
# coming from ~200 other countries and regions).
_LONG_TAIL_COUNTRIES: List[Tuple[str, str, float, float]] = [
    ("AL", "Albania", 0.0035, 29.9), ("BA", "Bosnia and Herzegovina", 0.0033, 29.3),
    ("MK", "North Macedonia", 0.0030, 36.8), ("ME", "Montenegro", 0.0028, 33.4),
    ("XK", "Kosovo", 0.0026, 30.5), ("GT", "Guatemala", 0.0030, 38.0),
    ("SV", "El Salvador", 0.0028, 30.0), ("HN", "Honduras", 0.0026, 44.0),
    ("NI", "Nicaragua", 0.0024, 40.0), ("JM", "Jamaica", 0.0026, 11.3),
    ("TT", "Trinidad and Tobago", 0.0024, 24.0), ("BS", "Bahamas", 0.0020, 15.0),
    ("BB", "Barbados", 0.0018, 23.0), ("GH", "Ghana", 0.0032, 23.0),
    ("CI", "Ivory Coast", 0.0028, 29.0), ("SN", "Senegal", 0.0026, 24.0),
    ("CM", "Cameroon", 0.0024, 43.0), ("UG", "Uganda", 0.0024, 33.0),
    ("TZ", "Tanzania", 0.0026, 30.0), ("ZM", "Zambia", 0.0022, 36.0),
    ("ZW", "Zimbabwe", 0.0022, 41.0), ("BW", "Botswana", 0.0020, 23.0),
    ("NA", "Namibia", 0.0020, 17.0), ("MZ", "Mozambique", 0.0018, 30.0),
    ("AO", "Angola", 0.0018, 37.0), ("DZ", "Algeria", 0.0028, 43.0),
    ("JO", "Jordan", 0.0026, 42.0), ("LB", "Lebanon", 0.0026, 31.0),
    ("KW", "Kuwait", 0.0024, 34.0), ("MN", "Mongolia", 0.0022, 29.0),
    ("KG", "Kyrgyzstan", 0.0022, 30.0), ("BT", "Bhutan", 0.0016, 31.0),
    ("MV", "Maldives", 0.0016, 35.0), ("FJ", "Fiji", 0.0016, 27.0),
    ("PG", "Papua New Guinea", 0.0016, 24.0), ("BN", "Brunei", 0.0016, 50.0),
    ("MO", "Macao", 0.0018, 30.0), ("PR", "Puerto Rico", 0.0026, 20.0),
    ("GL", "Greenland", 0.0014, 10.0), ("FO", "Faroe Islands", 0.0014, 10.0),
    ("AD", "Andorra", 0.0014, 23.0), ("MC", "Monaco", 0.0014, 22.0),
    ("LI", "Liechtenstein", 0.0014, 17.0), ("SM", "San Marino", 0.0012, 20.0),
    ("JE", "Jersey", 0.0012, 22.0), ("GG", "Guernsey", 0.0012, 22.0),
    ("IM", "Isle of Man", 0.0012, 22.0), ("GI", "Gibraltar", 0.0012, 23.0),
    ("BM", "Bermuda", 0.0012, 20.0), ("KY", "Cayman Islands", 0.0012, 21.0),
    ("VG", "British Virgin Islands", 0.0010, 21.0), ("CW", "Curacao", 0.0010, 20.0),
    ("AW", "Aruba", 0.0010, 20.0), ("SR", "Suriname", 0.0010, 18.0),
    ("GY", "Guyana", 0.0010, 26.0), ("BZ", "Belize", 0.0010, 23.0),
    ("MU", "Mauritius", 0.0014, 27.0), ("SC", "Seychelles", 0.0010, 30.0),
    ("MG", "Madagascar", 0.0012, 27.0), ("RE", "Reunion", 0.0012, 22.0),
    ("NC", "New Caledonia", 0.0010, 24.0), ("PF", "French Polynesia", 0.0010, 24.0),
]
_OTHER_COUNTRIES.extend(_LONG_TAIL_COUNTRIES)

# Autonomous systems per country.  ``weight`` is the share of that
# country's peers originating from the AS; any residual weight falls into a
# synthetic "<CC>-other" AS generated automatically.
_AS_TABLE: List[Tuple[int, str, str, float, Tuple[int, int], bool]] = [
    # United States — Comcast is the single largest origin AS (Figure 11).
    (7922, "Comcast Cable Communications", "US", 0.28, (24, 0), True),
    (7018, "AT&T Services", "US", 0.15, (12, 0), False),
    (701, "Verizon Business", "US", 0.12, (71, 0), False),
    (20115, "Charter Communications", "US", 0.10, (66, 0), False),
    (209, "CenturyLink", "US", 0.08, (65, 0), False),
    (22773, "Cox Communications", "US", 0.06, (68, 0), False),
    # Russia
    (12389, "Rostelecom", "RU", 0.30, (95, 24), False),
    (8402, "Vimpelcom (Beeline)", "RU", 0.18, (95, 28), False),
    (31208, "MegaFon", "RU", 0.12, (95, 32), False),
    (12714, "NetByNet", "RU", 0.08, (95, 36), False),
    # United Kingdom
    (5089, "Virgin Media", "GB", 0.28, (81, 96), False),
    (2856, "British Telecom", "GB", 0.22, (81, 128), True),
    (9009, "M247", "GB", 0.12, (81, 160), True),
    (13285, "TalkTalk", "GB", 0.10, (81, 176), False),
    # France
    (3215, "Orange", "FR", 0.28, (90, 0), True),
    (12322, "Free SAS", "FR", 0.24, (90, 32), True),
    (16276, "OVH", "FR", 0.10, (91, 121), True),
    (15557, "SFR", "FR", 0.14, (90, 64), False),
    # Canada
    (812, "Rogers Communications", "CA", 0.28, (99, 224), False),
    (577, "Bell Canada", "CA", 0.24, (70, 48), False),
    (6327, "Shaw Communications", "CA", 0.18, (70, 64), False),
    # Australia
    (1221, "Telstra", "AU", 0.32, (58, 160), False),
    (4804, "TPG Internet", "AU", 0.20, (58, 104), False),
    (7545, "TPG Telecom", "AU", 0.14, (58, 108), False),
    # Germany
    (3320, "Deutsche Telekom", "DE", 0.30, (79, 192), True),
    (24940, "Hetzner Online", "DE", 0.12, (88, 198), True),
    (8881, "1&1 Versatel", "DE", 0.12, (82, 112), False),
    # Netherlands
    (1136, "KPN", "NL", 0.26, (77, 160), True),
    (60781, "LeaseWeb", "NL", 0.14, (89, 149), True),
    (33915, "Vodafone Libertel", "NL", 0.16, (77, 172), False),
    # Brazil
    (28573, "Claro Brasil", "BR", 0.26, (177, 32), False),
    (27699, "Telefonica Brasil", "BR", 0.22, (177, 64), False),
    (8167, "Oi (Brasil Telecom)", "BR", 0.14, (177, 96), False),
    # Italy
    (3269, "Telecom Italia", "IT", 0.30, (79, 0), False),
    (30722, "Vodafone Italia", "IT", 0.18, (79, 16), False),
    # Spain
    (3352, "Telefonica de Espana", "ES", 0.30, (80, 24), False),
    (12479, "Orange Espagne", "ES", 0.18, (80, 32), False),
    # India
    (9829, "BSNL", "IN", 0.24, (117, 192), False),
    (24560, "Bharti Airtel", "IN", 0.20, (122, 160), False),
    # China
    (4134, "China Telecom (Chinanet)", "CN", 0.34, (114, 80), False),
    (4837, "China Unicom", "CN", 0.26, (123, 112), False),
    (9808, "China Mobile", "CN", 0.12, (112, 0), False),
    # Japan
    (4713, "NTT Communications (OCN)", "JP", 0.26, (153, 128), True),
    (17676, "SoftBank", "JP", 0.20, (126, 0), False),
    # Ukraine
    (6849, "Ukrtelecom", "UA", 0.22, (91, 192), False),
    (25229, "Kyivstar", "UA", 0.18, (91, 196), False),
    # Sweden
    (3301, "Telia Sweden", "SE", 0.28, (78, 64), True),
    (8473, "Bahnhof", "SE", 0.14, (78, 72), True),
    # Belgium
    (5432, "Proximus", "BE", 0.30, (81, 240), False),
    (6848, "Telenet", "BE", 0.22, (84, 192), False),
    # Switzerland
    (3303, "Swisscom", "CH", 0.32, (85, 0), True),
    (6730, "Sunrise", "CH", 0.18, (85, 16), False),
    # Poland
    (5617, "Orange Polska", "PL", 0.28, (83, 0), False),
    (12741, "Netia", "PL", 0.16, (83, 16), False),
    # South Africa
    (3741, "Internet Solutions", "ZA", 0.24, (105, 224), False),
    (37457, "Telkom SA", "ZA", 0.20, (105, 240), False),
    # Singapore / Turkey (leaders of the poor-press-freedom group)
    (4773, "Singtel (MobileOne)", "SG", 0.30, (118, 189), False),
    (9506, "Singtel Fibre", "SG", 0.22, (119, 74), False),
    (9121, "Turk Telekom", "TR", 0.34, (88, 224), False),
    (16135, "Turkcell", "TR", 0.18, (88, 240), False),
    # Miscellaneous hosting providers used by VPN-hopping peers.
    (14061, "DigitalOcean", "US", 0.02, (104, 131), True),
    (16509, "Amazon AWS", "US", 0.02, (52, 0), True),
    (63949, "Linode", "US", 0.01, (45, 33), True),
]


class GeoRegistry:
    """Registry of countries, ASes, and prefix→(country, ASN) resolution."""

    def __init__(
        self,
        countries: Sequence[Country],
        autonomous_systems: Sequence[AutonomousSystem],
    ) -> None:
        if not countries:
            raise ValueError("registry needs at least one country")
        self._countries: Dict[str, Country] = {c.code: c for c in countries}
        self._ases: Dict[int, AutonomousSystem] = {}
        self._ases_by_country: Dict[str, List[AutonomousSystem]] = {}
        for asys in autonomous_systems:
            if asys.country_code not in self._countries:
                raise ValueError(
                    f"AS{asys.asn} references unknown country {asys.country_code}"
                )
            self._ases[asys.asn] = asys
            self._ases_by_country.setdefault(asys.country_code, []).append(asys)

        # Ensure every country has at least one AS: synthesise a residual
        # "<CC>-other" AS holding whatever weight the named ASes leave over.
        next_synthetic_asn = 64512  # private-use ASN range
        prefix_cursor = 0
        for country in countries:
            named = self._ases_by_country.get(country.code, [])
            named_weight = sum(a.weight for a in named)
            residual = max(0.0, 1.0 - named_weight)
            if residual > 1e-9 or not named:
                prefix = (100 + (prefix_cursor // 250) % 120, prefix_cursor % 250)
                prefix_cursor += 1
                synthetic = AutonomousSystem(
                    asn=next_synthetic_asn,
                    name=f"{country.code}-other",
                    country_code=country.code,
                    weight=residual if named else 1.0,
                    ipv4_prefix=prefix,
                    supports_ipv6=False,
                )
                next_synthetic_asn += 1
                self._ases[synthetic.asn] = synthetic
                self._ases_by_country.setdefault(country.code, []).append(synthetic)

        # Prefix → AS lookup table for resolve().
        self._prefix_to_asn: Dict[Tuple[int, int], int] = {}
        for asys in self._ases.values():
            self._prefix_to_asn[asys.ipv4_prefix] = asys.asn

        # Cumulative weights for sampling.
        self._country_codes: List[str] = [c.code for c in countries]
        weights = [c.weight for c in countries]
        total = sum(weights)
        self._country_cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._country_cumulative.append(acc)

        # NumPy sampling tables, built lazily for the batched bootstrap.
        self._np_country_cum: Optional[np.ndarray] = None
        self._np_as_tables: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._np_joint_table: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def countries(self) -> List[Country]:
        return list(self._countries.values())

    @property
    def autonomous_systems(self) -> List[AutonomousSystem]:
        return list(self._ases.values())

    def country(self, code: str) -> Country:
        return self._countries[code]

    def has_country(self, code: str) -> bool:
        return code in self._countries

    def autonomous_system(self, asn: int) -> AutonomousSystem:
        return self._ases[asn]

    def ases_in_country(self, code: str) -> List[AutonomousSystem]:
        return list(self._ases_by_country.get(code, []))

    def poor_press_freedom_countries(self) -> List[Country]:
        return [c for c in self._countries.values() if c.poor_press_freedom]

    # ------------------------------------------------------------------ #
    # Sampling (population generation)
    # ------------------------------------------------------------------ #
    def sample_country(self, rng: random.Random) -> Country:
        """Sample a country according to the calibrated population weights."""
        point = rng.random()
        index = bisect.bisect_left(self._country_cumulative, point)
        index = min(index, len(self._country_codes) - 1)
        return self._countries[self._country_codes[index]]

    def sample_as(self, country_code: str, rng: random.Random) -> AutonomousSystem:
        """Sample an AS within a country according to AS weights."""
        candidates = self._ases_by_country.get(country_code)
        if not candidates:
            raise KeyError(f"no ASes registered for country {country_code}")
        weights = [max(asys.weight, 1e-9) for asys in candidates]
        total = sum(weights)
        point = rng.random() * total
        acc = 0.0
        for asys, weight in zip(candidates, weights):
            acc += weight
            if point <= acc:
                return asys
        return candidates[-1]

    # ------------------------------------------------------------------ #
    # Batched sampling (bootstrap vectorisation)
    # ------------------------------------------------------------------ #
    def sample_country_codes_batch(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``count`` country codes drawn with one vectorised uniform batch.

        Same marginal distribution as :meth:`sample_country`; part of the
        bootstrap batched-RNG scheme.
        """
        if self._np_country_cum is None:
            self._np_country_cum = np.asarray(self._country_cumulative)
        idx = np.searchsorted(self._np_country_cum, rng.random(count), side="left")
        idx = np.minimum(idx, len(self._country_codes) - 1)
        codes = np.asarray(self._country_codes, dtype=object)
        return codes[idx]

    def _as_table(self, country_code: str) -> Tuple[np.ndarray, np.ndarray]:
        """(asns, cumulative weights) for one country, cached."""
        table = self._np_as_tables.get(country_code)
        if table is None:
            candidates = self._ases_by_country.get(country_code)
            if not candidates:
                raise KeyError(f"no ASes registered for country {country_code}")
            weights = np.asarray([max(a.weight, 1e-9) for a in candidates])
            cumulative = np.cumsum(weights / weights.sum())
            asns = np.asarray([a.asn for a in candidates], dtype=np.int64)
            table = (asns, cumulative)
            self._np_as_tables[country_code] = table
        return table

    def sample_as_batch(
        self, country_codes: Sequence[str], rng: np.random.Generator
    ) -> np.ndarray:
        """One home ASN per country code, batched (grouped by country)."""
        codes = np.asarray(country_codes, dtype=object)
        draws = rng.random(codes.size)
        asns = np.empty(codes.size, dtype=np.int64)
        for code in set(codes.tolist()):
            rows = np.nonzero(codes == code)[0]
            table_asns, cumulative = self._as_table(code)
            idx = np.searchsorted(cumulative, draws[rows], side="left")
            asns[rows] = table_asns[np.minimum(idx, table_asns.size - 1)]
        return asns

    def sample_joint_as_batch(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` ASNs from the joint country × AS distribution.

        Equivalent to sampling a country then an AS within it (the nomad
        hop-pool construction), collapsed into one cumulative table.
        """
        if self._np_joint_table is None:
            asns: List[int] = []
            weights: List[float] = []
            country_total = sum(c.weight for c in self._countries.values())
            for code in self._country_codes:
                p_country = self._countries[code].weight / country_total
                candidates = self._ases_by_country[code]
                as_weights = [max(a.weight, 1e-9) for a in candidates]
                as_total = sum(as_weights)
                for asys, weight in zip(candidates, as_weights):
                    asns.append(asys.asn)
                    weights.append(p_country * weight / as_total)
            weight_array = np.asarray(weights)
            self._np_joint_table = (
                np.asarray(asns, dtype=np.int64),
                np.cumsum(weight_array / weight_array.sum()),
            )
        table_asns, cumulative = self._np_joint_table
        idx = np.searchsorted(cumulative, rng.random(count), side="left")
        return table_asns[np.minimum(idx, table_asns.size - 1)]

    # ------------------------------------------------------------------ #
    # Resolution (the offline MaxMind stand-in)
    # ------------------------------------------------------------------ #
    def resolve(self, ip: str) -> Optional[Tuple[str, int]]:
        """Resolve an IP to ``(country_code, asn)`` or ``None`` if unknown.

        IPv4 resolution uses the /16 prefix; IPv6 resolution parses the
        synthetic AS-derived prefix produced by
        :meth:`AutonomousSystem.ipv6_for`.
        """
        if ":" in ip:
            return self._resolve_ipv6(ip)
        parts = ip.split(".")
        if len(parts) != 4:
            return None
        try:
            prefix = (int(parts[0]), int(parts[1]))
        except ValueError:
            return None
        asn = self._prefix_to_asn.get(prefix)
        if asn is None:
            return None
        asys = self._ases[asn]
        return asys.country_code, asn

    def _resolve_ipv6(self, ip: str) -> Optional[Tuple[str, int]]:
        try:
            groups = ip.split(":")
            asn_part = int(groups[1], 16)
        except (IndexError, ValueError):
            return None
        for asys in self._ases.values():
            if asys.supports_ipv6 and (asys.asn & 0xFFFF) == asn_part:
                return asys.country_code, asys.asn
        return None

    def resolve_country(self, ip: str) -> Optional[str]:
        resolved = self.resolve(ip)
        return resolved[0] if resolved else None

    def resolve_asn(self, ip: str) -> Optional[int]:
        resolved = self.resolve(ip)
        return resolved[1] if resolved else None


def default_registry() -> GeoRegistry:
    """Build the calibrated registry used by all paper-scale experiments."""
    countries = [
        Country(code, name, weight, score)
        for code, name, weight, score in (
            _TOP20_COUNTRIES + _POOR_PRESS_FREEDOM_COUNTRIES + _OTHER_COUNTRIES
        )
    ]
    ases = [
        AutonomousSystem(asn, name, country, weight, prefix, ipv6)
        for asn, name, country, weight, prefix, ipv6 in _AS_TABLE
    ]
    return GeoRegistry(countries, ases)
