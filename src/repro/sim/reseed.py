"""Reseed servers and the bootstrap process.

Section 2.1.2 / 4.2: *"a newly joined peer fetches RouterInfos from a set
of hardcoded reseed servers to learn a small portion of peers in the
network ... around 150 RouterInfos from two reseed servers (roughly 75
RouterInfos from each server)"*.  Reseed servers defend against harvesting
by returning the *same* set of RouterInfos to repeated requests from the
same source (Section 4).

Section 6.1 adds the censorship angle: reseed servers are a single point of
blockage, and the router provides *manual reseeding* — an ``i2pseeds.su3``
file created by any active peer and shared out of band.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..netdb.routerinfo import RouterInfo

__all__ = [
    "ROUTERINFOS_PER_RESEED",
    "DEFAULT_RESEED_SERVERS",
    "ReseedServer",
    "ReseedFile",
    "BootstrapResult",
    "bootstrap",
    "create_reseed_file",
]

#: RouterInfos returned by one reseed server per request.
ROUTERINFOS_PER_RESEED = 75

#: Reseed servers contacted during one bootstrap attempt.
RESEEDS_PER_BOOTSTRAP = 2

#: Hostnames of the hardcoded reseed servers (a representative subset of
#: the real list; the names only matter for the reseed-blocking analysis).
DEFAULT_RESEED_SERVERS: Tuple[str, ...] = (
    "reseed.i2p-projekt.de",
    "i2p.mooo.com",
    "reseed.memcpy.io",
    "reseed.onion.im",
    "i2pseed.creativecowpat.net",
    "reseed.i2pgit.org",
    "i2p.novg.net",
    "reseed.diva.exchange",
    "reseed-fr.i2pd.xyz",
    "reseed.atomike.ninja",
)


@dataclass
class ReseedServer:
    """One reseed server holding a bounded sample of the netDb."""

    hostname: str
    known_routerinfos: List[RouterInfo] = field(default_factory=list)
    blocked: bool = False
    #: Per-source cache so repeat requests return the same RouterInfos.
    _served: Dict[str, List[RouterInfo]] = field(default_factory=dict)
    #: Router hash -> position in ``known_routerinfos`` (incremental sync).
    _positions: Dict[bytes, int] = field(default_factory=dict)
    requests_served: int = 0
    #: Requests refused while the server was blocked (reseed outages).
    requests_blocked: int = 0

    def __post_init__(self) -> None:
        if self.known_routerinfos and not self._positions:
            self._positions = {
                info.hash: i for i, info in enumerate(self.known_routerinfos)
            }

    def update_known(self, routerinfos: Sequence[RouterInfo]) -> None:
        """Refresh the server's view of the network (operator-side sync)."""
        self.known_routerinfos = list(routerinfos)
        self._positions = {info.hash: i for i, info in enumerate(self.known_routerinfos)}
        self._served.clear()

    def add_known(self, info: RouterInfo) -> None:
        """Incrementally learn (or refresh) a single RouterInfo.

        O(1) per call, so adding N routers to a network costs O(N) reseed
        maintenance instead of the O(N²) full rebuild ``update_known``
        implies when driven once per joining router.
        """
        position = self._positions.get(info.hash)
        if position is None:
            self._positions[info.hash] = len(self.known_routerinfos)
            self.known_routerinfos.append(info)
        else:
            self.known_routerinfos[position] = info
        self._served.clear()

    def remove_known(self, router_hash: bytes) -> bool:
        """Forget a RouterInfo (swap-remove; order is not meaningful)."""
        position = self._positions.pop(router_hash, None)
        if position is None:
            return False
        last = self.known_routerinfos.pop()
        if position < len(self.known_routerinfos):
            self.known_routerinfos[position] = last
            self._positions[last.hash] = position
        self._served.clear()
        return True

    def serve(
        self, source_ip: str, rng: Optional[random.Random] = None
    ) -> List[RouterInfo]:
        """Serve RouterInfos to a bootstrapping client.

        The same ``source_ip`` always receives the same sample, defeating
        trivial harvesting (Section 4).  A blocked server serves nothing.
        """
        if self.blocked:
            self.requests_blocked += 1
            return []
        self.requests_served += 1
        if source_ip in self._served:
            return list(self._served[source_ip])
        rng = rng or random.Random(hash((self.hostname, source_ip)) & 0xFFFFFFFF)
        count = min(ROUTERINFOS_PER_RESEED, len(self.known_routerinfos))
        sample = rng.sample(self.known_routerinfos, count) if count else []
        self._served[source_ip] = sample
        return list(sample)


@dataclass(frozen=True)
class ReseedFile:
    """An ``i2pseeds.su3`` file created by a peer for manual reseeding."""

    created_by: bytes
    routerinfos: Tuple[RouterInfo, ...]

    def __len__(self) -> int:
        return len(self.routerinfos)


@dataclass
class BootstrapResult:
    """Outcome of one bootstrap attempt."""

    routerinfos: List[RouterInfo]
    servers_contacted: int
    servers_blocked: int
    used_manual_reseed: bool = False

    @property
    def succeeded(self) -> bool:
        return len(self.routerinfos) > 0


def bootstrap(
    source_ip: str,
    servers: Sequence[ReseedServer],
    rng: Optional[random.Random] = None,
    manual_reseed: Optional[ReseedFile] = None,
) -> BootstrapResult:
    """Perform the bootstrap process for a newly joining peer.

    The client contacts :data:`RESEEDS_PER_BOOTSTRAP` randomly chosen reseed
    servers.  If every contacted server is blocked (or serves nothing) and a
    manual reseed file is available, the file is used instead (Section 6.1).
    """
    rng = rng or random.Random()
    available = list(servers)
    if not available:
        if manual_reseed is not None and len(manual_reseed):
            return BootstrapResult(
                routerinfos=list(manual_reseed.routerinfos),
                servers_contacted=0,
                servers_blocked=0,
                used_manual_reseed=True,
            )
        return BootstrapResult(routerinfos=[], servers_contacted=0, servers_blocked=0)

    chosen = rng.sample(available, min(RESEEDS_PER_BOOTSTRAP, len(available)))
    collected: Dict[bytes, RouterInfo] = {}
    blocked = 0
    for server in chosen:
        if server.blocked:
            server.requests_blocked += 1
            blocked += 1
            continue
        for info in server.serve(source_ip, rng):
            collected[info.hash] = info

    if not collected and manual_reseed is not None and len(manual_reseed):
        return BootstrapResult(
            routerinfos=list(manual_reseed.routerinfos),
            servers_contacted=len(chosen),
            servers_blocked=blocked,
            used_manual_reseed=True,
        )
    return BootstrapResult(
        routerinfos=list(collected.values()),
        servers_contacted=len(chosen),
        servers_blocked=blocked,
    )


def create_reseed_file(
    creator_hash: bytes, netdb_routerinfos: Sequence[RouterInfo], limit: int = 150
) -> ReseedFile:
    """Create a manual reseed file from an active peer's netDb."""
    if limit <= 0:
        raise ValueError("limit must be positive")
    selected = tuple(netdb_routerinfos[:limit])
    return ReseedFile(created_by=creator_hash, routerinfos=selected)
