"""Columnar registry of router identities for the message-plane engine.

The batched netDb message plane (:mod:`repro.sim.network`) ranks tens of
thousands of XOR-distance selections per convergence round.  Doing that
through per-router Python sets and 32-byte ``bytes`` keys dominates the
profile, so the network keeps one append-only directory of every router
hash it has ever seen and refers to routers by their integer directory
index:

* ``hashes`` / ``index`` map between raw hashes and indices;
* per-day routing keys are packed once into an ``(n, 4)`` uint64 word
  matrix (see :func:`repro.netdb.kademlia.pack_keys`) and re-used by every
  selection in the round;
* IPs and last-published timestamps live in flat NumPy columns instead of
  being re-derived from RouterInfo objects.

Indices are stable for the lifetime of the network — removal of a router
leaves its row in place (the network's liveness checks filter dead
routers), which keeps every cached index array valid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..netdb.routing_key import date_string_for_time, routing_keys_packed

__all__ = ["RouterDirectory", "region_of_hash"]

_INITIAL_CAPACITY = 256


def region_of_hash(router_hash: bytes, regions: int) -> int:
    """Deterministic region (country/AS cluster) assignment of a router.

    The fault plane partitions the network into ``regions`` link regions
    for blackout schedules; the assignment hashes only the identity so it
    is stable across planes, runs, and topology changes.
    """
    if regions < 1:
        raise ValueError("regions must be at least 1")
    return int.from_bytes(router_hash[:4], "big") % regions


class RouterDirectory:
    """Append-only columnar store of router hashes and per-router scalars."""

    def __init__(self) -> None:
        self.hashes: List[bytes] = []
        self.index: Dict[bytes, int] = {}
        self._capacity = _INITIAL_CAPACITY
        self.ip_u32 = np.zeros(self._capacity, dtype=np.uint32)
        self.last_published = np.full(self._capacity, -np.inf, dtype=np.float64)
        self._key_date: Optional[str] = None
        self._key_count = 0
        self._key_words = np.empty((0, 4), dtype=np.uint64)
        self._region_cache: Dict[int, np.ndarray] = {}
        self._region_count = 0

    def __len__(self) -> int:
        return len(self.hashes)

    def _grow(self, needed: int) -> None:
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        ip_u32 = np.zeros(capacity, dtype=np.uint32)
        ip_u32[: self._capacity] = self.ip_u32
        last_published = np.full(capacity, -np.inf, dtype=np.float64)
        last_published[: self._capacity] = self.last_published
        self.ip_u32 = ip_u32
        self.last_published = last_published
        self._capacity = capacity

    def register(self, router_hash: bytes) -> int:
        """Index of ``router_hash``, assigning the next row when unseen."""
        idx = self.index.get(router_hash)
        if idx is not None:
            return idx
        idx = len(self.hashes)
        if idx >= self._capacity:
            self._grow(idx + 1)
        self.hashes.append(router_hash)
        self.index[router_hash] = idx
        return idx

    def indices_of(self, router_hashes: Sequence[bytes]) -> np.ndarray:
        """Directory indices for ``router_hashes``, registering unseen ones."""
        index = self.index
        try:
            return np.array([index[h] for h in router_hashes], dtype=np.int64)
        except KeyError:
            register = self.register
            return np.array([register(h) for h in router_hashes], dtype=np.int64)

    def set_ip(self, idx: int, ip_u32: int) -> None:
        self.ip_u32[idx] = ip_u32

    def note_published(self, indices: np.ndarray, now: float) -> None:
        """Record that the routers at ``indices`` published at ``now``."""
        self.last_published[indices] = now

    def key_words(self, sim_time: float) -> np.ndarray:
        """Packed routing-key words for every registered hash.

        Rebuilt only when the simulated UTC date rotates or new hashes
        were registered since the last build; within one convergence
        round every selection shares the same matrix.
        """
        date = date_string_for_time(sim_time)
        count = len(self.hashes)
        if self._key_date != date or self._key_count != count:
            self._key_words = routing_keys_packed(self.hashes, sim_time)
            self._key_date = date
            self._key_count = count
        return self._key_words

    def region_codes(self, regions: int) -> np.ndarray:
        """Per-row region assignment column (see :func:`region_of_hash`).

        Memoised per region count; extended in place when new hashes were
        registered since the last build.
        """
        count = len(self.hashes)
        cached = self._region_cache.get(regions)
        if cached is not None and self._region_count == count:
            return cached
        codes = np.fromiter(
            (region_of_hash(h, regions) for h in self.hashes),
            dtype=np.int64,
            count=count,
        )
        self._region_cache = {regions: codes}
        self._region_count = count
        return codes
