"""Message-level I2P network engine.

This engine wires together the full substrate — identities, RouterInfos,
netDb stores, floodfill flooding, reseed bootstrap, DLM exploration, and
tunnel building — at the level of individual protocol interactions.  Unit
and integration tests use it to validate that the four peer-discovery
mechanisms enumerated in Section 4.2 of the paper actually produce the
netDb contents the statistical model (:mod:`repro.sim.observation`)
summarises at paper scale.

Two message planes drive convergence:

* the **legacy plane** delivers every DatabaseStoreMessage one Python
  call at a time (`_publish_all_legacy` / `_deliver_store`), exactly as
  the original engine did;
* the **batched plane** (default) computes closest-floodfill targets for
  all publishers of a round at once — NumPy argpartition over packed
  XOR distances against the memoised daily routing keys — then walks the
  resulting flood cascades and coalesces the per-floodfill deliveries
  into one store-apply pass per round.

The two planes produce bit-identical netDb end states at a fixed seed
(store contents, known-floodfill sets, reseed servers, message counts;
see ``tests/sim/test_network_equivalence.py``): within one round the
floodfill neighbour tables are frozen, non-floodfill publishers never
mutate anyone's candidate sets, and floodfill publishers are replayed
sequentially in their legacy order, so reordering the remaining work is
observationally equivalent.  Columnar router state lives in
:class:`repro.sim.directory.RouterDirectory`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..netdb.floodfill import FLOOD_REDUNDANCY, FloodfillRouterState
from ..netdb.identity import RouterIdentity
from ..netdb.kademlia import select_closest_segmented, select_closest_shared
from ..netdb.leaseset import LEASE_DURATION, Destination, Lease, LeaseSet
from ..netdb.messages import (
    DatabaseLookupMessage,
    DatabaseStoreMessage,
    LookupType,
)
from ..netdb.routerinfo import (
    BandwidthTier,
    CapacityFlags,
    RouterAddress,
    RouterInfo,
    TransportStyle,
)
from ..netdb.routing_key import date_string_for_time, routing_key, select_closest
from ..netdb.store import NetDbStore
from ..transport.ports import PortRegistry
from .clock import SECONDS_PER_HOUR, SimulationClock
from .directory import RouterDirectory
from .faults import (
    CHANNEL_EXPLORE,
    CHANNEL_LOOKUP,
    CHANNEL_STORE,
    FaultInjector,
    FaultMetrics,
    FaultPlan,
)
from .reseed import DEFAULT_RESEED_SERVERS, ReseedServer, bootstrap
from .tunnels import TunnelBuilder, TunnelDirection

__all__ = ["SimulatedRouter", "I2PNetwork"]

#: Reseed-server RouterInfos older than this are refreshed (full re-sync)
#: before serving a new bootstrap, so late joiners never receive infos
#: that would expire on the next store-expiry pass.  Keyed to half the
#: *floodfill* RouterInfo expiry (1h) — the tightest store expiry a
#: joining router can have.
RESEED_REFRESH_SECONDS = 0.5 * SECONDS_PER_HOUR


@dataclass
class SimulatedRouter:
    """A fully simulated router participating in the message-level network."""

    identity: RouterIdentity
    ip: str
    port: int
    bandwidth_tier: BandwidthTier
    floodfill: bool
    hidden: bool = False
    store: NetDbStore = field(default_factory=NetDbStore)
    floodfill_state: Optional[FloodfillRouterState] = None
    known_floodfills: Set[bytes] = field(default_factory=set)
    participating_tunnels: int = 0
    #: Hidden services hosted by this router: destination hash -> Destination.
    hosted_destinations: Dict[bytes, Destination] = field(default_factory=dict)
    #: Row of this router in the owning network's RouterDirectory.
    dir_index: int = field(default=-1, repr=False, compare=False)
    #: (signature, RouterInfo) memo for :meth:`routerinfo`.
    _info_cache: Optional[Tuple[tuple, RouterInfo]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def hash(self) -> bytes:
        return self.identity.hash

    def routerinfo(self, published_at: float) -> RouterInfo:
        """The RouterInfo this router publishes right now.

        Identical consecutive publications differ only in
        ``published_at``, so the previous info is memoised and re-stamped
        instead of rebuilding the capacity/address objects every round.
        """
        signature = (self.bandwidth_tier, self.floodfill, self.hidden, self.ip, self.port)
        cached = self._info_cache
        if cached is not None and cached[0] == signature:
            info = cached[1]
            if info.published_at != published_at:
                info = info.republished(published_at)
                self._info_cache = (signature, info)
            return info
        capacity = CapacityFlags(
            tiers=(self.bandwidth_tier,),
            floodfill=self.floodfill,
            reachable=not self.hidden,
            unreachable=self.hidden,
        )
        addresses: Tuple[RouterAddress, ...]
        if self.hidden:
            addresses = ()
        else:
            addresses = (
                RouterAddress(
                    style=TransportStyle.NTCP, host=self.ip, port=self.port
                ),
            )
        info = RouterInfo(
            identity=self.identity,
            addresses=addresses,
            capacity=capacity,
            published_at=published_at,
        )
        self._info_cache = (signature, info)
        return info

    def learn(self, info: RouterInfo) -> bool:
        """Store a RouterInfo and track floodfills separately."""
        changed = self.store.store_routerinfo(info)
        if info.is_floodfill:
            self.known_floodfills.add(info.hash)
            if self.floodfill_state is not None:
                self.floodfill_state.learn_floodfill(info.hash)
        return changed

    def known_peer_hashes(self) -> Set[bytes]:
        """Set-like view of all known peer hashes.

        Returns the store's live key view (supports all read-only set
        operations) instead of materialising a fresh ``set`` per call.
        """
        return self.store.router_hashes_view()


@dataclass
class _FloodfillView:
    """A router's cached view of the floodfills it can publish to."""

    size: int  # len(known_floodfills) at build time (invalidation key)
    epoch: int  # topology epoch at build time (invalidation key)
    alive_hashes: List[bytes]  # known ∩ alive, sorted (canonical order)
    alive_cols: np.ndarray  # directory indices, same order
    is_full: bool  # candidate set == the network's active floodfill set


class _ReplayCache:
    """Memoised write structure of one steady-state publish round.

    In a converged network every publish round delivers the exact same
    message pattern: selections depend only on the routing-key date and
    the (frozen) candidate sets, and flooding depends only on
    within-round first-receipt — so the per-store write sequences repeat
    byte for byte, with only the publication timestamp changing.  The
    cache records that structure once, and
    :meth:`I2PNetwork._publish_all_batched` re-applies it with the
    round's re-stamped RouterInfos whenever the guards prove nothing
    structural moved since the build.  Every guard quantity is monotone
    (sets only grow, epochs/versions only increment), so sum equality
    implies component-wise equality.
    """

    __slots__ = (
        "epoch",  # network topology epoch at build time
        "key_date",  # routing-key UTC date the selections were ranked under
        "sizes_sum",  # sum of len(known_floodfills) over all routers
        "versions_sum",  # sum of floodfill neighbours_version
        "order_sum",  # sum of store order_epoch (no removals since build)
        "ff_count",  # number of floodfill routers
        "delivered",  # DSMs delivered by the recorded round
        "pub_cols",  # publisher directory indices (np.int64)
        "entries",  # per store: (store, [(pub_hash, col)...], n_writes, n_uniq)
    )


class I2PNetwork:
    """A message-level I2P network."""

    def __init__(
        self,
        seed: int = 0,
        reseed_server_count: int = 3,
        batched: bool = True,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.clock = SimulationClock()
        self.rng = random.Random(seed)
        self.routers: Dict[bytes, SimulatedRouter] = {}
        self.ports = PortRegistry()
        self.tunnel_builder = TunnelBuilder(rng=random.Random(seed + 1))
        self.reseed_servers: List[ReseedServer] = [
            ReseedServer(hostname=name)
            for name in DEFAULT_RESEED_SERVERS[:reseed_server_count]
        ]
        self._host_counter = 0
        self._last_reseed_sync = 0.0
        self.messages_delivered = 0
        #: Whether publish/explore use the batched message plane.  The
        #: legacy per-message loop stays available (``batched=False``) as
        #: the equivalence oracle.
        self.batched = batched
        self.directory = RouterDirectory()
        #: Bumped whenever the router population changes; every
        #: topology-dependent cache below keys on it.
        self._topology_epoch = 0
        self._ff_views: Dict[bytes, _FloodfillView] = {}
        self._flood_cols: Dict[bytes, Tuple[Tuple[int, int], np.ndarray, bool]] = {}
        self._explore_excludes: Dict[bytes, Tuple[int, int, Set[bytes]]] = {}
        self._active_ff_cache: Optional[Tuple[int, List[bytes], np.ndarray, Set[bytes]]] = None
        self._col_routers: Optional[Tuple[int, Dict[int, SimulatedRouter]]] = None
        self._replay: Optional[_ReplayCache] = None
        #: Cache-churn counters; ``tests/sim/test_network_batched.py``
        #: asserts these stay flat across steady-state rounds.
        #: ``replay_rounds`` counts publish rounds served entirely from
        #: the memoised write structure.
        self.plane_stats: Dict[str, int] = {
            "ff_view_rebuilds": 0,
            "flood_table_rebuilds": 0,
            "explore_exclude_rebuilds": 0,
            "replay_rounds": 0,
        }
        #: Fault plane (see :mod:`repro.sim.faults`).  ``faults`` is None
        #: unless a non-noop plan is attached — every fault check in the
        #: hot paths hides behind that None test, so the fault-free plane
        #: (including the replay fast path) is byte-identical to a network
        #: without the feature.
        self.fault_plan: Optional[FaultPlan] = None
        self.faults: Optional[FaultInjector] = None
        self.fault_metrics = FaultMetrics()
        if fault_plan is not None:
            self.set_fault_plan(fault_plan)

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Attach (or detach, with ``None``) a fault-injection plan.

        A no-op plan normalises to no injector at all.  Attaching or
        detaching clears the replay fast path — its memoised write
        structure was recorded under different failure assumptions — and
        resets crash flags and degradation metrics.
        """
        self.fault_plan = plan
        if plan is None or plan.is_noop:
            self.faults = None
        else:
            self.faults = FaultInjector(plan)
        self.fault_metrics = FaultMetrics()
        self._replay = None
        for router in self.routers.values():
            if router.floodfill_state is not None:
                router.floodfill_state.crashed = False

    # ------------------------------------------------------------------ #
    # Topology management
    # ------------------------------------------------------------------ #
    def _allocate_ip(self) -> str:
        self._host_counter += 1
        index = self._host_counter
        return f"10.{(index >> 16) & 0xFF}.{(index >> 8) & 0xFF}.{index & 0xFF}"

    def add_router(
        self,
        floodfill: bool = False,
        bandwidth_tier: BandwidthTier = BandwidthTier.L,
        hidden: bool = False,
        do_bootstrap: bool = True,
    ) -> SimulatedRouter:
        """Create a router, optionally bootstrapping it from reseed servers."""
        router = self._create_router(
            floodfill=floodfill,
            bandwidth_tier=bandwidth_tier,
            hidden=hidden,
            do_bootstrap=do_bootstrap,
        )
        # Reseed servers learn about new public routers over time —
        # incrementally: only the new router's RouterInfo is pushed, instead
        # of rebuilding every public RouterInfo on every add (O(n²)).
        if not hidden:
            self._push_to_reseed_servers(router)
        return router

    def batch_add_routers(
        self,
        count: int,
        floodfill: bool = False,
        bandwidth_tier: BandwidthTier = BandwidthTier.L,
        hidden: bool = False,
        do_bootstrap: bool = True,
    ) -> List[SimulatedRouter]:
        """Create ``count`` routers with one reseed sync pass at the end.

        The batch members bootstrap against the pre-batch network — their
        reseed samples do not include each other, so seed the network's
        floodfills (and anything else the batch must discover immediately)
        *before* batching, and run convergence rounds afterwards.  Use
        this for tests/examples that stand up networks of hundreds of
        routers.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        routers = [
            self._create_router(
                floodfill=floodfill,
                bandwidth_tier=bandwidth_tier,
                hidden=hidden,
                do_bootstrap=do_bootstrap,
            )
            for _ in range(count)
        ]
        for router in routers:
            if not router.hidden:
                self._push_to_reseed_servers(router)
        return routers

    def _create_router(
        self,
        floodfill: bool,
        bandwidth_tier: BandwidthTier,
        hidden: bool,
        do_bootstrap: bool,
    ) -> SimulatedRouter:
        identity = RouterIdentity.generate(self.rng)
        ip = self._allocate_ip()
        port = self.ports.bind(ip, identity.hash, rng=self.rng)
        router = SimulatedRouter(
            identity=identity,
            ip=ip,
            port=port,
            bandwidth_tier=bandwidth_tier,
            floodfill=floodfill,
            hidden=hidden,
            store=NetDbStore(floodfill=floodfill),
        )
        if floodfill:
            router.floodfill_state = FloodfillRouterState(
                router_hash=identity.hash, store=router.store
            )
        self.routers[identity.hash] = router
        router.dir_index = self.directory.register(identity.hash)
        self.directory.set_ip(router.dir_index, self._host_counter)
        self._topology_epoch += 1

        if do_bootstrap:
            # Incremental pushes freeze each info's published_at at add
            # time; refresh the whole reseed view when it has gone stale so
            # bootstrapped infos survive the next expiry pass.
            if self.clock.now - self._last_reseed_sync > RESEED_REFRESH_SECONDS:
                self._sync_reseed_servers()
            if self.faults is not None:
                self._apply_reseed_outages(self.clock.now)
            result = bootstrap(ip, self.reseed_servers, rng=self.rng)
            if self.faults is not None:
                self.fault_metrics.note_bootstrap(result.succeeded)
            for info in result.routerinfos:
                router.learn(info)
        return router

    def remove_router(self, router_hash: bytes) -> bool:
        router = self.routers.pop(router_hash, None)
        if router is None:
            return False
        self.ports.release(router.ip, router.port)
        for server in self.reseed_servers:
            server.remove_known(router_hash)
        self._topology_epoch += 1
        return True

    def _push_to_reseed_servers(self, router: SimulatedRouter) -> None:
        info = router.routerinfo(self.clock.now)
        for server in self.reseed_servers:
            server.add_known(info)

    def _sync_reseed_servers(self) -> None:
        """Full rebuild of every reseed server's view (rarely needed; adds
        use the incremental :meth:`_push_to_reseed_servers` path)."""
        public_infos = [
            router.routerinfo(self.clock.now)
            for router in self.routers.values()
            if not router.hidden
        ]
        for server in self.reseed_servers:
            server.update_known(public_infos)
        self._last_reseed_sync = self.clock.now

    # ------------------------------------------------------------------ #
    # netDb interactions
    # ------------------------------------------------------------------ #
    def floodfill_hashes(self) -> List[bytes]:
        return [h for h, r in self.routers.items() if r.floodfill]

    def publish_all(self) -> int:
        """Every router publishes its RouterInfo to its closest floodfills.

        Returns the number of DatabaseStoreMessages delivered (including
        flood propagation).  Dispatches to the batched message plane
        unless the network was built with ``batched=False``; an active
        fault plan routes both planes through the fault-aware path.
        """
        if self.faults is not None:
            return self._publish_all_faulty()
        if self.batched:
            return self._publish_all_batched()
        return self._publish_all_legacy()

    def _publish_all_legacy(self) -> int:
        """Reference per-message publish loop (the equivalence oracle)."""
        delivered = 0
        floodfills = self.floodfill_hashes()
        for router in list(self.routers.values()):
            info = router.routerinfo(self.clock.now)
            router.learn(info)
            if not floodfills:
                continue
            known_ffs = [h for h in router.known_floodfills if h in self.routers]
            candidates = known_ffs if known_ffs else floodfills
            target_key = routing_key(info.hash, self.clock.now)
            targets = select_closest(
                target_key, candidates, FLOOD_REDUNDANCY, self.clock.now
            )
            for target_hash in targets:
                delivered += self._deliver_store(target_hash, router.hash, info)
        self.messages_delivered += delivered
        return delivered

    # ------------------------------------------------------------------ #
    # Fault-aware message plane (active only while a plan is attached)
    # ------------------------------------------------------------------ #
    def _apply_crash_flags(self, now: float) -> Set[bytes]:
        """Refresh every floodfill's crash flag; returns the crashed set."""
        faults = self.faults
        assert faults is not None
        crashed: Set[bytes] = set()
        for router_hash, router in self.routers.items():
            state = router.floodfill_state
            if state is None:
                continue
            is_crashed = faults.crashed(router_hash, now)
            state.crashed = is_crashed
            if is_crashed:
                crashed.add(router_hash)
        return crashed

    def _apply_reseed_outages(self, now: float) -> None:
        """Refresh reseed ``blocked`` flags from the plan's outage windows."""
        faults = self.faults
        assert faults is not None
        for server in self.reseed_servers:
            server.blocked = faults.reseed_blocked(server.hostname, now)

    def _publish_all_faulty(self) -> int:
        """Publish round under an active fault plan, on either plane.

        Semantics extend the fault-free round with robustness: a
        publisher ranks ``FLOOD_REDUNDANCY + store_retry_budget`` closest
        candidates and walks them in order until ``FLOOD_REDUNDANCY``
        stores are acknowledged — a delivery to a crashed floodfill or a
        dropped message consumes an attempt (the next-closest candidate
        is the retry), and each retry beyond the first three attempts
        adds exponential-backoff latency to the round's modelled retry
        latency.  Every fault decision is a stateless seeded coin, so the
        batched (``queue_mode``: writes coalesced per store, applied once
        at round end — order-equivalent by PR 6's cascade argument) and
        legacy (immediate writes) planes fail identically and produce
        identical degradation curves.  The round closes by recording a
        :class:`repro.sim.faults.RoundSample`.
        """
        faults = self.faults
        assert faults is not None
        plan = faults.plan
        now = self.clock.now
        queue_mode = self.batched
        crashed = self._apply_crash_flags(now)
        routers = list(self.routers.values())
        floodfills = self.floodfill_hashes()
        queues: Optional[Dict[int, Tuple[NetDbStore, List[RouterInfo]]]] = (
            {} if queue_mode else None
        )
        delivered = 0
        publishers = 0
        publishers_acked = 0
        store_attempts = 0
        store_acks = 0
        store_drops = 0
        store_retries = 0
        retry_latency = 0.0
        max_attempts = FLOOD_REDUNDANCY + plan.store_retry_budget

        for router in routers:
            if router.hash in crashed:
                continue  # a crashed floodfill is offline: no publish
            info = router.routerinfo(now)
            if queue_mode:
                queue = queues.get(router.dir_index)
                if queue is None:
                    queues[router.dir_index] = (router.store, [info])
                else:
                    queue[1].append(info)
                if router.floodfill:
                    router.known_floodfills.add(router.hash)
            else:
                router.learn(info)
            if not floodfills:
                continue
            publishers += 1
            known_ffs = [h for h in router.known_floodfills if h in self.routers]
            candidates = known_ffs if known_ffs else floodfills
            target_key = routing_key(info.hash, now)
            ranked = select_closest(target_key, candidates, max_attempts, now)
            required = min(FLOOD_REDUNDANCY, len(ranked))
            acks = 0
            attempts = 0
            received: Set[bytes] = set()
            for target_hash in ranked:
                if acks >= FLOOD_REDUNDANCY:
                    break
                attempts += 1
                acked, n_delivered, n_dropped = self._attempt_store_faulty(
                    router, info, target_hash, now, queues, received
                )
                delivered += n_delivered
                store_drops += n_dropped
                if acked:
                    acks += 1
            store_attempts += attempts
            store_acks += acks
            retries = max(0, attempts - FLOOD_REDUNDANCY)
            if retries:
                store_retries += retries
                for k in range(1, retries + 1):
                    retry_latency += plan.backoff_base_seconds * (2.0 ** (k - 1))
            if required and acks >= required:
                publishers_acked += 1

        if queue_mode:
            for store, queued in queues.values():
                store.store_routerinfos_batch(queued)

        self.messages_delivered += delivered

        live_ffs = [h for h in floodfills if h not in crashed]
        coverage = 0.0
        if live_ffs and routers:
            live_set = set(live_ffs)
            live_count = len(live_set)
            coverage = sum(
                len(live_set.intersection(router.known_floodfills)) / live_count
                for router in routers
            ) / len(routers)
        self.fault_metrics.record_publish_round(
            sim_time=now,
            publishers=publishers,
            publishers_acked=publishers_acked,
            store_attempts=store_attempts,
            store_acks=store_acks,
            store_drops=store_drops,
            store_retries=store_retries,
            retry_latency_seconds=retry_latency,
            crashed_floodfills=len(crashed),
            netdb_coverage=coverage,
        )
        return delivered

    def _attempt_store_faulty(
        self,
        publisher: SimulatedRouter,
        info: RouterInfo,
        target_hash: bytes,
        now: float,
        queues: Optional[Dict[int, Tuple[NetDbStore, List[RouterInfo]]]],
        received: Set[bytes],
    ) -> Tuple[bool, int, int]:
        """One direct store attempt (plus flood propagation) under faults.

        Returns ``(acked, messages_delivered, drops)``.  ``queues`` is the
        batched plane's per-store delivery queues (None on the legacy
        plane, which writes immediately); ``received`` tracks targets that
        already hold this round's copy of ``info``, reproducing the
        immediate-write freshness decision for queued writes.
        """
        faults = self.faults
        target = self.routers.get(target_hash)
        if target is None or target.floodfill_state is None:
            return False, 0, 0
        pub_hash = info.identity._hash
        if target is publisher:
            # Local write: can't be dropped, is always stale (the
            # self-learn this round already holds today's info), never
            # floods — but it is a live acknowledgement.
            if queues is None:
                message = DatabaseStoreMessage(
                    from_hash=pub_hash, entry=info, reply_token=1
                )
                target.floodfill_state.handle_store(message, now)
            else:
                queue = queues.get(target.dir_index)
                if queue is None:
                    queues[target.dir_index] = (target.store, [info])
                else:
                    queue[1].append(info)
            received.add(target_hash)
            return True, 1, 0
        if faults.crashed(target_hash, now):
            return False, 0, 0
        if faults.message_dropped(publisher.hash, target_hash, now, CHANNEL_STORE):
            target.store.stats.stores_dropped += 1
            return False, 0, 1
        delivered = 1
        drops = 0
        state = target.floodfill_state
        if queues is None:
            message = DatabaseStoreMessage(
                from_hash=publisher.hash, entry=info, reply_token=1
            )
            result = state.handle_store(message, now)
            flood_targets: Sequence[bytes] = result.flooded_to
        else:
            existing = target.store._routerinfos.get(pub_hash)
            fresh = target_hash not in received and (
                existing is None or existing.published_at < now
            )
            queue = queues.get(target.dir_index)
            if queue is None:
                queues[target.dir_index] = (target.store, [info])
            else:
                queue[1].append(info)
            flood_targets = state.flood_targets(pub_hash, now) if fresh else ()
        if info.is_floodfill:
            target.known_floodfills.add(pub_hash)
        received.add(target_hash)
        for neighbour_hash in flood_targets:
            neighbour = self.routers.get(neighbour_hash)
            if neighbour is None or neighbour.floodfill_state is None:
                continue
            if faults.crashed(neighbour_hash, now):
                continue
            if faults.message_dropped(
                target_hash, neighbour_hash, now, CHANNEL_STORE
            ):
                neighbour.store.stats.stores_dropped += 1
                drops += 1
                continue
            delivered += 1
            if queues is None:
                flood_message = DatabaseStoreMessage(
                    from_hash=target_hash, entry=info, reply_token=0
                )
                neighbour.floodfill_state.handle_store(flood_message, now)
            else:
                queue = queues.get(neighbour.dir_index)
                if queue is None:
                    queues[neighbour.dir_index] = (neighbour.store, [info])
                else:
                    queue[1].append(info)
            if info.is_floodfill:
                neighbour.known_floodfills.add(pub_hash)
            received.add(neighbour_hash)
        return True, delivered, drops

    # ------------------------------------------------------------------ #
    # Batched message plane
    # ------------------------------------------------------------------ #
    def _active_floodfills(self) -> Tuple[List[bytes], np.ndarray, Set[bytes]]:
        """(hashes, directory cols, hash set) of live floodfills, per epoch."""
        cached = self._active_ff_cache
        if cached is not None and cached[0] == self._topology_epoch:
            return cached[1], cached[2], cached[3]
        hashes = self.floodfill_hashes()
        cols = self.directory.indices_of(hashes)
        self._active_ff_cache = (self._topology_epoch, hashes, cols, set(hashes))
        return hashes, cols, self._active_ff_cache[3]

    def _col_router_map(self) -> Dict[int, SimulatedRouter]:
        """Live routers keyed by directory column, cached per epoch."""
        cached = self._col_routers
        if cached is not None and cached[0] == self._topology_epoch:
            return cached[1]
        mapping = {router.dir_index: router for router in self.routers.values()}
        self._col_routers = (self._topology_epoch, mapping)
        return mapping

    def _target_entry(
        self, t_col: int, tcache: Dict[int, tuple]
    ) -> tuple:
        """Per-round cache entry for a flood target column.

        ``(router, store-dict get, flood candidate cols, full_minus_self)``
        with ``(None, None, None, False)`` for dead or non-floodfill
        columns.  Valid for one publish round: the topology and every
        floodfill's neighbour set are frozen while publishing.
        """
        target = self._col_router_map().get(t_col)
        if target is None or target.floodfill_state is None:
            entry = (None, None, None, False)
        else:
            cols, full = self._flood_candidate_cols(
                target.floodfill_state, target.hash
            )
            entry = (target, target.store._routerinfos.get, cols, full)
        tcache[t_col] = entry
        return entry

    def _floodfill_view(self, router: SimulatedRouter) -> _FloodfillView:
        """The router's current publish-candidate view (cached).

        Invalidation keys on the known-floodfill set size and the
        topology epoch: during simulation the set only ever grows (size
        change) and liveness only changes with the topology (epoch).
        """
        size = len(router.known_floodfills)
        view = self._ff_views.get(router.hash)
        if view is not None and view.size == size and view.epoch == self._topology_epoch:
            return view
        self.plane_stats["ff_view_rebuilds"] += 1
        _, _, active_set = self._active_floodfills()
        routers = self.routers
        # Sorted so exploration sampling sees a canonical order — the
        # legacy plane sorts its freshly built candidate list the same way.
        alive = sorted(h for h in router.known_floodfills if h in routers)
        cols = self.directory.indices_of(alive)
        n_active = len(active_set.intersection(alive))
        is_full = n_active == len(active_set) and len(alive) == n_active
        view = _FloodfillView(
            size=size,
            epoch=self._topology_epoch,
            alive_hashes=alive,
            alive_cols=cols,
            is_full=is_full,
        )
        self._ff_views[router.hash] = view
        return view

    def _flood_candidate_cols(
        self, state: FloodfillRouterState, t_hash: bytes
    ) -> Tuple[np.ndarray, bool]:
        """Flood-neighbour candidates of a floodfill, as directory indices.

        Returns ``(cols, full_minus_self)`` where ``full_minus_self`` means
        the candidate set equals the network's active floodfill set minus
        the floodfill itself — the converged steady state, in which a flood
        row can be assembled from the publisher's top-(redundancy+1)
        selection over the active set instead of ranking per source.
        """
        cached = self._flood_cols.get(t_hash)
        key = (state.neighbours_version, self._topology_epoch)
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        self.plane_stats["flood_table_rebuilds"] += 1
        known = list(state.iter_known_floodfills())
        cols = self.directory.indices_of(known)
        _, _, active_set = self._active_floodfills()
        # ``known`` never contains the floodfill's own hash, so subset +
        # size |active| - 1 pins the set to exactly active - {self}.
        full_minus_self = len(known) == len(active_set) - 1 and active_set.issuperset(
            known
        )
        self._flood_cols[t_hash] = (key, cols, full_minus_self)
        return cols, full_minus_self

    def _cascade(
        self,
        info: RouterInfo,
        target_cols: Sequence[int],
        flood_row_for: Dict[int, Sequence[int]],
        col_routers: Dict[int, SimulatedRouter],
        queues: Dict[int, Tuple[NetDbStore, List[RouterInfo]]],
    ) -> int:
        """Walk one publisher's direct deliveries plus flood propagation.

        Store writes are queued (applied once per round).  Whether a
        direct delivery floods is fully encoded in ``flood_row_for``: the
        flood-row passes compute a row exactly for the valid, non-self
        targets whose stored copy is older than this publication — so key
        presence there, combined with the publisher's own first-receipt
        set, reproduces the legacy immediate-write flood decision without
        touching the stores again.
        """
        delivered = 0
        col_routers_get = col_routers.get
        queues_get = queues.get
        flood_rows_get = flood_row_for.get
        info_is_ff = info.is_floodfill
        pub_hash = info.identity._hash
        received: Set[int] = set()
        for t_col in target_cols:
            if t_col < 0:
                continue
            target = col_routers_get(t_col)
            if target is None or target.floodfill_state is None:
                continue
            delivered += 1
            queue = queues_get(t_col)
            if queue is None:
                queues[t_col] = (target.store, [info])
            else:
                queue[1].append(info)
            if info_is_ff:
                target.known_floodfills.add(pub_hash)
            if t_col in received:
                continue
            received.add(t_col)
            flood_row = flood_rows_get(t_col)
            if flood_row is None:
                continue
            for n_col in flood_row:
                if n_col < 0:
                    continue
                neighbour = col_routers_get(n_col)
                if neighbour is None or neighbour.floodfill_state is None:
                    continue
                delivered += 1
                queue = queues_get(n_col)
                if queue is None:
                    queues[n_col] = (neighbour.store, [info])
                else:
                    queue[1].append(info)
                received.add(n_col)
                if info_is_ff:
                    neighbour.known_floodfills.add(pub_hash)
        return delivered

    def _publish_all_batched(self) -> int:
        """Vectorised equivalent of :meth:`_publish_all_legacy`.

        Phases:

        1. refreshed RouterInfos are built and the set half of every
           self-learn applied (sets are order-insensitive);
        2. closest-floodfill selections are precomputed in batch —
           exactly for the frozen non-floodfill candidate views,
           optimistically for floodfill publishers (verified per turn);
        3. flood-neighbour rows for the frozen publishers are grouped per
           flood source and ranked in batch;
        4. the cascade walk runs in legacy publisher order, queueing
           every store write (self-learns included) per target store;
        5. queues are applied in one pass per store — each store's write
           sequence, and hence its dict insertion order, is byte-exact
           against the legacy plane, which exploration replies depend on.
        """
        now = self.clock.now
        routers = list(self.routers.values())

        # Replay guard.  Every quantity is monotone, so the sums pin the
        # exact component state the cache was built against; ``fresh``
        # guarantees each first write per (store, hash) pair refreshes
        # and each duplicate is rejected stale — the same accounting the
        # recorded round produced.
        sizes_sum = 0
        versions_sum = 0
        order_sum = 0
        ff_count = 0
        max_published = float("-inf")
        for router in routers:
            sizes_sum += len(router.known_floodfills)
            store = router.store
            order_sum += store.order_epoch
            if store._max_published > max_published:
                max_published = store._max_published
            if router.floodfill:
                ff_count += 1
                state = router.floodfill_state
                if state is not None:
                    versions_sum += state.neighbours_version
        fresh = now > max_published
        replay = self._replay
        if (
            replay is not None
            and fresh
            and replay.epoch == self._topology_epoch
            and replay.sizes_sum == sizes_sum
            and replay.versions_sum == versions_sum
            and replay.order_sum == order_sum
            and replay.ff_count == ff_count
            and replay.key_date == date_string_for_time(now)
        ):
            return self._publish_replay(replay, routers, now)

        infos: List[RouterInfo] = []
        for router in routers:
            info = router.routerinfo(now)
            infos.append(info)
            # The set half of the legacy self-learn happens up front (set
            # membership is order-insensitive); the store write itself is
            # queued at the publisher's turn below so every store's
            # *insertion order* — which exploration replies scan —
            # matches the legacy plane byte for byte.
            if router.floodfill:
                router.known_floodfills.add(router.identity.hash)
        ff_hashes, ff_cols, _ = self._active_floodfills()
        directory = self.directory
        hashes = directory.hashes
        queues: Dict[int, Tuple[NetDbStore, List[RouterInfo]]] = {}
        if not ff_hashes:
            for router, info in zip(routers, infos):
                queues[router.dir_index] = (router.store, [info])
            for store, queued in queues.values():
                store.store_routerinfos_batch(queued)
            return 0
        key_words = directory.key_words(now)
        pub_cols = np.array([r.dir_index for r in routers], dtype=np.int64)
        directory.note_published(pub_cols, now)

        delivered = 0
        ranked = FLOOD_REDUNDANCY + 1

        # Selection snapshot.  Non-floodfill candidate views are frozen
        # for the whole round (only floodfill targets gain set members
        # mid-round), so their selections are exact.  Floodfill
        # publishers' views can grow before their turn, so theirs are
        # optimistic: the sequential loop below verifies the set size and
        # recomputes on growth (a cold-start case; converged rounds verify
        # clean).  One extra rank (``ranked`` = redundancy + 1) is
        # requested for full-view rows so converged floodfills' flood
        # rows assemble in O(1) from the same selection — the top-k over
        # active-minus-source is the top-(k+1) over active with the
        # source dropped.
        ff_sizes: Dict[int, int] = {}
        top4_by_idx: Dict[int, List[int]] = {}
        targets_by_idx: Dict[int, Sequence[int]] = {}
        full_idx: List[int] = []
        full_dirs: List[int] = []
        part_idx: List[int] = []
        part_dirs: List[int] = []
        part_cols: List[np.ndarray] = []
        for idx, router in enumerate(routers):
            if router.floodfill:
                ff_sizes[idx] = len(router.known_floodfills)
            view = self._floodfill_view(router)
            if view.is_full or not view.alive_hashes:
                full_idx.append(idx)
                full_dirs.append(router.dir_index)
            else:
                part_idx.append(idx)
                part_dirs.append(router.dir_index)
                part_cols.append(view.alive_cols)
        if full_dirs:
            sel = select_closest_shared(
                key_words[np.array(full_dirs, dtype=np.int64)],
                key_words,
                hashes,
                ff_cols,
                ranked,
            )
            for idx, row in zip(full_idx, sel.tolist()):
                top4_by_idx[idx] = row
                targets_by_idx[idx] = row[:FLOOD_REDUNDANCY]
        if part_idx:
            lens = np.fromiter(
                (len(c) for c in part_cols), dtype=np.int64, count=len(part_cols)
            )
            splits = np.zeros(len(part_cols) + 1, dtype=np.int64)
            np.cumsum(lens, out=splits[1:])
            concat = np.concatenate(part_cols) if part_cols else np.empty(0, np.int64)
            sel = select_closest_segmented(
                key_words[np.asarray(part_dirs)], key_words, hashes,
                concat, splits, FLOOD_REDUNDANCY,
            )
            for idx, row in zip(part_idx, sel.tolist()):
                targets_by_idx[idx] = row

        # Flood rows for the frozen (non-floodfill) publishers, grouped
        # per flood source; floodfill publishers get theirs at their turn.
        tcache: Dict[int, tuple] = {}
        col_routers = self._col_router_map()
        flood_rows_by_idx = self._flood_rows_grouped(
            routers,
            {i: t for i, t in targets_by_idx.items() if not routers[i].floodfill},
            top4_by_idx,
            ff_cols,
            key_words,
            hashes,
            tcache,
            now,
        )

        # Cascade walk in legacy publisher order, store writes queued.
        empty_rows: Dict[int, Sequence[int]] = {}
        queues_get = queues.get
        cascade = self._cascade
        flood_rows_by_idx_get = flood_rows_by_idx.get
        for idx, (router, info) in enumerate(zip(routers, infos)):
            col = router.dir_index
            queue = queues_get(col)
            if queue is None:
                queues[col] = (router.store, [info])
            else:
                queue[1].append(info)
            if router.floodfill:
                row4 = top4_by_idx.get(idx)
                targets = targets_by_idx.get(idx)
                if len(router.known_floodfills) != ff_sizes[idx]:
                    view = self._floodfill_view(router)
                    pub_row = key_words[col : col + 1]
                    if view.is_full or not view.alive_hashes:
                        row4 = select_closest_shared(
                            pub_row, key_words, hashes, ff_cols, ranked
                        )[0].tolist()
                        targets = row4[:FLOOD_REDUNDANCY]
                    else:
                        row4 = None
                        targets = select_closest_shared(
                            pub_row, key_words, hashes, view.alive_cols,
                            FLOOD_REDUNDANCY,
                        )[0].tolist()
                flood_rows = self._flood_rows_for_publisher(
                    router.identity._hash, col, targets, row4, key_words,
                    hashes, tcache, now,
                )
                delivered += cascade(info, targets, flood_rows, col_routers, queues)
            else:
                delivered += cascade(
                    info, targets_by_idx[idx],
                    flood_rows_by_idx_get(idx, empty_rows), col_routers, queues,
                )

        # Apply the coalesced per-store delivery queues (writes are in
        # exact legacy order within each store).
        for store, queued in queues.values():
            store.store_routerinfos_batch(queued)

        # Record the round's write structure for the replay fast path.
        # Only a *fresh* round with zero candidate-set growth is a valid
        # template: growth mid-round means selections shifted while
        # publishing, and a stale round skipped writes a fresh one makes.
        if fresh and sum(len(r.known_floodfills) for r in routers) == sizes_sum:
            index = directory.index
            entries = []
            for store, queued in queues.values():
                seen: Set[bytes] = set()
                uniq: List[Tuple[bytes, int]] = []
                for info in queued:
                    pub_hash = info.identity._hash
                    if pub_hash not in seen:
                        seen.add(pub_hash)
                        uniq.append((pub_hash, index[pub_hash]))
                entries.append((store, uniq, len(queued), len(uniq)))
            replay = _ReplayCache()
            replay.epoch = self._topology_epoch
            replay.key_date = date_string_for_time(now)
            replay.sizes_sum = sizes_sum
            replay.versions_sum = versions_sum
            replay.order_sum = order_sum
            replay.ff_count = ff_count
            replay.delivered = delivered
            replay.pub_cols = pub_cols
            replay.entries = entries
            self._replay = replay

        self.messages_delivered += delivered
        return delivered

    def _publish_replay(
        self, replay: _ReplayCache, routers: List[SimulatedRouter], now: float
    ) -> int:
        """Re-apply a recorded publish round with re-stamped RouterInfos.

        Byte-exact against the slow path under the caller's guards: every
        cached (store, hash) pair exists (writes created it in the build
        round; removals would have bumped ``order_epoch``), the round is
        strictly fresher than anything stored, and every
        ``known_floodfills`` add the recorded round performed was already
        a no-op then — so per store the unique writes refresh, the
        duplicates reject stale, and nothing else moves.
        """
        info_by_col: Dict[int, RouterInfo] = {}
        for router in routers:
            info_by_col[router.dir_index] = router.routerinfo(now)
        self.directory.note_published(replay.pub_cols, now)
        for store, uniq, n_writes, n_uniq in replay.entries:
            routerinfos = store._routerinfos
            for pub_hash, col in uniq:
                routerinfos[pub_hash] = info_by_col[col]
            stats = store.stats
            stats.stores_refreshed += n_uniq
            stats.stores_rejected_stale += n_writes - n_uniq
            store._max_published = now
        self.plane_stats["replay_rounds"] += 1
        self.messages_delivered += replay.delivered
        return replay.delivered

    def _flood_rows_for_publisher(
        self,
        pub_hash: bytes,
        pub_dir: int,
        target_cols: Sequence[int],
        row4: Optional[List[int]],
        key_words: np.ndarray,
        hashes: List[bytes],
        tcache: Dict[int, tuple],
        now: float,
    ) -> Dict[int, Sequence[int]]:
        """Flood-neighbour rows for one publisher's potential flood sources.

        ``row4`` is the publisher's top-(redundancy+1) selection over the
        active floodfill set when available; converged flood sources
        (candidates == active minus self) assemble their row from it
        without another ranking pass.
        """
        rows: Dict[int, Sequence[int]] = {}
        pub_row = None
        tcache_get = tcache.get
        for t_col in target_cols:
            if t_col < 0 or t_col == pub_dir:
                continue  # self-stores are always stale; never flood
            t_col = int(t_col)
            entry = tcache_get(t_col)
            if entry is None:
                entry = self._target_entry(t_col, tcache)
            store_get = entry[1]
            if store_get is None:
                continue
            existing = store_get(pub_hash)
            if existing is not None and existing.published_at >= now:
                continue  # delivery cannot flood; no table needed
            if entry[3] and row4 is not None:
                rows[t_col] = [
                    c for c in row4 if c != t_col and c >= 0
                ][:FLOOD_REDUNDANCY]
            else:
                if pub_row is None:
                    pub_row = key_words[pub_dir : pub_dir + 1]
                rows[t_col] = select_closest_shared(
                    pub_row, key_words, hashes, entry[2], FLOOD_REDUNDANCY
                )[0].tolist()
        return rows

    def _flood_rows_grouped(
        self,
        publishers: List[SimulatedRouter],
        targets_by_pos: Dict[int, Sequence[int]],
        top4_by_pos: Dict[int, List[int]],
        ff_cols: np.ndarray,
        key_words: np.ndarray,
        hashes: List[bytes],
        tcache: Dict[int, tuple],
        now: float,
    ) -> Dict[int, Dict[int, Sequence[int]]]:
        """Flood-neighbour rows for every (publisher, flood source) pair.

        Converged flood sources assemble rows from the publishers'
        top-(redundancy+1) selections (computed lazily, in one batch, for
        publishers that only have a partial-view selection so far); the
        remaining needs are grouped per flood source so each candidate set
        is ranked against all of its prospective publishers at once.
        """
        result: Dict[int, Dict[int, Sequence[int]]] = {}
        needs: Dict[int, List[int]] = {}  # t_col -> positions
        pending: List[Tuple[int, int]] = []  # (pos, t_col) awaiting a top4 row
        tcache_get = tcache.get
        flood_redundancy = FLOOD_REDUNDANCY
        for pos, target_cols in targets_by_pos.items():
            pub_hash = publishers[pos].identity._hash
            row4 = top4_by_pos.get(pos)
            for t_col in target_cols:
                if t_col < 0:
                    continue
                entry = tcache_get(t_col)
                if entry is None:
                    entry = self._target_entry(t_col, tcache)
                store_get = entry[1]
                if store_get is None:
                    continue
                existing = store_get(pub_hash)
                if existing is not None and existing.published_at >= now:
                    continue
                if entry[3]:
                    if row4 is None:
                        pending.append((pos, t_col))
                    else:
                        result.setdefault(pos, {})[t_col] = [
                            c for c in row4 if c != t_col and c >= 0
                        ][:flood_redundancy]
                else:
                    needs.setdefault(t_col, []).append(pos)
        if pending:
            lazy_positions = sorted({pos for pos, _ in pending})
            dirs = np.array(
                [publishers[pos].dir_index for pos in lazy_positions],
                dtype=np.int64,
            )
            sel = select_closest_shared(
                key_words[dirs], key_words, hashes, ff_cols, FLOOD_REDUNDANCY + 1
            )
            for pos, row in zip(lazy_positions, sel.tolist()):
                top4_by_pos[pos] = row
            for pos, t_col in pending:
                row4 = top4_by_pos[pos]
                result.setdefault(pos, {})[t_col] = [
                    c for c in row4 if c != t_col and c >= 0
                ][:flood_redundancy]
        for t_col, positions in needs.items():
            cols = tcache[t_col][2]
            pub_dirs = np.fromiter(
                (publishers[pos].dir_index for pos in positions),
                dtype=np.int64,
                count=len(positions),
            )
            sel = select_closest_shared(
                key_words[pub_dirs], key_words, hashes, cols, FLOOD_REDUNDANCY
            )
            for pos, row in zip(positions, sel.tolist()):
                result.setdefault(pos, {})[t_col] = row
        return result

    def _deliver_store(
        self, target_hash: bytes, from_hash: bytes, info: RouterInfo
    ) -> int:
        """Deliver a DSM to a floodfill, following flood propagation."""
        target = self.routers.get(target_hash)
        if target is None or target.floodfill_state is None:
            return 0
        message = DatabaseStoreMessage(from_hash=from_hash, entry=info, reply_token=1)
        result = target.floodfill_state.handle_store(message, self.clock.now)
        delivered = 1
        if info.is_floodfill:
            target.known_floodfills.add(info.hash)
        for flood_target in result.flooded_to:
            neighbour = self.routers.get(flood_target)
            if neighbour is None or neighbour.floodfill_state is None:
                continue
            flood_message = DatabaseStoreMessage(
                from_hash=target_hash, entry=info, reply_token=0
            )
            neighbour.floodfill_state.handle_store(flood_message, self.clock.now)
            if info.is_floodfill:
                neighbour.known_floodfills.add(info.hash)
            delivered += 1
        return delivered

    def explore(self, router_hash: bytes, lookups: int = 3) -> int:
        """A router sends exploration DLMs to floodfills to learn new peers.

        Returns the number of new RouterInfos learned.  Dispatches to the
        batched message plane unless the network was built with
        ``batched=False``.
        """
        if self.batched:
            return self._explore_batched(router_hash, lookups)
        return self._explore_legacy(router_hash, lookups)

    def _explore_legacy(self, router_hash: bytes, lookups: int = 3) -> int:
        """Reference per-message exploration loop (the equivalence oracle)."""
        faults = self.faults
        if faults is not None and faults.crashed(router_hash, self.clock.now):
            return 0  # a crashed floodfill does not explore
        router = self.routers[router_hash]
        # Sampling from a sorted candidate list keeps the draw independent
        # of set iteration order (which varies with insertion history and
        # PYTHONHASHSEED) — both message planes sample identically.
        floodfills = sorted(h for h in router.known_floodfills if h in self.routers)
        if not floodfills:
            floodfills = self.floodfill_hashes()
        if not floodfills:
            return 0
        learned = 0
        targets = self.rng.sample(floodfills, min(lookups, len(floodfills)))
        for target_hash in targets:
            target = self.routers[target_hash]
            if target.floodfill_state is None:
                continue
            if faults is not None and (
                faults.crashed(target_hash, self.clock.now)
                or faults.message_dropped(
                    router_hash, target_hash, self.clock.now, CHANNEL_EXPLORE
                )
            ):
                continue  # request lost or target down: no reply
            # Take the first 200 known hashes straight off the store instead
            # of copying the whole netDb into a fresh set per lookup.
            message = DatabaseLookupMessage(
                from_hash=router_hash,
                key=router_hash,
                lookup_type=LookupType.EXPLORATION,
                exclude_hashes=tuple(islice(router.store.iter_router_hashes(), 200)),
                max_results=16,
            )
            response = target.floodfill_state.handle_lookup(message, self.clock.now)
            self.messages_delivered += 1
            if isinstance(response, list):
                for info in response:
                    if router.learn(info):
                        learned += 1
        return learned

    def _explore_exclude_set(self, router: SimulatedRouter) -> Set[bytes]:
        """The exclude set an exploration lookup by ``router`` carries.

        Equals ``{first 200 stored hashes} ∪ {router.hash}``, rebuilt only
        when the store's leading key prefix can actually have changed:
        entries were removed (``order_epoch``), or the store was still
        below 200 entries and its length moved.  Appends beyond the first
        200 leave the prefix intact.
        """
        store = router.store
        cached = self._explore_excludes.get(router.hash)
        length = len(store)
        if cached is not None:
            built_epoch, built_len, excludes = cached
            if built_epoch == store.order_epoch:
                if built_len == length or built_len >= 200:
                    return excludes
                # Append-only growth below the 200-prefix: the new hashes
                # sit at positions built_len.. in insertion order, so the
                # cached set is extended in place instead of rebuilt.
                excludes.update(islice(store.iter_router_hashes(), built_len, 200))
                self._explore_excludes[router.hash] = (built_epoch, length, excludes)
                return excludes
        self.plane_stats["explore_exclude_rebuilds"] += 1
        excludes = set(islice(store.iter_router_hashes(), 200))
        excludes.add(router.hash)
        self._explore_excludes[router.hash] = (store.order_epoch, length, excludes)
        return excludes

    def _explore_batched(self, router_hash: bytes, lookups: int = 3) -> int:
        """Exploration without per-lookup message objects or netDb copies.

        Target sampling consumes ``self.rng`` exactly like the legacy
        loop (same sorted candidate list, via the cached floodfill view),
        and replies come straight from
        :meth:`FloodfillRouterState.exploration_infos`, which matches the
        DLM handler's reply list element for element.
        """
        faults = self.faults
        if faults is not None and faults.crashed(router_hash, self.clock.now):
            return 0  # a crashed floodfill does not explore
        router = self.routers[router_hash]
        view = self._floodfill_view(router)
        floodfills = view.alive_hashes
        if not floodfills:
            floodfills, _, _ = self._active_floodfills()
        if not floodfills:
            return 0
        learned = 0
        sent = 0
        targets = self.rng.sample(floodfills, min(lookups, len(floodfills)))
        # Locals for the reply-processing fast path: a stale RouterInfo the
        # router (and, for floodfills, its netDb-serving state) already
        # tracks reduces to a single rejected-stale counter bump — the
        # dominant case once the network has converged.
        routerinfos = router.store._routerinfos
        stats = router.store.stats
        known_ffs = router.known_floodfills
        own_state = router.floodfill_state
        state_known = own_state._known_floodfills if own_state is not None else None
        for target_hash in targets:
            target = self.routers[target_hash]
            if target.floodfill_state is None:
                continue
            if faults is not None and (
                faults.crashed(target_hash, self.clock.now)
                or faults.message_dropped(
                    router_hash, target_hash, self.clock.now, CHANNEL_EXPLORE
                )
            ):
                continue  # request lost or target down: no reply
            excludes = self._explore_exclude_set(router)
            response = target.floodfill_state.exploration_infos(excludes, 16)
            sent += 1
            for info in response:
                info_hash = info.identity._hash
                existing = routerinfos.get(info_hash)
                if existing is not None and info.published_at <= existing.published_at:
                    if not info.capacity.floodfill or (
                        info_hash in known_ffs
                        and (
                            state_known is None
                            or info_hash in state_known
                            or info_hash == router_hash
                        )
                    ):
                        stats.stores_rejected_stale += 1
                        continue
                if router.learn(info):
                    learned += 1
        self.messages_delivered += sent
        return learned

    def lookup_routerinfo(
        self, requester_hash: bytes, key: bytes, max_iterations: int = 8
    ) -> Optional[RouterInfo]:
        """Iterative RouterInfo lookup through floodfill routers."""
        if self.faults is not None:
            return self._lookup_routerinfo_faulty(requester_hash, key, max_iterations)
        requester = self.routers[requester_hash]
        local = requester.store.get_routerinfo(key)
        if local is not None:
            return local
        queried: Set[bytes] = set()
        candidates = [h for h in requester.known_floodfills if h in self.routers]
        if not candidates:
            candidates = self.floodfill_hashes()
        for _ in range(max_iterations):
            remaining = [h for h in candidates if h not in queried]
            if not remaining:
                return None
            target_key = routing_key(key, self.clock.now)
            ordered = select_closest(target_key, remaining, 1, self.clock.now)
            if not ordered:
                return None
            target_hash = ordered[0]
            queried.add(target_hash)
            target = self.routers.get(target_hash)
            if target is None or target.floodfill_state is None:
                continue
            message = DatabaseLookupMessage(
                from_hash=requester_hash,
                key=key,
                lookup_type=LookupType.ROUTERINFO,
                exclude_hashes=tuple(queried),
            )
            response = target.floodfill_state.handle_lookup(message, self.clock.now)
            self.messages_delivered += 1
            if isinstance(response, DatabaseStoreMessage):
                info = response.entry
                assert isinstance(info, RouterInfo)
                requester.learn(info)
                return info
            if hasattr(response, "closer_hashes"):
                candidates.extend(
                    h for h in response.closer_hashes if h in self.routers
                )
        return None

    def _lookup_routerinfo_faulty(
        self, requester_hash: bytes, key: bytes, max_iterations: int
    ) -> Optional[RouterInfo]:
        """RouterInfo lookup with timeouts, retries, and latency metrics.

        A query to a crashed floodfill, or one whose request/reply is
        dropped, *times out*: the iteration is consumed, the target stays
        excluded, and ``lookup_timeout_seconds`` of latency accrues.
        When a walk exhausts its iterations, the requester falls back to
        exploration (learning fresh floodfills) and retries the walk, up
        to ``lookup_retry_budget`` times with exponential backoff.  Every
        lookup records one outcome in the degradation metrics.
        """
        faults = self.faults
        assert faults is not None
        plan = faults.plan
        metrics = self.fault_metrics
        now = self.clock.now
        requester = self.routers[requester_hash]
        local = requester.store.get_routerinfo(key)
        if local is not None:
            metrics.note_lookup(True, 0, 0.0)
            return local
        queried: Set[bytes] = set()
        latency = 0.0
        rounds_used = 0
        for attempt in range(1 + plan.lookup_retry_budget):
            if attempt:
                latency += plan.backoff_base_seconds * (2.0 ** (attempt - 1))
                self.explore(requester_hash, lookups=3)
                hit = requester.store.get_routerinfo(key)
                if hit is not None:
                    metrics.note_lookup(True, rounds_used, latency)
                    return hit
            candidates = [h for h in requester.known_floodfills if h in self.routers]
            if not candidates:
                candidates = self.floodfill_hashes()
            for _ in range(max_iterations):
                remaining = [h for h in candidates if h not in queried]
                if not remaining:
                    break
                target_key = routing_key(key, now)
                ordered = select_closest(target_key, remaining, 1, now)
                if not ordered:
                    break
                target_hash = ordered[0]
                queried.add(target_hash)
                target = self.routers.get(target_hash)
                if target is None or target.floodfill_state is None:
                    continue
                rounds_used += 1
                if faults.crashed(target_hash, now) or faults.message_dropped(
                    requester_hash, target_hash, now, CHANNEL_LOOKUP
                ):
                    latency += plan.lookup_timeout_seconds
                    metrics.note_lookup_timeout()
                    continue
                latency += plan.hop_seconds
                message = DatabaseLookupMessage(
                    from_hash=requester_hash,
                    key=key,
                    lookup_type=LookupType.ROUTERINFO,
                    exclude_hashes=tuple(queried),
                )
                response = target.floodfill_state.handle_lookup(message, now)
                self.messages_delivered += 1
                if isinstance(response, DatabaseStoreMessage):
                    info = response.entry
                    assert isinstance(info, RouterInfo)
                    requester.learn(info)
                    metrics.note_lookup(True, rounds_used, latency)
                    return info
                if hasattr(response, "closer_hashes"):
                    candidates.extend(
                        h for h in response.closer_hashes if h in self.routers
                    )
        metrics.note_lookup(False, rounds_used, latency)
        return None

    # ------------------------------------------------------------------ #
    # Hidden services (eepsites): LeaseSet publication and lookup
    # ------------------------------------------------------------------ #
    def host_eepsite(
        self, host_hash: bytes, name: str = "", gateways: int = 2
    ) -> Destination:
        """Host a hidden service on a router and publish its LeaseSet.

        Inbound-tunnel gateways are selected from the host's netDb with the
        usual capacity-weighted selection; the resulting LeaseSet is stored
        at the floodfills closest to the destination's routing key, exactly
        like RouterInfo publication (Section 2.1.2).
        """
        host = self.routers[host_hash]
        destination = Destination(
            identity=RouterIdentity.generate(self.rng), name=name
        )
        host.hosted_destinations[destination.hash] = destination
        self.publish_leaseset(host_hash, destination, gateways=gateways)
        return destination

    def publish_leaseset(
        self, host_hash: bytes, destination: Destination, gateways: int = 2
    ) -> Optional[LeaseSet]:
        """(Re)build the destination's inbound tunnels and publish its LeaseSet."""
        host = self.routers[host_hash]
        candidates = [
            info
            for info in host.store.routerinfos()
            if info.hash != host_hash and info.hash in self.routers
        ]
        selected = self.tunnel_builder._selector.select_hops(candidates, gateways)
        if not selected:
            # Fall back to the host itself acting as its own gateway.
            gateway_hashes = [host_hash]
        else:
            gateway_hashes = [info.hash for info in selected]
        leases = tuple(
            Lease(
                gateway_hash=gateway_hash,
                tunnel_id=self.rng.randint(1, 2**31 - 1),
                expires_at=self.clock.now + LEASE_DURATION,
            )
            for gateway_hash in gateway_hashes
        )
        leaseset = LeaseSet(
            destination=destination, leases=leases, published_at=self.clock.now
        )
        host.store.store_leaseset(leaseset)

        floodfills = [h for h in host.known_floodfills if h in self.routers]
        if not floodfills:
            floodfills = self.floodfill_hashes()
        if floodfills:
            target_key = routing_key(destination.hash, self.clock.now)
            targets = select_closest(
                target_key, floodfills, FLOOD_REDUNDANCY, self.clock.now
            )
            for target_hash in targets:
                target = self.routers.get(target_hash)
                if target is None or target.floodfill_state is None:
                    continue
                message = DatabaseStoreMessage(
                    from_hash=host_hash, entry=leaseset, reply_token=1
                )
                target.floodfill_state.handle_store(message, self.clock.now)
                self.messages_delivered += 1
        return leaseset

    def lookup_leaseset(
        self, requester_hash: bytes, destination_hash: bytes, max_iterations: int = 8
    ) -> Optional[LeaseSet]:
        """Iterative LeaseSet lookup through the floodfill DHT."""
        requester = self.routers[requester_hash]
        local = requester.store.get_leaseset(destination_hash)
        if local is not None and not local.is_expired(self.clock.now):
            return local
        queried: Set[bytes] = set()
        candidates = [h for h in requester.known_floodfills if h in self.routers]
        if not candidates:
            candidates = self.floodfill_hashes()
        for _ in range(max_iterations):
            remaining = [h for h in candidates if h not in queried]
            if not remaining:
                return None
            target_key = routing_key(destination_hash, self.clock.now)
            ordered = select_closest(target_key, remaining, 1, self.clock.now)
            if not ordered:
                return None
            target_hash = ordered[0]
            queried.add(target_hash)
            target = self.routers.get(target_hash)
            if target is None or target.floodfill_state is None:
                continue
            message = DatabaseLookupMessage(
                from_hash=requester_hash,
                key=destination_hash,
                lookup_type=LookupType.LEASESET,
                exclude_hashes=tuple(queried),
            )
            response = target.floodfill_state.handle_lookup(message, self.clock.now)
            self.messages_delivered += 1
            if isinstance(response, DatabaseStoreMessage) and response.is_leaseset:
                leaseset = response.entry
                assert isinstance(leaseset, LeaseSet)
                requester.store.store_leaseset(leaseset)
                return leaseset
            if hasattr(response, "closer_hashes"):
                candidates.extend(
                    h for h in response.closer_hashes if h in self.routers
                )
        return None

    def fetch_eepsite(
        self,
        requester_hash: bytes,
        destination_hash: bytes,
        blocked_ips: Optional[Set[str]] = None,
    ) -> Tuple[bool, float]:
        """Fetch a page from a hidden service at the message level.

        Returns ``(succeeded, elapsed_seconds)``.  The fetch needs a
        LeaseSet lookup, an outbound tunnel for the requester, and a
        reachable inbound gateway from the LeaseSet; a censor blocklist can
        be supplied to emulate the null-routing of Section 6.2.3.
        """
        blocked_ips = blocked_ips or set()
        requester = self.routers[requester_hash]
        elapsed = 0.0

        leaseset = self.lookup_leaseset(requester_hash, destination_hash)
        elapsed += 0.5
        if leaseset is None:
            return False, elapsed

        candidates = [
            info
            for info in requester.store.routerinfos()
            if info.hash != requester_hash and info.hash in self.routers
        ]
        result = self.tunnel_builder.build(
            candidates,
            TunnelDirection.OUTBOUND,
            self.clock.now,
            blocked_ips=blocked_ips,
        )
        elapsed += result.elapsed_seconds
        if not result.succeeded:
            return False, elapsed

        for gateway_hash in leaseset.gateway_hashes(self.clock.now):
            gateway = self.routers.get(gateway_hash)
            if gateway is None:
                continue
            if gateway.ip in blocked_ips and gateway_hash != requester_hash:
                elapsed += 2.0
                continue
            elapsed += 1.0
            return True, elapsed
        return False, elapsed

    # ------------------------------------------------------------------ #
    # Tunnels (the third discovery mechanism)
    # ------------------------------------------------------------------ #
    def build_client_tunnels(
        self, router_hash: bytes, pairs: int = 2, length: int = 2
    ) -> int:
        """Build ``pairs`` inbound/outbound tunnel pairs for a router.

        Hop routers learn the RouterInfos of the routers adjacent to them
        in each built tunnel, modelling the "learns about other adjacent
        routers in tunnels that it participates in" mechanism.
        """
        router = self.routers[router_hash]
        candidates = [
            info
            for info in router.store.routerinfos()
            if info.hash != router_hash and info.hash in self.routers
        ]
        built = 0
        for _ in range(pairs):
            for direction in (TunnelDirection.OUTBOUND, TunnelDirection.INBOUND):
                result = self.tunnel_builder.build(
                    candidates, direction, self.clock.now, length=length
                )
                if not result.succeeded or result.tunnel is None:
                    continue
                built += 1
                self._propagate_tunnel_knowledge(router, result.tunnel.hops)
        return built

    def _propagate_tunnel_knowledge(
        self, originator: SimulatedRouter, hops: Tuple[bytes, ...]
    ) -> None:
        chain: List[SimulatedRouter] = [originator]
        for hop_hash in hops:
            hop = self.routers.get(hop_hash)
            if hop is None:
                continue
            hop.participating_tunnels += 1
            chain.append(hop)
        for position, node in enumerate(chain):
            for neighbour_index in (position - 1, position + 1):
                if 0 <= neighbour_index < len(chain):
                    neighbour = chain[neighbour_index]
                    if neighbour.hash != node.hash:
                        node.learn(neighbour.routerinfo(self.clock.now))

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    def step_hours(self, hours: float = 1.0) -> None:
        """Advance the clock and apply store expiry on every router."""
        self.clock.advance_hours(hours)
        for router in self.routers.values():
            router.store.expire(self.clock.now)

    def run_convergence_rounds(self, rounds: int = 3) -> None:
        """Run publish + exploration rounds so netDbs converge.

        A convenience used by integration tests and examples to reach a
        steady state quickly on small networks.
        """
        for _ in range(rounds):
            self.publish_all()
            for router_hash in list(self.routers.keys()):
                self.explore(router_hash, lookups=2)
            self.step_hours(0.25)
