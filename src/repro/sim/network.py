"""Message-level I2P network engine for small networks.

This engine wires together the full substrate — identities, RouterInfos,
netDb stores, floodfill flooding, reseed bootstrap, DLM exploration, and
tunnel building — at the level of individual protocol interactions.  It is
intentionally sized for networks of tens to a few thousand routers: unit
and integration tests use it to validate that the four peer-discovery
mechanisms enumerated in Section 4.2 of the paper actually produce the
netDb contents the statistical model (:mod:`repro.sim.observation`)
summarises at paper scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..netdb.floodfill import FLOOD_REDUNDANCY, FloodfillRouterState
from ..netdb.identity import RouterIdentity
from ..netdb.leaseset import LEASE_DURATION, Destination, Lease, LeaseSet
from ..netdb.messages import (
    DatabaseLookupMessage,
    DatabaseStoreMessage,
    LookupType,
)
from ..netdb.routerinfo import (
    BandwidthTier,
    CapacityFlags,
    RouterAddress,
    RouterInfo,
    TransportStyle,
)
from ..netdb.routing_key import routing_key, select_closest
from ..netdb.store import NetDbStore
from ..transport.ports import PortRegistry
from .clock import SECONDS_PER_HOUR, SimulationClock
from .reseed import DEFAULT_RESEED_SERVERS, ReseedServer, bootstrap
from .tunnels import TunnelBuilder, TunnelDirection

__all__ = ["SimulatedRouter", "I2PNetwork"]

#: Reseed-server RouterInfos older than this are refreshed (full re-sync)
#: before serving a new bootstrap, so late joiners never receive infos
#: that would expire on the next store-expiry pass.  Keyed to half the
#: *floodfill* RouterInfo expiry (1h) — the tightest store expiry a
#: joining router can have.
RESEED_REFRESH_SECONDS = 0.5 * SECONDS_PER_HOUR


@dataclass
class SimulatedRouter:
    """A fully simulated router participating in the message-level network."""

    identity: RouterIdentity
    ip: str
    port: int
    bandwidth_tier: BandwidthTier
    floodfill: bool
    hidden: bool = False
    store: NetDbStore = field(default_factory=NetDbStore)
    floodfill_state: Optional[FloodfillRouterState] = None
    known_floodfills: Set[bytes] = field(default_factory=set)
    participating_tunnels: int = 0
    #: Hidden services hosted by this router: destination hash -> Destination.
    hosted_destinations: Dict[bytes, Destination] = field(default_factory=dict)

    @property
    def hash(self) -> bytes:
        return self.identity.hash

    def routerinfo(self, published_at: float) -> RouterInfo:
        """The RouterInfo this router publishes right now."""
        capacity = CapacityFlags(
            tiers=(self.bandwidth_tier,),
            floodfill=self.floodfill,
            reachable=not self.hidden,
            unreachable=self.hidden,
        )
        addresses: Tuple[RouterAddress, ...]
        if self.hidden:
            addresses = ()
        else:
            addresses = (
                RouterAddress(
                    style=TransportStyle.NTCP, host=self.ip, port=self.port
                ),
            )
        return RouterInfo(
            identity=self.identity,
            addresses=addresses,
            capacity=capacity,
            published_at=published_at,
        )

    def learn(self, info: RouterInfo) -> bool:
        """Store a RouterInfo and track floodfills separately."""
        changed = self.store.store_routerinfo(info)
        if info.is_floodfill:
            self.known_floodfills.add(info.hash)
            if self.floodfill_state is not None:
                self.floodfill_state.learn_floodfill(info.hash)
        return changed

    def known_peer_hashes(self) -> Set[bytes]:
        return set(self.store.router_hashes())


class I2PNetwork:
    """A small message-level I2P network."""

    def __init__(self, seed: int = 0, reseed_server_count: int = 3) -> None:
        self.clock = SimulationClock()
        self.rng = random.Random(seed)
        self.routers: Dict[bytes, SimulatedRouter] = {}
        self.ports = PortRegistry()
        self.tunnel_builder = TunnelBuilder(rng=random.Random(seed + 1))
        self.reseed_servers: List[ReseedServer] = [
            ReseedServer(hostname=name)
            for name in DEFAULT_RESEED_SERVERS[:reseed_server_count]
        ]
        self._host_counter = 0
        self._last_reseed_sync = 0.0
        self.messages_delivered = 0

    # ------------------------------------------------------------------ #
    # Topology management
    # ------------------------------------------------------------------ #
    def _allocate_ip(self) -> str:
        self._host_counter += 1
        index = self._host_counter
        return f"10.{(index // 65536) % 256}.{(index // 256) % 256}.{index % 256}"

    def add_router(
        self,
        floodfill: bool = False,
        bandwidth_tier: BandwidthTier = BandwidthTier.L,
        hidden: bool = False,
        do_bootstrap: bool = True,
    ) -> SimulatedRouter:
        """Create a router, optionally bootstrapping it from reseed servers."""
        router = self._create_router(
            floodfill=floodfill,
            bandwidth_tier=bandwidth_tier,
            hidden=hidden,
            do_bootstrap=do_bootstrap,
        )
        # Reseed servers learn about new public routers over time —
        # incrementally: only the new router's RouterInfo is pushed, instead
        # of rebuilding every public RouterInfo on every add (O(n²)).
        if not hidden:
            self._push_to_reseed_servers(router)
        return router

    def batch_add_routers(
        self,
        count: int,
        floodfill: bool = False,
        bandwidth_tier: BandwidthTier = BandwidthTier.L,
        hidden: bool = False,
        do_bootstrap: bool = True,
    ) -> List[SimulatedRouter]:
        """Create ``count`` routers with one reseed sync pass at the end.

        The batch members bootstrap against the pre-batch network — their
        reseed samples do not include each other, so seed the network's
        floodfills (and anything else the batch must discover immediately)
        *before* batching, and run convergence rounds afterwards.  Use
        this for tests/examples that stand up networks of hundreds of
        routers.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        routers = [
            self._create_router(
                floodfill=floodfill,
                bandwidth_tier=bandwidth_tier,
                hidden=hidden,
                do_bootstrap=do_bootstrap,
            )
            for _ in range(count)
        ]
        for router in routers:
            if not router.hidden:
                self._push_to_reseed_servers(router)
        return routers

    def _create_router(
        self,
        floodfill: bool,
        bandwidth_tier: BandwidthTier,
        hidden: bool,
        do_bootstrap: bool,
    ) -> SimulatedRouter:
        identity = RouterIdentity.generate(self.rng)
        ip = self._allocate_ip()
        port = self.ports.bind(ip, identity.hash, rng=self.rng)
        router = SimulatedRouter(
            identity=identity,
            ip=ip,
            port=port,
            bandwidth_tier=bandwidth_tier,
            floodfill=floodfill,
            hidden=hidden,
            store=NetDbStore(floodfill=floodfill),
        )
        if floodfill:
            router.floodfill_state = FloodfillRouterState(
                router_hash=identity.hash, store=router.store
            )
        self.routers[identity.hash] = router

        if do_bootstrap:
            # Incremental pushes freeze each info's published_at at add
            # time; refresh the whole reseed view when it has gone stale so
            # bootstrapped infos survive the next expiry pass.
            if self.clock.now - self._last_reseed_sync > RESEED_REFRESH_SECONDS:
                self._sync_reseed_servers()
            result = bootstrap(ip, self.reseed_servers, rng=self.rng)
            for info in result.routerinfos:
                router.learn(info)
        return router

    def remove_router(self, router_hash: bytes) -> bool:
        router = self.routers.pop(router_hash, None)
        if router is None:
            return False
        self.ports.release(router.ip, router.port)
        for server in self.reseed_servers:
            server.remove_known(router_hash)
        return True

    def _push_to_reseed_servers(self, router: SimulatedRouter) -> None:
        info = router.routerinfo(self.clock.now)
        for server in self.reseed_servers:
            server.add_known(info)

    def _sync_reseed_servers(self) -> None:
        """Full rebuild of every reseed server's view (rarely needed; adds
        use the incremental :meth:`_push_to_reseed_servers` path)."""
        public_infos = [
            router.routerinfo(self.clock.now)
            for router in self.routers.values()
            if not router.hidden
        ]
        for server in self.reseed_servers:
            server.update_known(public_infos)
        self._last_reseed_sync = self.clock.now

    # ------------------------------------------------------------------ #
    # netDb interactions
    # ------------------------------------------------------------------ #
    def floodfill_hashes(self) -> List[bytes]:
        return [h for h, r in self.routers.items() if r.floodfill]

    def publish_all(self) -> int:
        """Every router publishes its RouterInfo to its closest floodfills.

        Returns the number of DatabaseStoreMessages delivered (including
        flood propagation).
        """
        delivered = 0
        floodfills = self.floodfill_hashes()
        for router in list(self.routers.values()):
            info = router.routerinfo(self.clock.now)
            router.learn(info)
            if not floodfills:
                continue
            known_ffs = [h for h in router.known_floodfills if h in self.routers]
            candidates = known_ffs if known_ffs else floodfills
            target_key = routing_key(info.hash, self.clock.now)
            targets = select_closest(
                target_key, candidates, FLOOD_REDUNDANCY, self.clock.now
            )
            for target_hash in targets:
                delivered += self._deliver_store(target_hash, router.hash, info)
        self.messages_delivered += delivered
        return delivered

    def _deliver_store(
        self, target_hash: bytes, from_hash: bytes, info: RouterInfo
    ) -> int:
        """Deliver a DSM to a floodfill, following flood propagation."""
        target = self.routers.get(target_hash)
        if target is None or target.floodfill_state is None:
            return 0
        message = DatabaseStoreMessage(from_hash=from_hash, entry=info, reply_token=1)
        result = target.floodfill_state.handle_store(message, self.clock.now)
        delivered = 1
        if info.is_floodfill:
            target.known_floodfills.add(info.hash)
        for flood_target in result.flooded_to:
            neighbour = self.routers.get(flood_target)
            if neighbour is None or neighbour.floodfill_state is None:
                continue
            flood_message = DatabaseStoreMessage(
                from_hash=target_hash, entry=info, reply_token=0
            )
            neighbour.floodfill_state.handle_store(flood_message, self.clock.now)
            if info.is_floodfill:
                neighbour.known_floodfills.add(info.hash)
            delivered += 1
        return delivered

    def explore(self, router_hash: bytes, lookups: int = 3) -> int:
        """A router sends exploration DLMs to floodfills to learn new peers.

        Returns the number of new RouterInfos learned.
        """
        router = self.routers[router_hash]
        floodfills = [h for h in router.known_floodfills if h in self.routers]
        if not floodfills:
            floodfills = self.floodfill_hashes()
        if not floodfills:
            return 0
        learned = 0
        targets = self.rng.sample(floodfills, min(lookups, len(floodfills)))
        for target_hash in targets:
            target = self.routers[target_hash]
            if target.floodfill_state is None:
                continue
            # Take the first 200 known hashes straight off the store instead
            # of copying the whole netDb into a fresh set per lookup.
            message = DatabaseLookupMessage(
                from_hash=router_hash,
                key=router_hash,
                lookup_type=LookupType.EXPLORATION,
                exclude_hashes=tuple(islice(router.store.iter_router_hashes(), 200)),
                max_results=16,
            )
            response = target.floodfill_state.handle_lookup(message, self.clock.now)
            self.messages_delivered += 1
            if isinstance(response, list):
                for info in response:
                    if router.learn(info):
                        learned += 1
        return learned

    def lookup_routerinfo(
        self, requester_hash: bytes, key: bytes, max_iterations: int = 8
    ) -> Optional[RouterInfo]:
        """Iterative RouterInfo lookup through floodfill routers."""
        requester = self.routers[requester_hash]
        local = requester.store.get_routerinfo(key)
        if local is not None:
            return local
        queried: Set[bytes] = set()
        candidates = [h for h in requester.known_floodfills if h in self.routers]
        if not candidates:
            candidates = self.floodfill_hashes()
        for _ in range(max_iterations):
            remaining = [h for h in candidates if h not in queried]
            if not remaining:
                return None
            target_key = routing_key(key, self.clock.now)
            ordered = select_closest(target_key, remaining, 1, self.clock.now)
            if not ordered:
                return None
            target_hash = ordered[0]
            queried.add(target_hash)
            target = self.routers.get(target_hash)
            if target is None or target.floodfill_state is None:
                continue
            message = DatabaseLookupMessage(
                from_hash=requester_hash,
                key=key,
                lookup_type=LookupType.ROUTERINFO,
                exclude_hashes=tuple(queried),
            )
            response = target.floodfill_state.handle_lookup(message, self.clock.now)
            self.messages_delivered += 1
            if isinstance(response, DatabaseStoreMessage):
                info = response.entry
                assert isinstance(info, RouterInfo)
                requester.learn(info)
                return info
            if hasattr(response, "closer_hashes"):
                candidates.extend(
                    h for h in response.closer_hashes if h in self.routers
                )
        return None

    # ------------------------------------------------------------------ #
    # Hidden services (eepsites): LeaseSet publication and lookup
    # ------------------------------------------------------------------ #
    def host_eepsite(
        self, host_hash: bytes, name: str = "", gateways: int = 2
    ) -> Destination:
        """Host a hidden service on a router and publish its LeaseSet.

        Inbound-tunnel gateways are selected from the host's netDb with the
        usual capacity-weighted selection; the resulting LeaseSet is stored
        at the floodfills closest to the destination's routing key, exactly
        like RouterInfo publication (Section 2.1.2).
        """
        host = self.routers[host_hash]
        destination = Destination(
            identity=RouterIdentity.generate(self.rng), name=name
        )
        host.hosted_destinations[destination.hash] = destination
        self.publish_leaseset(host_hash, destination, gateways=gateways)
        return destination

    def publish_leaseset(
        self, host_hash: bytes, destination: Destination, gateways: int = 2
    ) -> Optional[LeaseSet]:
        """(Re)build the destination's inbound tunnels and publish its LeaseSet."""
        host = self.routers[host_hash]
        candidates = [
            info
            for info in host.store.routerinfos()
            if info.hash != host_hash and info.hash in self.routers
        ]
        selected = self.tunnel_builder._selector.select_hops(candidates, gateways)
        if not selected:
            # Fall back to the host itself acting as its own gateway.
            gateway_hashes = [host_hash]
        else:
            gateway_hashes = [info.hash for info in selected]
        leases = tuple(
            Lease(
                gateway_hash=gateway_hash,
                tunnel_id=self.rng.randint(1, 2**31 - 1),
                expires_at=self.clock.now + LEASE_DURATION,
            )
            for gateway_hash in gateway_hashes
        )
        leaseset = LeaseSet(
            destination=destination, leases=leases, published_at=self.clock.now
        )
        host.store.store_leaseset(leaseset)

        floodfills = [h for h in host.known_floodfills if h in self.routers]
        if not floodfills:
            floodfills = self.floodfill_hashes()
        if floodfills:
            target_key = routing_key(destination.hash, self.clock.now)
            targets = select_closest(
                target_key, floodfills, FLOOD_REDUNDANCY, self.clock.now
            )
            for target_hash in targets:
                target = self.routers.get(target_hash)
                if target is None or target.floodfill_state is None:
                    continue
                message = DatabaseStoreMessage(
                    from_hash=host_hash, entry=leaseset, reply_token=1
                )
                target.floodfill_state.handle_store(message, self.clock.now)
                self.messages_delivered += 1
        return leaseset

    def lookup_leaseset(
        self, requester_hash: bytes, destination_hash: bytes, max_iterations: int = 8
    ) -> Optional[LeaseSet]:
        """Iterative LeaseSet lookup through the floodfill DHT."""
        requester = self.routers[requester_hash]
        local = requester.store.get_leaseset(destination_hash)
        if local is not None and not local.is_expired(self.clock.now):
            return local
        queried: Set[bytes] = set()
        candidates = [h for h in requester.known_floodfills if h in self.routers]
        if not candidates:
            candidates = self.floodfill_hashes()
        for _ in range(max_iterations):
            remaining = [h for h in candidates if h not in queried]
            if not remaining:
                return None
            target_key = routing_key(destination_hash, self.clock.now)
            ordered = select_closest(target_key, remaining, 1, self.clock.now)
            if not ordered:
                return None
            target_hash = ordered[0]
            queried.add(target_hash)
            target = self.routers.get(target_hash)
            if target is None or target.floodfill_state is None:
                continue
            message = DatabaseLookupMessage(
                from_hash=requester_hash,
                key=destination_hash,
                lookup_type=LookupType.LEASESET,
                exclude_hashes=tuple(queried),
            )
            response = target.floodfill_state.handle_lookup(message, self.clock.now)
            self.messages_delivered += 1
            if isinstance(response, DatabaseStoreMessage) and response.is_leaseset:
                leaseset = response.entry
                assert isinstance(leaseset, LeaseSet)
                requester.store.store_leaseset(leaseset)
                return leaseset
            if hasattr(response, "closer_hashes"):
                candidates.extend(
                    h for h in response.closer_hashes if h in self.routers
                )
        return None

    def fetch_eepsite(
        self,
        requester_hash: bytes,
        destination_hash: bytes,
        blocked_ips: Optional[Set[str]] = None,
    ) -> Tuple[bool, float]:
        """Fetch a page from a hidden service at the message level.

        Returns ``(succeeded, elapsed_seconds)``.  The fetch needs a
        LeaseSet lookup, an outbound tunnel for the requester, and a
        reachable inbound gateway from the LeaseSet; a censor blocklist can
        be supplied to emulate the null-routing of Section 6.2.3.
        """
        blocked_ips = blocked_ips or set()
        requester = self.routers[requester_hash]
        elapsed = 0.0

        leaseset = self.lookup_leaseset(requester_hash, destination_hash)
        elapsed += 0.5
        if leaseset is None:
            return False, elapsed

        candidates = [
            info
            for info in requester.store.routerinfos()
            if info.hash != requester_hash and info.hash in self.routers
        ]
        result = self.tunnel_builder.build(
            candidates,
            TunnelDirection.OUTBOUND,
            self.clock.now,
            blocked_ips=blocked_ips,
        )
        elapsed += result.elapsed_seconds
        if not result.succeeded:
            return False, elapsed

        for gateway_hash in leaseset.gateway_hashes(self.clock.now):
            gateway = self.routers.get(gateway_hash)
            if gateway is None:
                continue
            if gateway.ip in blocked_ips and gateway_hash != requester_hash:
                elapsed += 2.0
                continue
            elapsed += 1.0
            return True, elapsed
        return False, elapsed

    # ------------------------------------------------------------------ #
    # Tunnels (the third discovery mechanism)
    # ------------------------------------------------------------------ #
    def build_client_tunnels(
        self, router_hash: bytes, pairs: int = 2, length: int = 2
    ) -> int:
        """Build ``pairs`` inbound/outbound tunnel pairs for a router.

        Hop routers learn the RouterInfos of the routers adjacent to them
        in each built tunnel, modelling the "learns about other adjacent
        routers in tunnels that it participates in" mechanism.
        """
        router = self.routers[router_hash]
        candidates = [
            info
            for info in router.store.routerinfos()
            if info.hash != router_hash and info.hash in self.routers
        ]
        built = 0
        for _ in range(pairs):
            for direction in (TunnelDirection.OUTBOUND, TunnelDirection.INBOUND):
                result = self.tunnel_builder.build(
                    candidates, direction, self.clock.now, length=length
                )
                if not result.succeeded or result.tunnel is None:
                    continue
                built += 1
                self._propagate_tunnel_knowledge(router, result.tunnel.hops)
        return built

    def _propagate_tunnel_knowledge(
        self, originator: SimulatedRouter, hops: Tuple[bytes, ...]
    ) -> None:
        chain: List[SimulatedRouter] = [originator]
        for hop_hash in hops:
            hop = self.routers.get(hop_hash)
            if hop is None:
                continue
            hop.participating_tunnels += 1
            chain.append(hop)
        for position, node in enumerate(chain):
            for neighbour_index in (position - 1, position + 1):
                if 0 <= neighbour_index < len(chain):
                    neighbour = chain[neighbour_index]
                    if neighbour.hash != node.hash:
                        node.learn(neighbour.routerinfo(self.clock.now))

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    def step_hours(self, hours: float = 1.0) -> None:
        """Advance the clock and apply store expiry on every router."""
        self.clock.advance_hours(hours)
        for router in self.routers.values():
            router.store.expire(self.clock.now)

    def run_convergence_rounds(self, rounds: int = 3) -> None:
        """Run publish + exploration rounds so netDbs converge.

        A convenience used by integration tests and examples to reach a
        steady state quickly on small networks.
        """
        for _ in range(rounds):
            self.publish_all()
            for router_hash in list(self.routers.keys()):
                self.explore(router_hash, lookups=2)
            self.step_hours(0.25)
