"""Memory-budget driver: one campaign in a fresh process, RSS measured.

``ru_maxrss`` is a process-wide high-water mark, so a meaningful peak-RSS
number needs a process that has done nothing else.  This module is that
process: it runs exactly one main campaign on a chosen exposure backend
and prints a JSON record of what it cost —

.. code-block:: console

    $ python -m repro.memory_budget --scale 10 --days 10 \\
          --backend out-of-core --cache-dir /tmp/exposure --budget-mib 544

The record carries ``peak_rss_kib`` (normalised to KiB), wall seconds,
peer-days throughput, and a SHA-256 digest of the rendered campaign
summary — two runs at the same scale/seed must produce the same digest
regardless of backend, which is how the benchmark suite cross-checks the
out-of-core path at full scale without a second in-memory run's RAM.

With ``--budget-mib`` the driver exits non-zero when the peak RSS exceeds
the budget, so CI can gate on it directly.  The benchmark suite
(``benchmarks/test_perf_budget.py``) and the CI memory-budget job are the
two callers.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import resource
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

__all__ = ["main", "run_budgeted_campaign"]


def _peak_rss_kib() -> int:
    # ru_maxrss is KiB on Linux but bytes on macOS — normalise to KiB.
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak // 1024 if sys.platform == "darwin" else peak


def run_budgeted_campaign(
    scale: float,
    days: int,
    seed: int,
    backend: str,
    cache_dir: Optional[Path] = None,
    shard_days: Optional[int] = None,
) -> dict:
    """Run one main campaign and report its cost (see module docstring)."""
    from repro.core.campaign import run_main_campaign
    from repro.core.reporting import render_campaign_summary
    from repro.sim.exposure import ExposureEngine

    engine = ExposureEngine(
        cache_dir=cache_dir,
        backend=backend,
        shard_days=shard_days,
    )
    start = time.perf_counter()
    result = run_main_campaign(
        days=days,
        scale=scale,
        seed=seed,
        collect_daily_ips=True,
        include_victim_client=True,
        engine=engine,
    )
    wall = time.perf_counter() - start
    engine.flush()
    summary = render_campaign_summary(result)
    peer_days = int(sum(result.daily_online_population))
    return {
        "backend": engine.backend,
        "scale": scale,
        "days": result.log.days_recorded,
        "seed": seed,
        "wall_seconds": round(wall, 3),
        "peer_days": peer_days,
        "peer_days_per_second": round(peer_days / wall, 1),
        "unique_peers": result.log.unique_peer_count,
        "summary_sha256": hashlib.sha256(summary.encode()).hexdigest(),
        "peak_rss_kib": _peak_rss_kib(),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.memory_budget",
        description="Run one main campaign in this process and print a JSON "
        "record of peak RSS, wall time, and a summary digest.",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--days", type=int, default=10)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument(
        "--backend", choices=("in-memory", "out-of-core"), default="in-memory"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="exposure cache directory (required for --backend out-of-core)",
    )
    parser.add_argument(
        "--shard-days", type=int, default=None, help="days per bundle shard"
    )
    parser.add_argument(
        "--budget-mib",
        type=float,
        default=None,
        help="fail (exit 1) when peak RSS exceeds this many MiB",
    )
    args = parser.parse_args(argv)

    record = run_budgeted_campaign(
        scale=args.scale,
        days=args.days,
        seed=args.seed,
        backend=args.backend,
        cache_dir=args.cache_dir,
        shard_days=args.shard_days,
    )
    if args.budget_mib is not None:
        record["budget_mib"] = args.budget_mib
        record["within_budget"] = record["peak_rss_kib"] <= args.budget_mib * 1024
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.budget_mib is not None and not record["within_budget"]:
        print(
            f"peak RSS {record['peak_rss_kib'] / 1024:.1f} MiB exceeds the "
            f"{args.budget_mib:.1f} MiB budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
