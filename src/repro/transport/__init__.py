"""Transport-layer substrate: NTCP/NTCP2 flow shapes, SSU introductions, ports."""

from .ntcp import (
    NTCP_HANDSHAKE_SIZES,
    FlowRecord,
    HandshakeFingerprinter,
    NTCP2Session,
    NTCPSession,
    synthetic_background_flow,
)
from .ports import (
    I2P_PORT_RANGE,
    NTP_PORT,
    WELL_KNOWN_PORTS,
    PortRegistry,
    is_possible_i2p_port,
    random_i2p_port,
)
from .ssu import (
    INTRODUCTION_TAG_LIFETIME,
    MAX_INTRODUCERS,
    HolePunch,
    IntroductionTag,
    PeerTestResult,
    ReachabilityStatus,
    RelayRequest,
    RelayResponse,
    SSUEndpoint,
    run_peer_test,
)

__all__ = [
    "NTCP_HANDSHAKE_SIZES",
    "FlowRecord",
    "HandshakeFingerprinter",
    "NTCP2Session",
    "NTCPSession",
    "synthetic_background_flow",
    "I2P_PORT_RANGE",
    "NTP_PORT",
    "WELL_KNOWN_PORTS",
    "PortRegistry",
    "is_possible_i2p_port",
    "random_i2p_port",
    "INTRODUCTION_TAG_LIFETIME",
    "MAX_INTRODUCERS",
    "HolePunch",
    "IntroductionTag",
    "PeerTestResult",
    "ReachabilityStatus",
    "RelayRequest",
    "RelayResponse",
    "SSUEndpoint",
    "run_peer_test",
]
