"""NTCP transport: TCP sessions and the fingerprintable handshake.

The censorship discussion in Section 2.2.2 notes that, although I2P
obfuscates payloads, *"flow analysis can still be used to fingerprint I2P
traffic in the current design because the first four handshake messages
between I2P routers can be detected due to their fixed lengths of 288, 304,
448, and 48 bytes"*, and that NTCP2 is being developed to remove this
signature.

This module models both protocols at the flow level: the handshake produces
a sequence of message sizes, and a DPI classifier
(:class:`HandshakeFingerprinter`) attempts to detect I2P flows from those
sizes — the basis of the DPI ablation benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "NTCP_HANDSHAKE_SIZES",
    "NTCPSession",
    "NTCP2Session",
    "HandshakeFingerprinter",
    "FlowRecord",
]

#: The fixed sizes (bytes) of the first four NTCP handshake messages
#: (SessionRequest, SessionCreated, SessionConfirmA, SessionConfirmB).
NTCP_HANDSHAKE_SIZES: Tuple[int, int, int, int] = (288, 304, 448, 48)

#: NTCP2 pads its three handshake messages with random-length padding, so
#: observed sizes fall in ranges rather than at fixed points.
NTCP2_BASE_SIZES: Tuple[int, int, int] = (64, 64, 48)
NTCP2_MAX_PADDING = 64


@dataclass(frozen=True)
class FlowRecord:
    """An observed TCP flow: the message sizes a DPI box can see."""

    message_sizes: Tuple[int, ...]
    protocol: str  # ground-truth label, used only for evaluation

    @property
    def first_four(self) -> Tuple[int, ...]:
        return self.message_sizes[:4]


@dataclass
class NTCPSession:
    """A legacy NTCP session between two routers.

    Only the observable flow shape is modelled: handshake message sizes,
    then data messages of caller-supplied sizes.
    """

    initiator_hash: bytes
    responder_hash: bytes
    established: bool = False
    _messages: List[int] = field(default_factory=list)

    def handshake(self) -> Tuple[int, ...]:
        """Perform the 4-message handshake; returns the wire sizes."""
        if self.established:
            raise RuntimeError("session already established")
        self._messages.extend(NTCP_HANDSHAKE_SIZES)
        self.established = True
        return NTCP_HANDSHAKE_SIZES

    def send(self, payload_size: int) -> int:
        """Send a data message; returns the on-wire size (16-byte framing)."""
        if not self.established:
            raise RuntimeError("handshake not completed")
        if payload_size < 0:
            raise ValueError("payload size must be non-negative")
        wire_size = payload_size + 16
        self._messages.append(wire_size)
        return wire_size

    def flow_record(self) -> FlowRecord:
        return FlowRecord(tuple(self._messages), protocol="ntcp")


@dataclass
class NTCP2Session:
    """An NTCP2 session whose handshake sizes are randomised by padding."""

    initiator_hash: bytes
    responder_hash: bytes
    rng: random.Random = field(default_factory=random.Random)
    established: bool = False
    _messages: List[int] = field(default_factory=list)

    def handshake(self) -> Tuple[int, ...]:
        if self.established:
            raise RuntimeError("session already established")
        sizes = tuple(
            base + self.rng.randint(0, NTCP2_MAX_PADDING) for base in NTCP2_BASE_SIZES
        )
        self._messages.extend(sizes)
        self.established = True
        return sizes

    def send(self, payload_size: int) -> int:
        if not self.established:
            raise RuntimeError("handshake not completed")
        if payload_size < 0:
            raise ValueError("payload size must be non-negative")
        padding = self.rng.randint(0, 15)
        wire_size = payload_size + 16 + padding
        self._messages.append(wire_size)
        return wire_size

    def flow_record(self) -> FlowRecord:
        return FlowRecord(tuple(self._messages), protocol="ntcp2")


class HandshakeFingerprinter:
    """A DPI classifier that flags flows whose first messages match NTCP.

    ``tolerance`` allows for small deviations (e.g. TCP segmentation
    artefacts); at tolerance 0 the classifier implements exactly the
    fixed-length signature described in the paper.
    """

    def __init__(self, tolerance: int = 0) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        self.tolerance = tolerance

    def matches(self, flow: FlowRecord) -> bool:
        observed = flow.first_four
        if len(observed) < len(NTCP_HANDSHAKE_SIZES):
            return False
        return all(
            abs(size - expected) <= self.tolerance
            for size, expected in zip(observed, NTCP_HANDSHAKE_SIZES)
        )

    def evaluate(self, flows: Sequence[FlowRecord]) -> dict:
        """Evaluate detection over labelled flows.

        Returns a dict with true/false positive/negative counts plus
        precision and recall, used by the DPI ablation benchmark.
        """
        tp = fp = tn = fn = 0
        for flow in flows:
            detected = self.matches(flow)
            is_i2p_ntcp = flow.protocol == "ntcp"
            if detected and is_i2p_ntcp:
                tp += 1
            elif detected and not is_i2p_ntcp:
                fp += 1
            elif not detected and is_i2p_ntcp:
                fn += 1
            else:
                tn += 1
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        return {
            "true_positives": tp,
            "false_positives": fp,
            "true_negatives": tn,
            "false_negatives": fn,
            "precision": precision,
            "recall": recall,
        }


def synthetic_background_flow(
    rng: random.Random, protocol: str = "https", length: int = 8
) -> FlowRecord:
    """Generate a non-I2P background flow for fingerprinting experiments."""
    if length <= 0:
        raise ValueError("length must be positive")
    if protocol == "https":
        # TLS ClientHello/ServerHello-ish sizes followed by data records.
        sizes = [rng.randint(200, 600), rng.randint(1200, 4000)]
        sizes += [rng.randint(50, 1500) for _ in range(length - 2)]
    elif protocol == "ssh":
        sizes = [rng.randint(20, 50), rng.randint(700, 1100)]
        sizes += [rng.randint(30, 200) for _ in range(length - 2)]
    else:
        sizes = [rng.randint(40, 1500) for _ in range(length)]
    return FlowRecord(tuple(sizes), protocol=protocol)
