"""Port selection model for I2P routers.

Section 2.2.2 of the paper: *"I2P is a P2P network application that can run
on a wide range of ports using both UDP and TCP.  More specifically, I2P can
run on any arbitrary port in the range of 9000–31000."*  This makes
port-based censorship collateral-damage-prone, an observation the ablation
benchmark :mod:`benchmarks.test_ablation_port_blocking` quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "I2P_PORT_RANGE",
    "NTP_PORT",
    "WELL_KNOWN_PORTS",
    "random_i2p_port",
    "random_i2p_ports_batch",
    "is_possible_i2p_port",
    "PortRegistry",
]

#: Inclusive port range from which I2P routers pick their listening port.
I2P_PORT_RANGE: Tuple[int, int] = (9000, 31000)

#: UDP port used by NTP, which the I2P router needs for time sync.
NTP_PORT = 123

#: Ports commonly carrying non-I2P traffic in the same range; used by the
#: collateral-damage ablation to estimate over-blocking.
WELL_KNOWN_PORTS: Dict[int, str] = {
    9000: "php-fpm / SonarQube",
    9090: "Prometheus / Openfire",
    9200: "Elasticsearch",
    9418: "git",
    10000: "Webmin / NDMP",
    11211: "memcached",
    25565: "Minecraft",
    27017: "MongoDB",
    28015: "RethinkDB",
    30000: "NFS callback",
}


def random_i2p_port(rng: Optional[random.Random] = None) -> int:
    """Pick a random port in the I2P range, avoiding a handful of well-known
    ports (the Java router avoids collisions with locally bound services)."""
    rng = rng or random
    low, high = I2P_PORT_RANGE
    while True:
        port = rng.randint(low, high)
        if port not in WELL_KNOWN_PORTS:
            return port


def random_i2p_ports_batch(count: int, rng: "np.random.Generator") -> "np.ndarray":
    """``count`` ports drawn like :func:`random_i2p_port`, vectorised.

    Rejection sampling over the well-known ports is done in whole-array
    passes; the marginal distribution matches the scalar helper.
    """
    import numpy as np

    low, high = I2P_PORT_RANGE
    ports = rng.integers(low, high + 1, size=count)
    blocked = np.asarray(sorted(WELL_KNOWN_PORTS), dtype=np.int64)
    while True:
        bad = np.isin(ports, blocked)
        bad_count = int(np.count_nonzero(bad))
        if not bad_count:
            return ports
        ports[bad] = rng.integers(low, high + 1, size=bad_count)


def is_possible_i2p_port(port: int) -> bool:
    """Whether a port falls inside the range I2P routers may use."""
    low, high = I2P_PORT_RANGE
    return low <= port <= high


@dataclass
class PortRegistry:
    """Tracks which (ip, port) pairs are bound by simulated routers.

    The registry guarantees uniqueness per IP so that two routers sharing a
    NAT'd public address do not collide, and provides the census used by the
    port-blocking ablation.
    """

    _bindings: Dict[Tuple[str, int], bytes] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self._bindings is None:
            self._bindings = {}

    def bind(
        self,
        ip: str,
        router_hash: bytes,
        rng: Optional[random.Random] = None,
        preferred_port: Optional[int] = None,
    ) -> int:
        """Bind a router to a port on ``ip``; returns the chosen port."""
        if preferred_port is not None and (ip, preferred_port) not in self._bindings:
            if not is_possible_i2p_port(preferred_port):
                raise ValueError(f"port {preferred_port} outside the I2P range")
            self._bindings[(ip, preferred_port)] = router_hash
            return preferred_port
        for _ in range(1000):
            port = random_i2p_port(rng)
            if (ip, port) not in self._bindings:
                self._bindings[(ip, port)] = router_hash
                return port
        raise RuntimeError(f"could not find a free port on {ip}")

    def release(self, ip: str, port: int) -> bool:
        return self._bindings.pop((ip, port), None) is not None

    def owner(self, ip: str, port: int) -> Optional[bytes]:
        return self._bindings.get((ip, port))

    def ports_on(self, ip: str) -> List[int]:
        return sorted(port for (bound_ip, port) in self._bindings if bound_ip == ip)

    def __len__(self) -> int:
        return len(self._bindings)

    def port_histogram(self, bucket_size: int = 1000) -> Dict[int, int]:
        """Histogram of bound ports, bucketed (for the port-blocking ablation)."""
        if bucket_size <= 0:
            raise ValueError("bucket_size must be positive")
        histogram: Dict[int, int] = {}
        for (_, port) in self._bindings:
            bucket = (port // bucket_size) * bucket_size
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return histogram
