"""SSU transport: UDP sessions, peer testing, and introducer relaying.

SSU (Secure Semireliable UDP) matters to the measurement study because it
is the transport that lets *firewalled* peers participate: Section 5.1
describes how a firewalled router (Bob) selects introducers, publishes
their contact information in his RouterInfo, and accepts connections after
a hole-punching exchange relayed by the introducer.

The model here captures the control-plane behaviour (introduction tags,
RelayRequest/RelayResponse/hole punch, peer-test reachability detection)
at the level of abstraction the blocking and bridge analyses need.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "ReachabilityStatus",
    "IntroductionTag",
    "RelayRequest",
    "RelayResponse",
    "HolePunch",
    "SSUEndpoint",
    "PeerTestResult",
    "run_peer_test",
]

#: Maximum number of introducers a firewalled router advertises.
MAX_INTRODUCERS = 3

#: Introduction tags expire after this many seconds if unused.
INTRODUCTION_TAG_LIFETIME = 20 * 60.0


class ReachabilityStatus(str, enum.Enum):
    """Result of SSU peer testing, mapped to the R/U capacity flags."""

    OK = "OK"  # publicly reachable (R flag)
    FIREWALLED = "FIREWALLED"  # inbound blocked, needs introducers (U flag)
    UNKNOWN = "UNKNOWN"  # not enough test data yet


@dataclass(frozen=True)
class IntroductionTag:
    """A tag issued by an introducer on behalf of a firewalled peer."""

    tag: int
    introducer_hash: bytes
    introducer_ip: str
    introducer_port: int
    target_hash: bytes
    issued_at: float

    def expired(self, now: float) -> bool:
        return now - self.issued_at > INTRODUCTION_TAG_LIFETIME


@dataclass(frozen=True)
class RelayRequest:
    """Alice → introducer: please introduce me to the peer behind ``tag``."""

    from_hash: bytes
    from_ip: str
    from_port: int
    tag: int


@dataclass(frozen=True)
class RelayResponse:
    """Introducer → Alice: here is Bob's (public but firewalled) endpoint."""

    target_hash: bytes
    target_ip: str
    target_port: int
    tag: int


@dataclass(frozen=True)
class HolePunch:
    """Bob → Alice: a small random packet that opens Bob's NAT mapping."""

    from_hash: bytes
    to_ip: str
    to_port: int
    size: int


@dataclass
class PeerTestResult:
    status: ReachabilityStatus
    observed_ip: Optional[str] = None
    observed_port: Optional[int] = None


class SSUEndpoint:
    """The SSU state of one router: tags it issued and tags issued for it."""

    def __init__(
        self,
        router_hash: bytes,
        ip: Optional[str],
        port: Optional[int],
        firewalled: bool = False,
        rng: Optional[random.Random] = None,
    ) -> None:
        if len(router_hash) != 32:
            raise ValueError("router hash must be 32 bytes")
        self.router_hash = router_hash
        self.ip = ip
        self.port = port
        self.firewalled = firewalled
        self._rng = rng or random.Random()
        #: Tags this endpoint issued as an introducer: tag -> target hash.
        self._issued_tags: Dict[int, IntroductionTag] = {}
        #: Tags issued for this endpoint by its introducers.
        self._my_introducers: List[IntroductionTag] = []

    # ------------------------------------------------------------------ #
    # Acting as an introducer
    # ------------------------------------------------------------------ #
    def issue_tag(
        self, target: "SSUEndpoint", now: float
    ) -> Optional[IntroductionTag]:
        """Issue an introduction tag for a firewalled target router.

        A firewalled or address-less endpoint cannot serve as an introducer;
        the method then returns ``None``.
        """
        if self.firewalled or self.ip is None or self.port is None:
            return None
        tag_value = self._rng.randint(1, 2**32 - 1)
        tag = IntroductionTag(
            tag=tag_value,
            introducer_hash=self.router_hash,
            introducer_ip=self.ip,
            introducer_port=self.port,
            target_hash=target.router_hash,
            issued_at=now,
        )
        self._issued_tags[tag_value] = tag
        target._my_introducers.append(tag)
        return tag

    def expire_tags(self, now: float) -> int:
        """Drop expired tags (both issued and held); returns removals."""
        removed = 0
        for tag_value, tag in list(self._issued_tags.items()):
            if tag.expired(now):
                del self._issued_tags[tag_value]
                removed += 1
        before = len(self._my_introducers)
        self._my_introducers = [t for t in self._my_introducers if not t.expired(now)]
        removed += before - len(self._my_introducers)
        return removed

    def handle_relay_request(
        self, request: RelayRequest, target_endpoint: "SSUEndpoint"
    ) -> Optional[Tuple[RelayResponse, HolePunch]]:
        """Handle Alice's RelayRequest for a tag this endpoint issued.

        Returns the RelayResponse for Alice and the HolePunch Bob sends, or
        ``None`` when the tag is unknown (e.g. already expired).
        """
        tag = self._issued_tags.get(request.tag)
        if tag is None or tag.target_hash != target_endpoint.router_hash:
            return None
        if target_endpoint.ip is None or target_endpoint.port is None:
            return None
        response = RelayResponse(
            target_hash=tag.target_hash,
            target_ip=target_endpoint.ip,
            target_port=target_endpoint.port,
            tag=request.tag,
        )
        punch = HolePunch(
            from_hash=target_endpoint.router_hash,
            to_ip=request.from_ip,
            to_port=request.from_port,
            size=self._rng.randint(16, 64),
        )
        return response, punch

    # ------------------------------------------------------------------ #
    # Acting as a firewalled peer
    # ------------------------------------------------------------------ #
    @property
    def introducer_tags(self) -> Tuple[IntroductionTag, ...]:
        return tuple(self._my_introducers[:MAX_INTRODUCERS])

    def has_introducers(self) -> bool:
        return len(self._my_introducers) > 0

    def clear_introducers(self) -> None:
        self._my_introducers.clear()


def run_peer_test(
    endpoint: SSUEndpoint,
    helpers: List[SSUEndpoint],
    inbound_blocked: bool,
) -> PeerTestResult:
    """Simulate the SSU peer test that determines R vs U status.

    The real protocol involves two helper routers (Charlie sends a probe to
    the address Alice observed).  Here the NAT/firewall behaviour is an
    input (``inbound_blocked``) and the helpers merely need to exist and be
    reachable themselves for the test to produce a verdict.
    """
    usable_helpers = [
        h for h in helpers if not h.firewalled and h.ip is not None and h.port is not None
    ]
    if len(usable_helpers) < 2:
        return PeerTestResult(status=ReachabilityStatus.UNKNOWN)
    if endpoint.ip is None or endpoint.port is None:
        return PeerTestResult(status=ReachabilityStatus.FIREWALLED)
    if inbound_blocked:
        return PeerTestResult(
            status=ReachabilityStatus.FIREWALLED,
            observed_ip=endpoint.ip,
            observed_port=endpoint.port,
        )
    return PeerTestResult(
        status=ReachabilityStatus.OK,
        observed_ip=endpoint.ip,
        observed_port=endpoint.port,
    )
