"""Figure-series containers.

The benchmark harness regenerates each paper figure as one or more named
series of (x, y) points.  :class:`FigureSeries` keeps the data, and
:class:`FigureData` groups the series belonging to one figure together with
enough metadata to render a readable text report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .tables import format_table

__all__ = ["FigureSeries", "FigureData"]


@dataclass
class FigureSeries:
    """One named series of (x, y) points."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)
    #: Lazily built x → y index (first occurrence wins) plus the number of
    #: points it covered; rebuilt when points were added since.
    _index: Optional[Dict[float, float]] = field(
        default=None, repr=False, compare=False
    )
    _indexed_count: int = field(default=0, repr=False, compare=False)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]

    def y_at(self, x: float) -> Optional[float]:
        """The y value recorded at exactly ``x`` (None if absent).

        Points are indexed once (and re-indexed after appends), so repeated
        figure lookups — ``FigureData.to_text`` alone performs one per
        series per x — cost a hash probe instead of an O(n) scan.  Ties
        keep the first recorded point, matching the historical scan.
        """
        if self._index is None or self._indexed_count != len(self.points):
            index: Dict[float, float] = {}
            for px, py in self.points:
                index.setdefault(px, py)
            self._index = index
            self._indexed_count = len(self.points)
        return self._index.get(float(x))

    def final(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def is_monotonic_nondecreasing(self) -> bool:
        ys = self.ys
        return all(b >= a - 1e-12 for a, b in zip(ys, ys[1:]))


@dataclass
class FigureData:
    """All the series reproducing one paper figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, FigureSeries] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def new_series(self, name: str) -> FigureSeries:
        if name in self.series:
            raise ValueError(f"series {name!r} already exists")
        created = FigureSeries(name=name)
        self.series[name] = created
        return created

    def get(self, name: str) -> FigureSeries:
        return self.series[name]

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self, float_format: str = ".2f") -> str:
        """Render the figure data as an aligned text table."""
        xs: List[float] = sorted({x for s in self.series.values() for x in s.xs})
        headers = [self.x_label] + list(self.series.keys())
        rows: List[List[object]] = []
        for x in xs:
            row: List[object] = [x]
            for series in self.series.values():
                row.append(series.y_at(x))
            rows.append(row)
        text = format_table(
            headers,
            rows,
            float_format=float_format,
            title=f"{self.figure_id}: {self.title} ({self.y_label})",
        )
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text
