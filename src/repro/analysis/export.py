"""Export helpers: serialise figures and summaries to CSV / JSON.

The paper publishes only aggregate statistics (see its ethics section);
this module provides the equivalent "publishable artefact" layer for the
reproduction: every regenerated figure/table can be dumped to disk in a
machine-readable form for plotting or archival, without exposing anything
but the aggregates themselves.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .series import FigureData

__all__ = [
    "figure_to_rows",
    "figure_to_csv",
    "figure_to_json",
    "write_figure_csv",
    "write_figure_json",
    "summary_to_json",
]

PathLike = Union[str, Path]


def figure_to_rows(figure: FigureData) -> List[Dict[str, Optional[float]]]:
    """Flatten a figure into one dict per x value, one key per series."""
    xs = sorted({x for series in figure.series.values() for x in series.xs})
    rows: List[Dict[str, Optional[float]]] = []
    for x in xs:
        row: Dict[str, Optional[float]] = {figure.x_label: x}
        for name, series in figure.series.items():
            row[name] = series.y_at(x)
        rows.append(row)
    return rows


def figure_to_csv(figure: FigureData) -> str:
    """Render a figure as CSV text (header row + one row per x value)."""
    rows = figure_to_rows(figure)
    buffer = io.StringIO()
    fieldnames = [figure.x_label] + list(figure.series.keys())
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def figure_to_json(figure: FigureData, indent: int = 2) -> str:
    """Render a figure (metadata + series) as a JSON document."""
    payload = {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "notes": list(figure.notes),
        "series": {
            name: [{"x": x, "y": y} for x, y in series.points]
            for name, series in figure.series.items()
        },
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def write_figure_csv(figure: FigureData, path: PathLike) -> Path:
    """Write a figure to ``path`` as CSV; returns the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(figure_to_csv(figure), encoding="utf-8")
    return target


def write_figure_json(figure: FigureData, path: PathLike) -> Path:
    """Write a figure to ``path`` as JSON; returns the resolved path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(figure_to_json(figure), encoding="utf-8")
    return target


def summary_to_json(summary: Dict[str, object], indent: int = 2) -> str:
    """Serialise a flat summary dict (e.g. ``PopulationSummary.as_dict()``)."""
    def _default(value: object) -> object:
        if isinstance(value, (set, frozenset, tuple)):
            return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
        return str(value)

    return json.dumps(summary, indent=indent, sort_keys=True, default=_default)
