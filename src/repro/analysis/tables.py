"""Plain-text tables for benchmark and example output.

Every benchmark regenerating a paper table or figure prints its rows/series
through these helpers, so the output is uniform, diff-able, and easy to
compare against the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_table", "format_kv", "format_percent"]

Cell = Union[str, int, float, None]


def _render_cell(cell: Cell, float_format: str) -> str:
    if cell is None:
        return ""
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return format(cell, float_format)
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    float_format: str = ".2f",
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with aligned columns."""
    if not headers:
        raise ValueError("a table needs at least one column")
    rendered_rows: List[List[str]] = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * w for w in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_kv(pairs: Dict[str, Cell], title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line, aligned on the separator."""
    if not pairs:
        return title or ""
    width = max(len(str(key)) for key in pairs)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for key, value in pairs.items():
        rendered = _render_cell(value, ".3f")
        lines.append(f"{str(key).ljust(width)} : {rendered}")
    return "\n".join(lines)


def format_percent(fraction: float, decimals: int = 1) -> str:
    """Format a 0–1 fraction as a percentage string."""
    return f"{fraction * 100:.{decimals}f}%"
