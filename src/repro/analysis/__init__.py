"""Generic analysis toolkit: statistics, ASCII tables, figure series."""

from .export import (
    figure_to_csv,
    figure_to_json,
    figure_to_rows,
    summary_to_json,
    write_figure_csv,
    write_figure_json,
)
from .series import FigureData, FigureSeries
from .stats import (
    SummaryStats,
    bootstrap_mean_ci,
    cdf_points,
    cumulative_share,
    histogram,
    percentile,
    share,
    summarize,
    survival_points,
)
from .tables import format_kv, format_percent, format_table

__all__ = [
    "figure_to_csv",
    "figure_to_json",
    "figure_to_rows",
    "summary_to_json",
    "write_figure_csv",
    "write_figure_json",
    "FigureData",
    "FigureSeries",
    "SummaryStats",
    "bootstrap_mean_ci",
    "cdf_points",
    "cumulative_share",
    "histogram",
    "percentile",
    "share",
    "summarize",
    "survival_points",
    "format_kv",
    "format_percent",
    "format_table",
]
