"""Statistical helpers used by the measurement analyses and benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SummaryStats",
    "summarize",
    "percentile",
    "cdf_points",
    "survival_points",
    "histogram",
    "bootstrap_mean_ci",
    "share",
    "cumulative_share",
]


@dataclass(frozen=True)
class SummaryStats:
    """Basic summary statistics of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p95": self.p95,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute summary statistics; raises on an empty sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    array = np.asarray(list(values), dtype=float)
    return SummaryStats(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        p25=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        p75=float(np.percentile(array, 75)),
        p95=float(np.percentile(array, 95)),
        maximum=float(array.max()),
    )


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) of a sample."""
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]")
    if len(values) == 0:
        raise ValueError("cannot take the percentile of an empty sample")
    return float(np.percentile(np.asarray(list(values), dtype=float), q))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as sorted (value, cumulative fraction) points."""
    if len(values) == 0:
        return []
    array = np.sort(np.asarray(list(values), dtype=float))
    n = array.size
    return [(float(v), (i + 1) / n) for i, v in enumerate(array)]

def survival_points(
    values: Sequence[float], thresholds: Sequence[float]
) -> List[Tuple[float, float]]:
    """Fraction of the sample that is >= each threshold (survival curve).

    This is the form of Figure 7 in the paper: the percentage of peers seen
    in the network for at least *n* days.
    """
    if len(values) == 0:
        return [(float(t), 0.0) for t in thresholds]
    array = np.asarray(list(values), dtype=float)
    n = array.size
    return [(float(t), float((array >= t).sum()) / n) for t in thresholds]


def histogram(
    values: Sequence[float], bin_edges: Sequence[float]
) -> List[Tuple[float, float, int]]:
    """Histogram as (low_edge, high_edge, count) triples."""
    if len(bin_edges) < 2:
        raise ValueError("at least two bin edges are required")
    array = np.asarray(list(values), dtype=float)
    counts, edges = np.histogram(array, bins=np.asarray(list(bin_edges), dtype=float))
    return [
        (float(edges[i]), float(edges[i + 1]), int(counts[i]))
        for i in range(len(counts))
    ]


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1_000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Bootstrap confidence interval for the mean: (mean, low, high)."""
    if len(values) == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    array = np.asarray(list(values), dtype=float)
    rng = np.random.default_rng(seed)
    means = np.empty(resamples)
    for i in range(resamples):
        sample = rng.choice(array, size=array.size, replace=True)
        means[i] = sample.mean()
    alpha = (1.0 - confidence) / 2.0
    return (
        float(array.mean()),
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def share(counts: Dict[str, float]) -> Dict[str, float]:
    """Normalise a mapping of counts to shares that sum to 1."""
    total = float(sum(counts.values()))
    if total <= 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def cumulative_share(ordered_counts: Sequence[float]) -> List[float]:
    """Cumulative share (0–1) of an already-ordered sequence of counts."""
    total = float(sum(ordered_counts))
    if total <= 0:
        return [0.0 for _ in ordered_counts]
    cumulative: List[float] = []
    running = 0.0
    for value in ordered_counts:
        running += value
        cumulative.append(running / total)
    return cumulative
