"""Compact sorted-range geo/ASN database: compiler + mmap reader.

The offline-database provider in the spirit of the GeoLite2 readers: a
single binary file of sorted, non-overlapping IPv4 ranges, each mapping to
``(country, asn)``, read back through one ``mmap`` so lookups are a binary
search over zero-copy column views (the same shape as the exposure store's
bundle columns).  The compiler (``repro geo build-db``) accepts the range
tables real tooling exports — CSV rows or a JSON list — and:

* validates (well-formed addresses/CIDRs, ``start <= end``, 2-letter
  country codes, 32-bit ASNs) and **rejects overlapping ranges**;
* **coalesces adjacent ranges** with identical ``(country, asn)`` so a
  table exported prefix-by-prefix collapses back to its covering ranges;
* records each range's CIDR prefix length when the range is exactly one
  prefix (for ``Enrichment.prefix`` reporting), and an optional per-country
  press-freedom score table for the censorship analyses;
* publishes atomically (temp file + one ``os.replace``).

File layout (all little-endian)::

    magic "RPGEODB1" | u16 version | u16 country_count | u32 range_count
    country codes      country_count x 2 ascii bytes  (padded to 4 bytes)
    country scores     country_count x f32            (NaN = unknown)
    starts             range_count x u32   (inclusive)
    ends               range_count x u32   (inclusive)
    asns               range_count x u32
    country_idx        range_count x u16
    prefix_len         range_count x u8    (0 = range is not one CIDR)
"""

from __future__ import annotations

import csv
import io
import json
import math
import mmap
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .base import (
    SENTINEL_ASN,
    Enrichment,
    GeoProvider,
    int_to_ipv4,
    ipv4_to_int,
    parse_prefix,
    prefix_string,
    split_range_to_prefixes,
)

__all__ = [
    "RangeRow",
    "RangeDbProvider",
    "compile_range_db",
    "load_rows",
    "rows_from_registry",
]

_MAGIC = b"RPGEODB1"
_VERSION = 1
_HEADER = struct.Struct("<8sHHI")
_MAX_IPV4 = 0xFFFFFFFF


@dataclass(frozen=True, slots=True)
class RangeRow:
    """One source row for the compiler: an inclusive IPv4 range."""

    start: int
    end: int
    country: str
    asn: int
    press_freedom_score: Optional[float] = None

    def validate(self) -> "RangeRow":
        if not 0 <= self.start <= _MAX_IPV4 or not 0 <= self.end <= _MAX_IPV4:
            raise ValueError(
                f"range outside the IPv4 space: {self.start}-{self.end}"
            )
        if self.start > self.end:
            raise ValueError(
                f"range start {int_to_ipv4(self.start)} exceeds end "
                f"{int_to_ipv4(self.end)}"
            )
        if len(self.country) != 2 or not self.country.isascii():
            raise ValueError(f"country must be a 2-letter code: {self.country!r}")
        if not 0 <= self.asn <= _MAX_IPV4:
            raise ValueError(f"ASN out of range: {self.asn}")
        return self


# --------------------------------------------------------------------------- #
# Source-table parsing
# --------------------------------------------------------------------------- #
def _parse_address_or_int(text: str, what: str) -> int:
    value = ipv4_to_int(text)
    if value is None:
        try:
            value = int(text)
        except ValueError:
            raise ValueError(f"{what} is neither an IPv4 address nor an integer: {text!r}") from None
    if not 0 <= value <= _MAX_IPV4:
        raise ValueError(f"{what} outside the IPv4 space: {text!r}")
    return value


def _row_from_mapping(entry: Dict[str, object], where: str) -> RangeRow:
    country = str(entry.get("country", "")).strip().upper()
    try:
        asn = int(entry.get("asn", SENTINEL_ASN))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(f"{where}: ASN is not an integer: {entry.get('asn')!r}") from None
    score = entry.get("press_freedom_score")
    score_value = float(score) if score is not None else None
    if "prefix" in entry and entry["prefix"]:
        network, length = parse_prefix(str(entry["prefix"]))
        span = 1 << (32 - length)
        return RangeRow(network, network + span - 1, country, asn, score_value).validate()
    if "start" not in entry or "end" not in entry:
        raise ValueError(f"{where}: needs either 'prefix' or 'start'+'end'")
    start = _parse_address_or_int(str(entry["start"]), f"{where}: start")
    end = _parse_address_or_int(str(entry["end"]), f"{where}: end")
    return RangeRow(start, end, country, asn, score_value).validate()


def parse_rows_csv(text: str) -> List[RangeRow]:
    """Parse CSV range rows.

    Columns (header optional, order fixed without one):
    ``start,end,country,asn[,press_freedom_score]`` where ``start`` may be
    a CIDR prefix (then ``end`` is omitted/shifted via the header form).
    With a header, a ``prefix`` column replaces ``start``/``end``.
    """
    rows: List[RangeRow] = []
    reader = csv.reader(io.StringIO(text))
    records = [record for record in reader if record and any(cell.strip() for cell in record)]
    if not records:
        return rows
    header: Optional[List[str]] = None
    first = [cell.strip().lower() for cell in records[0]]
    if "country" in first and ("prefix" in first or "start" in first):
        header = first
        records = records[1:]
    for line_no, record in enumerate(records, start=2 if header else 1):
        where = f"row {line_no}"
        if header is not None:
            entry = {
                name: cell.strip()
                for name, cell in zip(header, record)
                if cell.strip()
            }
            rows.append(_row_from_mapping(entry, where))
            continue
        cells = [cell.strip() for cell in record]
        if len(cells) == 3 and "/" in cells[0]:
            rows.append(_row_from_mapping(
                {"prefix": cells[0], "country": cells[1], "asn": cells[2]}, where
            ))
            continue
        if len(cells) < 4:
            raise ValueError(
                f"{where}: expected start,end,country,asn (or prefix,country,asn)"
            )
        entry = {"start": cells[0], "end": cells[1], "country": cells[2], "asn": cells[3]}
        if len(cells) > 4 and cells[4]:
            entry["press_freedom_score"] = cells[4]
        rows.append(_row_from_mapping(entry, where))
    return rows


def parse_rows_json(text: str) -> List[RangeRow]:
    """Parse a JSON list of ``{prefix|start+end, country, asn, ...}`` rows."""
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise ValueError("JSON range table must be a list of row objects")
    rows: List[RangeRow] = []
    for position, entry in enumerate(payload):
        if not isinstance(entry, dict):
            raise ValueError(f"row {position}: expected an object")
        rows.append(_row_from_mapping(entry, f"row {position}"))
    return rows


def load_rows(path: Union[str, Path], fmt: Optional[str] = None) -> List[RangeRow]:
    """Load compiler rows from a CSV or JSON table (format by extension)."""
    path = Path(path)
    if fmt is None:
        fmt = "json" if path.suffix.lower() == ".json" else "csv"
    if fmt not in ("csv", "json"):
        raise ValueError(f"unknown range-table format {fmt!r} (csv or json)")
    text = path.read_text()
    return parse_rows_json(text) if fmt == "json" else parse_rows_csv(text)


def rows_from_registry(registry) -> List[RangeRow]:
    """Export a :class:`~repro.sim.geo.GeoRegistry` as compiler rows.

    One /16 range per registered AS, with the registry's press-freedom
    scores attached — compiling these yields a range DB that resolves
    exactly like the synthetic provider (the cross-provider equivalence
    fixture used by tests, the benchmark, and the CI geo-smoke job).
    Duplicate prefixes keep the last AS, matching the registry's own
    prefix→ASN table construction.
    """
    by_prefix: Dict[Tuple[int, int], object] = {}
    for asys in registry.autonomous_systems:
        by_prefix[asys.ipv4_prefix] = asys
    rows: List[RangeRow] = []
    for (first, second), asys in by_prefix.items():
        start = (first << 24) | (second << 16)
        country = registry.country(asys.country_code)
        rows.append(
            RangeRow(
                start=start,
                end=start + 0xFFFF,
                country=asys.country_code,
                asn=asys.asn,
                press_freedom_score=country.press_freedom_score,
            )
        )
    rows.sort(key=lambda row: row.start)
    return rows


# --------------------------------------------------------------------------- #
# Compiler
# --------------------------------------------------------------------------- #
def _cidr_length(start: int, end: int) -> int:
    """Prefix length if ``[start, end]`` is exactly one CIDR block, else 0."""
    span = end - start + 1
    if span & (span - 1):
        return 0
    length = 33 - span.bit_length()
    if length and start & ((1 << (32 - length)) - 1):
        return 0
    if length == 0 and start != 0:
        return 0
    return length


def compile_range_db(
    rows: Sequence[RangeRow], path: Union[str, Path]
) -> Dict[str, int]:
    """Sort, validate, coalesce and write the binary range database.

    Returns compiler statistics: source rows, coalesced ranges written,
    countries, and the output size in bytes.  Raises ``ValueError`` on an
    empty table or overlapping ranges (named by address so the offending
    source row is findable).
    """
    if not rows:
        raise ValueError("a range database needs at least one range")
    ordered = sorted((row.validate() for row in rows), key=lambda r: (r.start, r.end))

    coalesced: List[RangeRow] = []
    scores: Dict[str, float] = {}
    for row in ordered:
        if row.press_freedom_score is not None and not math.isnan(row.press_freedom_score):
            scores.setdefault(row.country, row.press_freedom_score)
        if coalesced:
            previous = coalesced[-1]
            if row.start <= previous.end:
                raise ValueError(
                    f"overlapping ranges: {int_to_ipv4(previous.start)}-"
                    f"{int_to_ipv4(previous.end)} and {int_to_ipv4(row.start)}-"
                    f"{int_to_ipv4(row.end)}"
                )
            if (
                row.start == previous.end + 1
                and row.country == previous.country
                and row.asn == previous.asn
            ):
                coalesced[-1] = RangeRow(
                    previous.start, row.end, previous.country, previous.asn,
                    previous.press_freedom_score,
                )
                continue
        coalesced.append(row)

    countries = sorted({row.country for row in coalesced})
    country_index = {code: position for position, code in enumerate(countries)}

    starts = np.asarray([row.start for row in coalesced], dtype="<u4")
    ends = np.asarray([row.end for row in coalesced], dtype="<u4")
    asns = np.asarray([row.asn for row in coalesced], dtype="<u4")
    country_idx = np.asarray(
        [country_index[row.country] for row in coalesced], dtype="<u2"
    )
    prefix_len = np.asarray(
        [_cidr_length(row.start, row.end) for row in coalesced], dtype="u1"
    )
    score_table = np.asarray(
        [scores.get(code, float("nan")) for code in countries], dtype="<f4"
    )

    blob = bytearray()
    blob += _HEADER.pack(_MAGIC, _VERSION, len(countries), len(coalesced))
    country_bytes = b"".join(code.encode("ascii") for code in countries)
    blob += country_bytes
    if len(country_bytes) % 4:
        blob += b"\x00" * (4 - len(country_bytes) % 4)
    for column in (score_table, starts, ends, asns, country_idx, prefix_len):
        blob += column.tobytes()

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(bytes(blob))
    os.replace(temp, path)
    return {
        "source_rows": len(rows),
        "ranges": len(coalesced),
        "countries": len(countries),
        "bytes": len(blob),
    }


# --------------------------------------------------------------------------- #
# Reader / provider
# --------------------------------------------------------------------------- #
class RangeDbProvider(GeoProvider):
    """mmap-backed reader over a compiled sorted-range database.

    IPv4 lookups are one ``searchsorted`` over the zero-copy ``starts``
    column plus an inclusion check against ``ends``; IPv6 (and malformed)
    addresses resolve to *unknown* — a real deployment would pair this DB
    with a v6 table, which the format version field leaves room for.
    """

    name = "range-db"

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        buffer = self._mmap
        if len(buffer) < _HEADER.size:
            raise ValueError(f"{self.path}: truncated range database header")
        magic, version, country_count, range_count = _HEADER.unpack_from(buffer, 0)
        if magic != _MAGIC:
            raise ValueError(f"{self.path}: not a range database (bad magic)")
        if version != _VERSION:
            raise ValueError(
                f"{self.path}: unsupported range-db version {version} "
                f"(expected {_VERSION})"
            )
        if range_count == 0:
            raise ValueError(f"{self.path}: empty range database")
        offset = _HEADER.size
        raw_codes = bytes(buffer[offset : offset + 2 * country_count])
        if len(raw_codes) != 2 * country_count:
            raise ValueError(f"{self.path}: truncated country table")
        self._country_codes: Tuple[str, ...] = tuple(
            raw_codes[i : i + 2].decode("ascii") for i in range(0, len(raw_codes), 2)
        )
        offset += 2 * country_count
        if offset % 4:
            offset += 4 - offset % 4

        def column(dtype: str, count: int) -> np.ndarray:
            nonlocal offset
            nbytes = np.dtype(dtype).itemsize * count
            if offset + nbytes > len(buffer):
                raise ValueError(f"{self.path}: truncated column data")
            array = np.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
            offset += nbytes
            return array

        self._scores = column("<f4", country_count)
        self._starts = column("<u4", range_count)
        self._ends = column("<u4", range_count)
        self._asns = column("<u4", range_count)
        self._country_idx = column("<u2", range_count)
        self._prefix_len = column("u1", range_count)
        if offset > len(buffer):
            raise ValueError(f"{self.path}: truncated range database")

    def close(self) -> None:
        """Release the mapping (best-effort).

        The column attributes are zero-copy views into the mmap, so they
        must be dropped before the map can close; if a caller still holds
        a view the close is deferred to garbage collection.
        """
        for name in (
            "_scores", "_starts", "_ends", "_asns", "_country_idx", "_prefix_len"
        ):
            if hasattr(self, name):
                delattr(self, name)
        try:
            self._mmap.close()
        except BufferError:
            pass

    def __len__(self) -> int:
        return int(self._starts.size)

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def _row_for(self, value: int) -> int:
        """Index of the range containing ``value``, or -1."""
        position = int(np.searchsorted(self._starts, value, side="right")) - 1
        if position < 0 or value > int(self._ends[position]):
            return -1
        return position

    def _enrichment_for_row(self, ip: str, row: int) -> Enrichment:
        length = int(self._prefix_len[row])
        prefix = (
            prefix_string(int(self._starts[row]), length) if length else None
        )
        return Enrichment(
            ip=ip,
            country=self._country_codes[int(self._country_idx[row])],
            asn=int(self._asns[row]),
            prefix=prefix,
        )

    def lookup(self, ip: str) -> Enrichment:
        value = ipv4_to_int(ip)
        if value is None:
            return Enrichment(ip=ip, country=None, asn=SENTINEL_ASN, prefix=None)
        row = self._row_for(value)
        if row < 0:
            return Enrichment(ip=ip, country=None, asn=SENTINEL_ASN, prefix=None)
        return self._enrichment_for_row(ip, row)

    def lookup_batch(self, ips: Sequence[str]) -> List[Enrichment]:
        return [self.lookup(ip) for ip in ips]

    def resolve_ints(self, addrs: np.ndarray) -> np.ndarray:
        flat = np.ascontiguousarray(addrs, dtype=np.uint32)
        positions = np.searchsorted(self._starts, flat, side="right") - 1
        clipped = np.maximum(positions, 0)
        inside = (positions >= 0) & (flat <= self._ends[clipped])
        return np.where(inside, self._asns[clipped], np.uint32(SENTINEL_ASN))

    # ------------------------------------------------------------------ #
    # Country metadata
    # ------------------------------------------------------------------ #
    def countries(self) -> Tuple[str, ...]:
        return self._country_codes

    def press_freedom_score(self, country_code: str) -> Optional[float]:
        try:
            position = self._country_codes.index(country_code)
        except ValueError:
            return None
        score = float(self._scores[position])
        return None if math.isnan(score) else score

    def country_prefixes(self, country_code: str) -> Tuple[str, ...]:
        try:
            position = self._country_codes.index(country_code)
        except ValueError:
            return ()
        rows = np.nonzero(self._country_idx == position)[0]
        prefixes: List[Tuple[int, int]] = []
        for row in rows.tolist():
            prefixes.extend(
                split_range_to_prefixes(int(self._starts[row]), int(self._ends[row]))
            )
        prefixes.sort()
        return tuple(prefix_string(network, length) for network, length in prefixes)
