"""The geo/ASN enrichment interface: one provider contract, many backends.

The paper resolves every observed peer IP to a country and an ASN with a
locally installed MaxMind database (Section 3, Section 5.3.2).  Historically
this reproduction hard-wired that resolution to the synthetic
:class:`~repro.sim.geo.GeoRegistry`; this package turns it into a *plane*:
one :class:`GeoProvider` interface with pluggable implementations —

* :class:`~repro.enrichment.synthetic.SyntheticProvider` wraps the existing
  registry (the default; byte-identical to the historical path);
* :class:`~repro.enrichment.rangedb.RangeDbProvider` reads a compact
  sorted-range binary database compiled from CSV/JSON range tables
  (``repro geo build-db``), mmap-backed like an offline GeoLite2 reader;
* :class:`~repro.enrichment.cache.HybridCacheProvider` fronts any provider
  with an in-memory LRU + on-disk cache tier and hit/miss/eviction counters.

Every lookup returns an :class:`Enrichment`: the resolved country, the ASN
(:data:`SENTINEL_ASN` = 0 for *unknown*, mirroring pyasn's convention of a
falsy ASN for unrouted space), and the originating prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SENTINEL_ASN",
    "Enrichment",
    "GeoProvider",
    "ipv4_to_int",
    "int_to_ipv4",
    "parse_prefix",
    "prefix_string",
    "split_range_to_prefixes",
]

#: The "unknown" ASN: gaps in the prefix/range tables resolve here.  Zero is
#: reserved by RFC 7607 and can never be a real origin AS, so it doubles as
#: a vectorisation-friendly sentinel (miss rows stay 0 in a batch result).
SENTINEL_ASN = 0

_MAX_IPV4 = 0xFFFFFFFF


@dataclass(frozen=True, slots=True)
class Enrichment:
    """One resolved address: where it is and which prefix covered it.

    ``asn`` is :data:`SENTINEL_ASN` (0) and ``country``/``prefix`` are
    ``None`` when the address falls outside the provider's tables.
    Slotted + frozen: cache tiers hold many of these.
    """

    ip: str
    country: Optional[str]
    asn: int
    prefix: Optional[str]

    @property
    def known(self) -> bool:
        return self.country is not None or self.asn != SENTINEL_ASN

    def as_dict(self) -> Dict[str, object]:
        return {
            "ip": self.ip,
            "country": self.country,
            "asn": self.asn,
            "prefix": self.prefix,
        }


def ipv4_to_int(ip: str) -> Optional[int]:
    """Parse dotted-quad IPv4 into a 32-bit integer (None if not IPv4)."""
    parts = ip.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        if not part.isdigit():
            return None
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


def int_to_ipv4(value: int) -> str:
    return (
        f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}."
        f"{(value >> 8) & 0xFF}.{value & 0xFF}"
    )


def parse_prefix(prefix: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` into ``(network, length)``.

    The network is canonicalised (host bits cleared); raises ``ValueError``
    for anything that is not a valid IPv4 CIDR prefix.
    """
    text = prefix.strip()
    if "/" not in text:
        raise ValueError(f"not a CIDR prefix (missing /length): {prefix!r}")
    address, _, length_text = text.partition("/")
    base = ipv4_to_int(address)
    if base is None:
        raise ValueError(f"not a valid IPv4 prefix address: {prefix!r}")
    try:
        length = int(length_text)
    except ValueError:
        raise ValueError(f"not a valid prefix length: {prefix!r}") from None
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length out of range 0-32: {prefix!r}")
    mask = 0 if length == 0 else (_MAX_IPV4 << (32 - length)) & _MAX_IPV4
    return base & mask, length


def prefix_string(network: int, length: int) -> str:
    return f"{int_to_ipv4(network)}/{length}"


def split_range_to_prefixes(start: int, end: int) -> List[Tuple[int, int]]:
    """Minimal CIDR cover of the inclusive range ``[start, end]``.

    The standard greedy split: at each step take the largest aligned block
    starting at ``start`` that does not overshoot ``end``.  This is how a
    range-table database answers "which prefixes does this censor block".
    """
    if start > end:
        raise ValueError(f"range start {start} exceeds end {end}")
    if end > _MAX_IPV4:
        raise ValueError(f"range end {end} exceeds the IPv4 space")
    prefixes: List[Tuple[int, int]] = []
    while start <= end:
        size = start & -start if start else 1 << 32
        while start + size - 1 > end:
            size >>= 1
        prefixes.append((start, 33 - size.bit_length()))
        start += size
    return prefixes


class GeoProvider:
    """The enrichment contract every backend implements.

    Scalar :meth:`lookup` serves debug tooling and cache cascades; the
    vectorised :meth:`resolve_ints` serves analysis hot paths (censorship
    curves, benchmarks) where addresses are already 32-bit integers.
    Subclasses must implement :meth:`lookup`; the batch forms have generic
    fallbacks and vectorised overrides where the backend allows it.
    """

    #: Short identifier shown by ``repro geo lookup`` and the benchmarks.
    name = "abstract"

    # -- resolution ---------------------------------------------------- #
    def lookup(self, ip: str) -> Enrichment:
        raise NotImplementedError

    def lookup_batch(self, ips: Sequence[str]) -> List[Enrichment]:
        """Resolve many addresses; same results as per-address lookups."""
        return [self.lookup(ip) for ip in ips]

    def resolve_ints(self, addrs: np.ndarray) -> np.ndarray:
        """ASNs for a uint32 IPv4 address array (0 = unknown).

        Generic fallback loops over :meth:`lookup`; binary backends
        override it with a pure-NumPy path.
        """
        flat = np.asarray(addrs, dtype=np.uint32)
        out = np.empty(flat.size, dtype=np.uint32)
        for row, value in enumerate(flat.tolist()):
            out[row] = self.lookup(int_to_ipv4(value)).asn
        return out

    # -- country metadata (the censorship/press-freedom side) ---------- #
    def press_freedom_score(self, country_code: str) -> Optional[float]:
        """RSF press-freedom score for a country (None if unknown)."""
        return None

    def country_prefixes(self, country_code: str) -> Tuple[str, ...]:
        """The address prefixes originating in a country, sorted.

        This is the censor-profile source: a prefix-granular national
        censor blocks exactly these.  Empty when the backend cannot
        enumerate (e.g. a pure cache tier with no inner provider).
        """
        return ()

    def countries(self) -> Tuple[str, ...]:
        """Country codes the provider can enumerate (sorted; may be empty)."""
        return ()
