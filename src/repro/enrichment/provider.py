"""Provider construction and the session-active provider.

Analyses default to a module-level *active provider* so scenario executor
signatures stay untouched: the CLI (or a test) installs a provider once,
every downstream consumer (`press_freedom_summary`, the blocking curves,
`repro geo lookup`) resolves through it, and the default — when nothing was
installed — is a cached :class:`SyntheticProvider` over the calibrated
registry, i.e. the historical behaviour.

Selection knobs (CLI flags override the environment):

* ``--geo-provider`` / ``REPRO_GEO_PROVIDER`` — ``synthetic`` (default) or
  ``range-db``;
* ``--geo-db`` / ``REPRO_GEO_DB`` — path to a compiled range database
  (required for, and implies, ``range-db``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from .base import GeoProvider
from .rangedb import RangeDbProvider
from .synthetic import SyntheticProvider

__all__ = [
    "PROVIDER_KINDS",
    "build_provider",
    "default_provider",
    "get_active_provider",
    "resolve_provider",
    "set_active_provider",
    "use_provider",
]

#: Environment knobs mirrored by the CLI flags.
ENV_PROVIDER = "REPRO_GEO_PROVIDER"
ENV_DB = "REPRO_GEO_DB"

PROVIDER_KINDS = ("synthetic", "range-db")

_default: Optional[SyntheticProvider] = None
_active: Optional[GeoProvider] = None


def default_provider() -> SyntheticProvider:
    """The cached synthetic provider over the calibrated default registry."""
    global _default
    if _default is None:
        _default = SyntheticProvider()
    return _default


def build_provider(
    kind: Optional[str] = None, db_path: Optional[str] = None
) -> GeoProvider:
    """Build a provider from explicit choices, falling back to the env.

    Raises ``ValueError`` with a one-line message (the CLI's exit-2 style)
    for unknown kinds, a missing ``--geo-db`` with ``range-db``, or an
    unreadable/invalid database file.
    """
    if kind is None:
        kind = os.environ.get(ENV_PROVIDER, "").strip() or None
    if db_path is None:
        db_path = os.environ.get(ENV_DB, "").strip() or None
    if kind is None:
        kind = "range-db" if db_path else "synthetic"
    if kind not in PROVIDER_KINDS:
        raise ValueError(
            f"unknown geo provider {kind!r} (choose from: {', '.join(PROVIDER_KINDS)})"
        )
    if kind == "synthetic":
        return default_provider()
    if not db_path:
        raise ValueError(
            "the range-db geo provider needs a database: pass --geo-db PATH "
            f"or set {ENV_DB} (compile one with 'repro geo build-db')"
        )
    if not os.path.exists(db_path):
        raise ValueError(f"geo database not found: {db_path}")
    return RangeDbProvider(db_path)


def resolve_provider(registry=None, provider: Optional[GeoProvider] = None) -> GeoProvider:
    """The provider an analysis should resolve through.

    An explicit ``provider`` wins; a legacy ``registry`` argument is
    wrapped in a :class:`SyntheticProvider` (backwards compatibility for
    callers that still pass a :class:`~repro.sim.geo.GeoRegistry`);
    otherwise the session-active provider answers.
    """
    if provider is not None:
        return provider
    if registry is not None:
        return SyntheticProvider(registry)
    return get_active_provider()


def get_active_provider() -> GeoProvider:
    """The provider analyses resolve through (default: synthetic)."""
    return _active if _active is not None else default_provider()


def set_active_provider(provider: Optional[GeoProvider]) -> None:
    """Install the session-active provider (``None`` restores the default)."""
    global _active
    _active = provider


@contextmanager
def use_provider(provider: Optional[GeoProvider]) -> Iterator[GeoProvider]:
    """Temporarily install a provider (test/CLI scoping helper)."""
    previous = _active
    set_active_provider(provider)
    try:
        yield get_active_provider()
    finally:
        set_active_provider(previous)
