"""Hybrid in-memory LRU + on-disk enrichment cache.

A real deployment resolving millions of observed addresses against an
offline database keeps a small hot cache in memory and spills the long
tail to disk (the same two-tier shape as the exposure store's LRU +
sharded bundles).  :class:`HybridCacheProvider` fronts any
:class:`~repro.enrichment.base.GeoProvider` with that cascade:

* **memory** — an ``OrderedDict`` LRU of :class:`Enrichment` records;
* **disk** — a JSON table of records evicted from (or flushed out of)
  memory, loaded lazily and published atomically on :meth:`flush`;
* **provider** — the wrapped backend, consulted on a full miss.

Every tier transition is counted (:class:`CacheStats`), and
``lookup_with_tier`` reports which tier answered — surfaced by
``repro geo lookup`` and the BENCH ``enrichment`` section.

The vectorised ``resolve_ints`` hot path deliberately bypasses the cache
and hits the backend directly: a NumPy binary search over mmap'd columns
is faster than any per-address dict probe.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .base import Enrichment, GeoProvider

__all__ = ["CacheStats", "HybridCacheProvider"]

_TIER_MEMORY = "memory"
_TIER_DISK = "disk"
_TIER_PROVIDER = "provider"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for the two cache tiers."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.lookups
        if not total:
            return 0.0
        return (self.memory_hits + self.disk_hits) / total

    def as_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }


class HybridCacheProvider(GeoProvider):
    """LRU-in-memory + JSON-on-disk cache in front of another provider."""

    name = "hybrid-cache"

    def __init__(
        self,
        inner: GeoProvider,
        capacity: int = 4096,
        disk_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.inner = inner
        self.capacity = capacity
        self.disk_path = Path(disk_path) if disk_path is not None else None
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, Enrichment]" = OrderedDict()
        self._disk: Optional[Dict[str, Enrichment]] = None
        self._disk_dirty = False

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _disk_table(self) -> Dict[str, Enrichment]:
        if self._disk is None:
            table: Dict[str, Enrichment] = {}
            if self.disk_path is not None and self.disk_path.exists():
                try:
                    payload = json.loads(self.disk_path.read_text())
                except (OSError, ValueError):
                    payload = {}
                for ip, entry in payload.items():
                    if not isinstance(entry, dict):
                        continue
                    table[ip] = Enrichment(
                        ip=ip,
                        country=entry.get("country"),
                        asn=int(entry.get("asn", 0)),
                        prefix=entry.get("prefix"),
                    )
            self._disk = table
        return self._disk

    def flush(self, include_memory: bool = True) -> None:
        """Persist the disk tier (atomic tmp + replace); no-op when clean.

        ``include_memory`` also spills the current memory tier to disk, so
        a short-lived process (one ``repro geo lookup``) leaves its
        resolutions behind for the next invocation's disk tier.
        """
        if self.disk_path is None:
            return
        table = self._disk_table()
        if include_memory:
            for ip, entry in self._memory.items():
                if table.get(ip) != entry:
                    table[ip] = entry
                    self._disk_dirty = True
        if not self._disk_dirty:
            return
        payload = {
            ip: {"country": e.country, "asn": e.asn, "prefix": e.prefix}
            for ip, e in sorted(table.items())
        }
        self.disk_path.parent.mkdir(parents=True, exist_ok=True)
        temp = self.disk_path.with_name(self.disk_path.name + ".tmp")
        temp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temp, self.disk_path)
        self._disk_dirty = False

    # ------------------------------------------------------------------ #
    # Cascade
    # ------------------------------------------------------------------ #
    def _remember(self, enrichment: Enrichment) -> None:
        memory = self._memory
        memory[enrichment.ip] = enrichment
        memory.move_to_end(enrichment.ip)
        while len(memory) > self.capacity:
            _, evicted = memory.popitem(last=False)
            self.stats.evictions += 1
            self._disk_table()[evicted.ip] = evicted
            self._disk_dirty = True

    def lookup_with_tier(self, ip: str) -> Tuple[Enrichment, str]:
        """Resolve and report which tier answered (memory/disk/provider)."""
        cached = self._memory.get(ip)
        if cached is not None:
            self.stats.memory_hits += 1
            self._memory.move_to_end(ip)
            return cached, _TIER_MEMORY
        from_disk = self._disk_table().get(ip)
        if from_disk is not None:
            self.stats.disk_hits += 1
            self._remember(from_disk)
            return from_disk, _TIER_DISK
        self.stats.misses += 1
        resolved = self.inner.lookup(ip)
        self._remember(resolved)
        return resolved, _TIER_PROVIDER

    def lookup(self, ip: str) -> Enrichment:
        return self.lookup_with_tier(ip)[0]

    def lookup_batch(self, ips: Sequence[str]) -> List[Enrichment]:
        return [self.lookup(ip) for ip in ips]

    def resolve_ints(self, addrs: np.ndarray) -> np.ndarray:
        return self.inner.resolve_ints(addrs)

    # ------------------------------------------------------------------ #
    # Metadata passthrough
    # ------------------------------------------------------------------ #
    def press_freedom_score(self, country_code: str) -> Optional[float]:
        return self.inner.press_freedom_score(country_code)

    def country_prefixes(self, country_code: str) -> Tuple[str, ...]:
        return self.inner.country_prefixes(country_code)

    def countries(self) -> Tuple[str, ...]:
        return self.inner.countries()
