"""Synthetic enrichment provider: the GeoRegistry behind the new interface.

The default provider.  It answers exactly like the historical direct
``registry.resolve`` path — same countries, same ASNs, same unknowns — so
campaigns run with it are byte-identical to pre-enrichment-plane runs at a
fixed seed (locked in by the cross-provider equivalence tests).  On top of
the historical answers it reports the originating /16 prefix and exposes
the country metadata (press-freedom scores, per-country prefix sets) the
censorship analyses consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..sim.geo import GeoRegistry, default_registry
from .base import Enrichment, GeoProvider, SENTINEL_ASN, ipv4_to_int, prefix_string
from .radix import PrefixIndex

__all__ = ["SyntheticProvider"]


class SyntheticProvider(GeoProvider):
    """Wraps a :class:`~repro.sim.geo.GeoRegistry` as a :class:`GeoProvider`."""

    name = "synthetic"

    def __init__(self, registry: Optional[GeoRegistry] = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._index: Optional[PrefixIndex] = None
        self._prefix_owner: Optional[Dict[Tuple[int, int], object]] = None

    # ------------------------------------------------------------------ #
    # Internal tables
    # ------------------------------------------------------------------ #
    def _owners(self) -> Dict[Tuple[int, int], object]:
        """/16 prefix → owning AS, replicating the registry's last-wins map."""
        if self._prefix_owner is None:
            owners: Dict[Tuple[int, int], object] = {}
            for asys in self.registry.autonomous_systems:
                owners[asys.ipv4_prefix] = asys
            self._prefix_owner = owners
        return self._prefix_owner

    def prefix_index(self) -> PrefixIndex:
        """Lazy pyasn-style LPM index over the registry's /16 prefixes.

        Powers the vectorised :meth:`resolve_ints` hot path; scalar lookups
        keep using the registry's own dict so the historical answers (IPv6
        included) are authoritative.
        """
        if self._index is None:
            self._index = PrefixIndex(
                (
                    prefix_string((first << 24) | (second << 16), 16),
                    asys.asn,
                )
                for (first, second), asys in self._owners().items()
            )
        return self._index

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def lookup(self, ip: str) -> Enrichment:
        resolved = self.registry.resolve(ip)
        if resolved is None:
            return Enrichment(ip=ip, country=None, asn=SENTINEL_ASN, prefix=None)
        country, asn = resolved
        prefix: Optional[str] = None
        value = ipv4_to_int(ip)
        if value is not None:
            prefix = prefix_string(value & 0xFFFF0000, 16)
        return Enrichment(ip=ip, country=country, asn=asn, prefix=prefix)

    def resolve_ints(self, addrs: np.ndarray) -> np.ndarray:
        return self.prefix_index().lookup_batch(addrs)

    # ------------------------------------------------------------------ #
    # Country metadata
    # ------------------------------------------------------------------ #
    def press_freedom_score(self, country_code: str) -> Optional[float]:
        if not self.registry.has_country(country_code):
            return None
        return self.registry.country(country_code).press_freedom_score

    def country_prefixes(self, country_code: str) -> Tuple[str, ...]:
        prefixes: List[Tuple[int, int]] = []
        for (first, second), asys in self._owners().items():
            if asys.country_code == country_code:
                prefixes.append(((first << 24) | (second << 16), 16))
        prefixes.sort()
        return tuple(prefix_string(network, length) for network, length in prefixes)

    def countries(self) -> Tuple[str, ...]:
        return tuple(sorted(country.code for country in self.registry.countries))
