"""Pluggable geo/ASN enrichment plane (PR 9).

One :class:`GeoProvider` contract, three backends (synthetic registry,
mmap'd sorted-range database, pyasn-style longest-prefix-match index), a
hybrid memory+disk cache tier, and the session-active-provider plumbing
the analyses resolve through.  See ``repro geo --help`` for the tooling.
"""

from .base import (
    SENTINEL_ASN,
    Enrichment,
    GeoProvider,
    int_to_ipv4,
    ipv4_to_int,
    parse_prefix,
    prefix_string,
    split_range_to_prefixes,
)
from .cache import CacheStats, HybridCacheProvider
from .provider import (
    PROVIDER_KINDS,
    build_provider,
    default_provider,
    get_active_provider,
    resolve_provider,
    set_active_provider,
    use_provider,
)
from .radix import PrefixIndex
from .rangedb import (
    RangeDbProvider,
    RangeRow,
    compile_range_db,
    load_rows,
    rows_from_registry,
)
from .synthetic import SyntheticProvider

__all__ = [
    "SENTINEL_ASN",
    "Enrichment",
    "GeoProvider",
    "PrefixIndex",
    "RangeDbProvider",
    "RangeRow",
    "SyntheticProvider",
    "CacheStats",
    "HybridCacheProvider",
    "PROVIDER_KINDS",
    "build_provider",
    "compile_range_db",
    "default_provider",
    "get_active_provider",
    "int_to_ipv4",
    "ipv4_to_int",
    "load_rows",
    "parse_prefix",
    "prefix_string",
    "resolve_provider",
    "rows_from_registry",
    "set_active_provider",
    "split_range_to_prefixes",
    "use_provider",
]
