"""Longest-prefix-match prefix→ASN index (the pyasn-style radix lookup).

pyasn answers ``lookup(ip) -> (asn, prefix)`` from a radix tree built out
of a RIB dump.  This reproduction's address space is small enough that a
*per-prefix-length sorted-array* index beats a pointer-chasing tree: one
``np.searchsorted`` per populated prefix length, walked longest-first, so

* scalar lookups cost at most 33 binary searches (usually 1-2: only the
  populated lengths are walked);
* batch lookups vectorise — each length resolves its remaining rows with
  one masked ``searchsorted`` pass, and resolved rows drop out of the
  candidate set (longest prefix wins by construction).

Gaps resolve to :data:`~repro.enrichment.base.SENTINEL_ASN` (0).  Exact
duplicate prefixes keep the *last* entry, mirroring how a RIB dump's later
announcements supersede earlier ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .base import SENTINEL_ASN, ipv4_to_int, parse_prefix, prefix_string

__all__ = ["PrefixIndex"]

_MAX_IPV4 = 0xFFFFFFFF


def _mask_for(length: int) -> int:
    return 0 if length == 0 else (_MAX_IPV4 << (32 - length)) & _MAX_IPV4


class PrefixIndex:
    """Immutable longest-prefix-match index over ``(prefix, asn)`` entries."""

    def __init__(self, entries: Iterable[Tuple[str, int]]) -> None:
        table: Dict[Tuple[int, int], int] = {}
        for prefix, asn in entries:
            network, length = parse_prefix(prefix)
            asn = int(asn)
            if not 0 <= asn <= _MAX_IPV4:
                raise ValueError(f"ASN out of range for {prefix!r}: {asn}")
            table[(network, length)] = asn

        self._networks: Dict[int, np.ndarray] = {}
        self._asns: Dict[int, np.ndarray] = {}
        by_length: Dict[int, List[Tuple[int, int]]] = {}
        for (network, length), asn in table.items():
            by_length.setdefault(length, []).append((network, asn))
        for length, pairs in by_length.items():
            pairs.sort()
            self._networks[length] = np.asarray(
                [network for network, _ in pairs], dtype=np.uint32
            )
            self._asns[length] = np.asarray(
                [asn for _, asn in pairs], dtype=np.uint32
            )
        #: Longest first: the first populated length that matches wins.
        self._lengths: Tuple[int, ...] = tuple(sorted(by_length, reverse=True))
        self._size = len(table)

    def __len__(self) -> int:
        return self._size

    @property
    def prefix_lengths(self) -> Tuple[int, ...]:
        return self._lengths

    # ------------------------------------------------------------------ #
    # Scalar
    # ------------------------------------------------------------------ #
    def lookup(self, ip: Union[str, int]) -> Tuple[int, Optional[str]]:
        """``(asn, matched_prefix)`` — ``(0, None)`` for unknown space."""
        if isinstance(ip, str):
            value = ipv4_to_int(ip)
            if value is None:
                return SENTINEL_ASN, None
        else:
            value = int(ip)
        for length in self._lengths:
            masked = value & _mask_for(length)
            networks = self._networks[length]
            position = int(np.searchsorted(networks, masked))
            if position < networks.size and int(networks[position]) == masked:
                return int(self._asns[length][position]), prefix_string(
                    masked, length
                )
        return SENTINEL_ASN, None

    def lookup_asn(self, ip: Union[str, int]) -> int:
        return self.lookup(ip)[0]

    # ------------------------------------------------------------------ #
    # Batch
    # ------------------------------------------------------------------ #
    def lookup_batch(self, addrs: Union[np.ndarray, Sequence[int]]) -> np.ndarray:
        """ASN per address for a uint32 array (0 = unknown).

        Deterministically identical to calling :meth:`lookup` per address —
        locked in by the radix edge-case tests.
        """
        flat = np.ascontiguousarray(addrs, dtype=np.uint32)
        out = np.full(flat.size, SENTINEL_ASN, dtype=np.uint32)
        if not flat.size or not self._lengths:
            return out
        unresolved = np.arange(flat.size)
        for length in self._lengths:
            if not unresolved.size:
                break
            masked = flat[unresolved] & np.uint32(_mask_for(length))
            networks = self._networks[length]
            positions = np.searchsorted(networks, masked)
            clipped = np.minimum(positions, networks.size - 1)
            hits = networks[clipped] == masked
            if hits.any():
                hit_rows = unresolved[hits]
                out[hit_rows] = self._asns[length][clipped[hits]]
                unresolved = unresolved[~hits]
        return out
