"""Structured run telemetry: JSON-lines span/event tracing.

Every campaign-service job emits a small, append-only trace:

* **events** — point-in-time facts (``job.done``, ``job.retry``,
  ``job.dead_letter``, ``exposure.cache`` counter deltas);
* **spans** — timed phases (``job``, ``phase:resolve``, ``phase:execute``,
  ``phase:persist``) written as a ``span_start`` / ``span_end`` pair that
  shares a process-unique span id.

The sink is one JSON-lines file (one object per line, ``sort_keys`` so the
stream diffs cleanly), appended under a lock so several worker threads can
share a :class:`Telemetry` instance.  A ``path=None`` telemetry is a no-op
sink — library callers never need to guard their instrumentation.

The job queue stores each job's root span id on the job row, so a trace
can be joined back to the queue (and the other way around) by id alone.
:func:`read_events` / :func:`count_events` / :func:`span_seconds` are the
read side used by tests, CI gates, and the benchmark suite.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = [
    "Telemetry",
    "read_events",
    "count_events",
    "span_seconds",
]


class Telemetry:
    """Append-only JSON-lines span/event writer (thread-safe, optional)."""

    def __init__(
        self,
        path: Union[str, Path, None],
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path: Optional[str] = None if path is None else str(path)
        self._clock = clock
        self._lock = threading.Lock()
        self._span_counter = 0
        self._handle = None
        if self.path is not None:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    # -- write side -------------------------------------------------------- #
    def _write(self, record: Dict[str, object]) -> None:
        if self._handle is None:
            return
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            # Flush per record: an interrupted run must leave every
            # already-emitted line on disk for the resume path to count.
            self._handle.flush()

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event."""
        self._write(
            {"ts": round(self._clock(), 6), "type": "event", "name": name, **attrs}
        )

    def _next_span_id(self) -> str:
        with self._lock:
            self._span_counter += 1
            counter = self._span_counter
        return f"span-{os.getpid()}-{counter}"

    def span_start(self, name: str, **attrs: object) -> str:
        """Open a span explicitly; pair with :meth:`span_end`."""
        span_id = self._next_span_id()
        self._write(
            {
                "ts": round(self._clock(), 6),
                "type": "span_start",
                "name": name,
                "span": span_id,
                **attrs,
            }
        )
        return span_id

    def span_end(
        self, name: str, span_id: str, status: str = "ok", **attrs: object
    ) -> None:
        self._write(
            {
                "ts": round(self._clock(), 6),
                "type": "span_end",
                "name": name,
                "span": span_id,
                "status": status,
                **attrs,
            }
        )

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[str]:
        """Timed span: emits start/end records around the ``with`` body.

        Exceptions propagate (the end record carries ``status="error"`` and
        the exception type); the duration lands on the end record.
        """
        span_id = self.span_start(name, **attrs)
        start = self._clock()
        status = "ok"
        error: Optional[str] = None
        try:
            yield span_id
        except BaseException as exc:
            status = "error"
            error = type(exc).__name__
            raise
        finally:
            extra: Dict[str, object] = {
                "seconds": round(self._clock() - start, 6)
            }
            if error is not None:
                extra["error"] = error
            self.span_end(name, span_id, status=status, **extra)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- read side (tests, CI gates, benchmarks) ------------------------------- #
def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a telemetry JSONL file (missing file = empty trace)."""
    records: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except FileNotFoundError:
        pass
    return records


def count_events(
    records: List[Dict[str, object]], name: str, **match: object
) -> int:
    """How many records carry this name and match every given attribute."""
    total = 0
    for record in records:
        if record.get("name") != name:
            continue
        if all(record.get(key) == value for key, value in match.items()):
            total += 1
    return total


def span_seconds(
    records: List[Dict[str, object]], name: str
) -> List[float]:
    """Durations of every completed span with this name, in file order."""
    return [
        float(record["seconds"])
        for record in records
        if record.get("type") == "span_end"
        and record.get("name") == name
        and "seconds" in record
    ]
