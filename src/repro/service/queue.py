"""SQLite-backed persistent job queue with retries and a dead-letter table.

One ``service.sqlite`` file holds the whole campaign service state — this
module owns the ``grids`` / ``jobs`` / ``dead_letter`` tables (the result
store shares the file with its own tables).  Design points:

* **Crash-safe claims** — ``claim_next`` runs a ``BEGIN IMMEDIATE``
  transaction: select the first eligible pending job (group order, so one
  digest group drains before the next starts), flip it to ``running`` and
  stamp the claimant in the same transaction.  Two workers — threads or
  processes — can never claim the same job.
* **Retry budget with backoff** — a failed job goes back to ``pending``
  with ``not_before = now + backoff * 2^(attempt-1)``; once ``attempts``
  reaches the budget it is parked as ``failed`` and a row with the full
  traceback lands in ``dead_letter`` (``repro jobs ls`` shows both).
* **Resume semantics** — a *graceful* interrupt (SIGINT/SIGTERM reaches
  the worker loop's ``finally``) calls :meth:`mark_interrupted`, which
  un-claims the job and refunds the attempt.  A hard kill leaves the row
  ``running``; :meth:`recover_stale` re-pends it on the next run and the
  attempt stays spent — a job that repeatedly kills the process still
  drains into the dead-letter table instead of looping forever.
* **WAL journaling** — readers (``repro jobs ls``, a monitoring loop)
  never block the single writer mid-campaign.

States: ``pending`` -> ``running`` -> ``done`` | ``failed`` (terminal,
mirrored in ``dead_letter``), with ``running -> pending`` on retry,
interrupt, or stale recovery.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .grid import GridJob, GridPlan, GridSpec

__all__ = ["ClaimedJob", "JobQueue", "JOB_STATES"]

JOB_STATES = ("pending", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS grids (
    grid_id    TEXT PRIMARY KEY,
    scenario   TEXT NOT NULL,
    spec_json  TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    grid_id      TEXT NOT NULL REFERENCES grids(grid_id),
    name         TEXT NOT NULL,
    job_json     TEXT NOT NULL,
    digest       TEXT,
    group_order  INTEGER NOT NULL,
    state        TEXT NOT NULL DEFAULT 'pending',
    attempts     INTEGER NOT NULL DEFAULT 0,
    retry_budget INTEGER NOT NULL DEFAULT 3,
    not_before   REAL NOT NULL DEFAULT 0,
    claimed_by   TEXT,
    claimed_at   REAL,
    finished_at  REAL,
    run_id       TEXT,
    span_id      TEXT,
    error        TEXT,
    UNIQUE (grid_id, name)
);
CREATE INDEX IF NOT EXISTS jobs_claim
    ON jobs (state, grid_id, group_order);
CREATE TABLE IF NOT EXISTS dead_letter (
    job_id    INTEGER PRIMARY KEY REFERENCES jobs(id),
    grid_id   TEXT NOT NULL,
    name      TEXT NOT NULL,
    job_json  TEXT NOT NULL,
    attempts  INTEGER NOT NULL,
    traceback TEXT NOT NULL,
    parked_at REAL NOT NULL
);
"""


@dataclass(frozen=True)
class ClaimedJob:
    """One job leased to a worker: queue row id + the planned job value."""

    id: int
    grid_id: str
    job: GridJob
    attempts: int
    retry_budget: int


class JobQueue:
    """Persistent queue over one SQLite file (open one instance per thread)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- planning ---------------------------------------------------------- #
    def enqueue_plan(self, plan: GridPlan, now: Optional[float] = None) -> Dict[str, int]:
        """Persist a plan; idempotent for a byte-identical spec.

        The grid id is a content hash of the spec, so replanning the same
        grid inserts nothing (finished jobs keep their state — this is what
        makes ``repro grid plan && repro grid resume`` safe to re-run); a
        *different* spec hashing to an existing id cannot happen short of a
        SHA-256 collision.
        """
        now = time.time() if now is None else now
        spec_json = json.dumps(plan.spec.as_dict(), sort_keys=True, default=str)
        inserted = 0
        with self._conn:
            existing = self._conn.execute(
                "SELECT spec_json FROM grids WHERE grid_id = ?", (plan.grid_id,)
            ).fetchone()
            if existing is None:
                self._conn.execute(
                    "INSERT INTO grids (grid_id, scenario, spec_json, created_at) "
                    "VALUES (?, ?, ?, ?)",
                    (plan.grid_id, plan.spec.scenario, spec_json, now),
                )
            elif existing["spec_json"] != spec_json:
                raise ValueError(
                    f"grid {plan.grid_id!r} already exists with a different spec"
                )
            for order, job in enumerate(plan.jobs):
                # The digest column is the *group key*: digest-less
                # (message-level) jobs get a unique ``solo:`` key so group
                # leasing never needs a NULL-filter special case.
                group_key = job.digest or f"solo:{job.name}"
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO jobs "
                    "(grid_id, name, job_json, digest, group_order, retry_budget) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        plan.grid_id,
                        job.name,
                        json.dumps(job.as_dict(), sort_keys=True, default=str),
                        group_key,
                        order,
                        plan.spec.retry_budget,
                    ),
                )
                inserted += cursor.rowcount
        return {"jobs": len(plan.jobs), "inserted": inserted}

    def grid_spec(self, grid_id: str) -> GridSpec:
        row = self._conn.execute(
            "SELECT spec_json FROM grids WHERE grid_id = ?", (grid_id,)
        ).fetchone()
        if row is None:
            known = ", ".join(self.grid_ids()) or "<none>"
            raise KeyError(f"unknown grid {grid_id!r}; planned: {known}")
        return GridSpec.from_dict(json.loads(row["spec_json"]))

    def grid_ids(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT grid_id FROM grids ORDER BY created_at, grid_id"
        ).fetchall()
        return [row["grid_id"] for row in rows]

    def latest_grid_id(self) -> Optional[str]:
        ids = self.grid_ids()
        return ids[-1] if ids else None

    # -- claiming ---------------------------------------------------------- #
    def claim_next(
        self,
        worker: str,
        grid_id: Optional[str] = None,
        digest: Optional[str] = None,
        now: Optional[float] = None,
    ) -> Optional[ClaimedJob]:
        """Lease the next eligible pending job (None when none is due)."""
        now = time.time() if now is None else now
        where = ["state = 'pending'", "not_before <= ?"]
        args: List[object] = [now]
        if grid_id is not None:
            where.append("grid_id = ?")
            args.append(grid_id)
        if digest is not None:
            where.append("digest = ?")
            args.append(digest)
        query = (
            "SELECT id, grid_id, job_json, attempts, retry_budget FROM jobs "
            f"WHERE {' AND '.join(where)} ORDER BY grid_id, group_order LIMIT 1"
        )
        with self._conn:
            # BEGIN IMMEDIATE: take the write lock before reading, so a
            # concurrent claimer serialises here instead of both selecting
            # the same row.
            self._conn.execute("BEGIN IMMEDIATE")
            row = self._conn.execute(query, args).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', claimed_by = ?, "
                "claimed_at = ?, attempts = attempts + 1, error = NULL "
                "WHERE id = ?",
                (worker, now, row["id"]),
            )
        return ClaimedJob(
            id=row["id"],
            grid_id=row["grid_id"],
            job=GridJob.from_dict(json.loads(row["job_json"])),
            attempts=row["attempts"] + 1,
            retry_budget=row["retry_budget"],
        )

    def next_eligible_at(
        self, grid_id: Optional[str] = None, digest: Optional[str] = None
    ) -> Optional[float]:
        """Earliest ``not_before`` among pending jobs (None = queue drained)."""
        where = ["state = 'pending'"]
        args: List[object] = []
        if grid_id is not None:
            where.append("grid_id = ?")
            args.append(grid_id)
        if digest is not None:
            where.append("digest = ?")
            args.append(digest)
        row = self._conn.execute(
            f"SELECT MIN(not_before) AS t FROM jobs WHERE {' AND '.join(where)}",
            args,
        ).fetchone()
        return None if row is None or row["t"] is None else float(row["t"])

    # -- completion -------------------------------------------------------- #
    def set_span(self, job_id: int, span_id: str) -> None:
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET span_id = ? WHERE id = ?", (span_id, job_id)
            )

    def mark_done(
        self, job_id: int, run_id: str, now: Optional[float] = None
    ) -> None:
        now = time.time() if now is None else now
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET state = 'done', finished_at = ?, run_id = ?, "
                "error = NULL WHERE id = ?",
                (now, run_id, job_id),
            )

    def mark_failed(
        self,
        job_id: int,
        traceback_text: str,
        backoff_base: float = 0.5,
        now: Optional[float] = None,
    ) -> str:
        """Record a failed attempt; returns ``"retry"`` or ``"dead_letter"``."""
        now = time.time() if now is None else now
        with self._conn:
            row = self._conn.execute(
                "SELECT grid_id, name, job_json, attempts, retry_budget "
                "FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
            if row is None:
                raise KeyError(f"no job with id {job_id}")
            if row["attempts"] >= row["retry_budget"]:
                self._conn.execute(
                    "UPDATE jobs SET state = 'failed', finished_at = ?, "
                    "error = ?, claimed_by = NULL WHERE id = ?",
                    (now, traceback_text, job_id),
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO dead_letter "
                    "(job_id, grid_id, name, job_json, attempts, traceback, "
                    "parked_at) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        row["grid_id"],
                        row["name"],
                        row["job_json"],
                        row["attempts"],
                        traceback_text,
                        now,
                    ),
                )
                return "dead_letter"
            delay = backoff_base * (2 ** (row["attempts"] - 1))
            self._conn.execute(
                "UPDATE jobs SET state = 'pending', not_before = ?, error = ?, "
                "claimed_by = NULL WHERE id = ?",
                (now + delay, traceback_text, job_id),
            )
            return "retry"

    def mark_interrupted(self, job_id: int) -> None:
        """Graceful interrupt: un-claim the job and refund the attempt."""
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET state = 'pending', claimed_by = NULL, "
                "attempts = MAX(attempts - 1, 0) "
                "WHERE id = ? AND state = 'running'",
                (job_id,),
            )

    def recover_stale(self, grid_id: Optional[str] = None) -> int:
        """Re-pend jobs a dead process left ``running`` (attempt stays spent)."""
        query = "UPDATE jobs SET state = 'pending', claimed_by = NULL WHERE state = 'running'"
        args: List[object] = []
        if grid_id is not None:
            query += " AND grid_id = ?"
            args.append(grid_id)
        with self._conn:
            cursor = self._conn.execute(query, args)
        return cursor.rowcount

    # -- inspection -------------------------------------------------------- #
    def counts(self, grid_id: Optional[str] = None) -> Dict[str, int]:
        query = "SELECT state, COUNT(*) AS n FROM jobs"
        args: List[object] = []
        if grid_id is not None:
            query += " WHERE grid_id = ?"
            args.append(grid_id)
        query += " GROUP BY state"
        counts = {state: 0 for state in JOB_STATES}
        for row in self._conn.execute(query, args):
            counts[row["state"]] = row["n"]
        return counts

    def pending_digests(self, grid_id: str) -> List[str]:
        """Distinct group keys still pending, in group order.

        A group key is an exposure digest for exposure-consuming jobs and
        ``solo:<name>`` for message-level singletons.
        """
        rows = self._conn.execute(
            "SELECT digest, MIN(group_order) AS first FROM jobs "
            "WHERE grid_id = ? AND state = 'pending' "
            "GROUP BY digest ORDER BY first",
            (grid_id,),
        ).fetchall()
        return [row["digest"] for row in rows]

    def list_jobs(self, grid_id: Optional[str] = None) -> List[Dict[str, object]]:
        query = (
            "SELECT id, grid_id, name, digest, state, attempts, retry_budget, "
            "not_before, claimed_by, finished_at, run_id, span_id, error "
            "FROM jobs"
        )
        args: List[object] = []
        if grid_id is not None:
            query += " WHERE grid_id = ?"
            args.append(grid_id)
        query += " ORDER BY grid_id, group_order"
        return [dict(row) for row in self._conn.execute(query, args)]

    def dead_letter_jobs(
        self, grid_id: Optional[str] = None
    ) -> List[Dict[str, object]]:
        query = (
            "SELECT job_id, grid_id, name, attempts, traceback, parked_at "
            "FROM dead_letter"
        )
        args: List[object] = []
        if grid_id is not None:
            query += " WHERE grid_id = ?"
            args.append(grid_id)
        query += " ORDER BY parked_at, job_id"
        return [dict(row) for row in self._conn.execute(query, args)]
