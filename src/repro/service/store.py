"""Durable result store: run metadata, scalar summaries, figure series.

Replaces loose per-run JSON files with two SQLite tables in the service
database:

* ``payloads`` — content-addressed blobs: the canonical-JSON encoding of a
  result's scalar summaries or figure series, keyed by its SHA-256.  Two
  jobs producing identical output (the common case when a sweep point is
  insensitive to one axis) share one row.
* ``runs`` — one row per executed job, with a *deterministic* run id
  hashed from the job's identity (grid, name, scenario, scale/seed/days,
  params).  Re-recording the same job replaces its row, which is what
  makes an interrupted-then-resumed grid end byte-identical to an
  uninterrupted one.

Canonical JSON (sorted keys, tight separators, ``default=str``) is the
single encoding used for hashing, storage, and ``repro results export`` —
so "byte-identical results" is a meaningful, testable property: the export
of a store never depends on insertion order or wall-clock, only on what
was computed.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.scenario import ScenarioResult
from .grid import GridJob

__all__ = [
    "ResultStore",
    "canonical_json",
    "summary_payload",
    "series_payload",
    "run_id_for",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS payloads (
    sha256  TEXT PRIMARY KEY,
    kind    TEXT NOT NULL,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id          TEXT PRIMARY KEY,
    grid_id         TEXT,
    job_name        TEXT,
    scenario        TEXT NOT NULL,
    kind            TEXT NOT NULL,
    scale           REAL NOT NULL,
    seed            INTEGER NOT NULL,
    days            INTEGER,
    params_json     TEXT NOT NULL,
    exposure_digest TEXT,
    summary_sha     TEXT NOT NULL REFERENCES payloads(sha256),
    series_sha      TEXT NOT NULL REFERENCES payloads(sha256),
    wall_seconds    REAL,
    created_at      REAL NOT NULL
);
"""


def canonical_json(payload: object) -> str:
    """The one JSON encoding results are hashed, stored, and exported in."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def summary_payload(result: ScenarioResult) -> Dict[str, object]:
    """The scalar-summary payload: exactly ``result.summaries``."""
    return {name: dict(values) for name, values in sorted(result.summaries.items())}


def series_payload(result: ScenarioResult) -> Dict[str, object]:
    """Figure series + notes + rendered tables — the plottable remainder."""
    figures: Dict[str, object] = {}
    for figure_id in sorted(result.figures):
        figure = result.figures[figure_id]
        figures[figure_id] = {
            "title": figure.title,
            "x_label": figure.x_label,
            "y_label": figure.y_label,
            "series": {
                name: [list(point) for point in series.points]
                for name, series in sorted(figure.series.items())
            },
            "notes": list(figure.notes),
        }
    return {
        "figures": figures,
        "tables": {name: result.tables[name] for name in sorted(result.tables)},
    }


def run_id_for(
    scenario: str,
    scale: float,
    seed: int,
    days: Optional[int],
    params_json: str,
    grid_id: Optional[str] = None,
    job_name: Optional[str] = None,
) -> str:
    """Deterministic run id: the same job always lands on the same row."""
    identity = canonical_json(
        {
            "grid_id": grid_id,
            "job_name": job_name,
            "scenario": scenario,
            "scale": scale,
            "seed": seed,
            "days": days,
            "params": params_json,
        }
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]


class ResultStore:
    """Runs + content-addressed payloads over one SQLite file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = str(path)
        Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- write side -------------------------------------------------------- #
    def _put_payload(self, kind: str, payload: object) -> str:
        text = canonical_json(payload)
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self._conn.execute(
            "INSERT OR IGNORE INTO payloads (sha256, kind, payload) VALUES (?, ?, ?)",
            (sha, kind, text),
        )
        return sha

    def record_result(
        self,
        result: ScenarioResult,
        grid_id: Optional[str] = None,
        job: Optional[GridJob] = None,
        wall_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> str:
        """Persist one scenario result; returns its deterministic run id."""
        now = time.time() if now is None else now
        if job is not None:
            scenario = job.scenario
            days: Optional[int] = job.days
            params_json = canonical_json(dict(job.params))
            job_name: Optional[str] = job.name
        else:
            scenario = result.spec.name
            days = None
            params_json = canonical_json({})
            job_name = None
        run_id = run_id_for(
            scenario,
            result.scale,
            result.seed,
            days,
            params_json,
            grid_id=grid_id,
            job_name=job_name,
        )
        with self._conn:
            summary_sha = self._put_payload("summary", summary_payload(result))
            series_sha = self._put_payload("series", series_payload(result))
            self._conn.execute(
                "INSERT OR REPLACE INTO runs "
                "(run_id, grid_id, job_name, scenario, kind, scale, seed, days, "
                "params_json, exposure_digest, summary_sha, series_sha, "
                "wall_seconds, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    run_id,
                    grid_id,
                    job_name,
                    scenario,
                    result.spec.kind,
                    result.scale,
                    result.seed,
                    days,
                    params_json,
                    result.exposure_digest,
                    summary_sha,
                    series_sha,
                    wall_seconds,
                    now,
                ),
            )
        return run_id

    # -- read side --------------------------------------------------------- #
    def runs(self, grid_id: Optional[str] = None) -> List[Dict[str, object]]:
        query = (
            "SELECT run_id, grid_id, job_name, scenario, kind, scale, seed, "
            "days, params_json, exposure_digest, summary_sha, series_sha, "
            "wall_seconds, created_at FROM runs"
        )
        args: List[object] = []
        if grid_id is not None:
            query += " WHERE grid_id = ?"
            args.append(grid_id)
        query += " ORDER BY run_id"
        return [dict(row) for row in self._conn.execute(query, args)]

    def payload(self, sha: str) -> object:
        row = self._conn.execute(
            "SELECT payload FROM payloads WHERE sha256 = ?", (sha,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no payload with sha {sha!r}")
        return json.loads(row["payload"])

    def payload_text(self, sha: str) -> str:
        row = self._conn.execute(
            "SELECT payload FROM payloads WHERE sha256 = ?", (sha,)
        ).fetchone()
        if row is None:
            raise KeyError(f"no payload with sha {sha!r}")
        return row["payload"]

    def get_run(self, ref: str) -> Dict[str, object]:
        """One run by id, unique id prefix, or (grid-unique) job name."""
        rows = self._conn.execute(
            "SELECT * FROM runs WHERE run_id = ? OR run_id LIKE ? OR job_name = ? "
            "ORDER BY run_id",
            (ref, ref + "%", ref),
        ).fetchall()
        if not rows:
            raise KeyError(f"no run matching {ref!r}")
        if len(rows) > 1:
            matches = ", ".join(row["run_id"] for row in rows)
            raise KeyError(f"ambiguous run {ref!r}: matches {matches}")
        run = dict(rows[0])
        run["summary"] = self.payload(run["summary_sha"])
        run["series"] = self.payload(run["series_sha"])
        return run

    def payload_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) AS n FROM payloads").fetchone()
        return int(row["n"])

    # -- export ------------------------------------------------------------ #
    def export(self, grid_id: Optional[str] = None) -> Dict[str, object]:
        """Everything computed, minus volatile fields (timestamps, wall).

        Keyed and ordered by deterministic run id, with payloads inlined,
        so two stores that computed the same results export the same bytes
        regardless of execution order, retries, or interruptions.
        """
        exported = []
        for run in self.runs(grid_id):
            exported.append(
                {
                    "run_id": run["run_id"],
                    "grid_id": run["grid_id"],
                    "job_name": run["job_name"],
                    "scenario": run["scenario"],
                    "kind": run["kind"],
                    "scale": run["scale"],
                    "seed": run["seed"],
                    "days": run["days"],
                    "params": json.loads(str(run["params_json"])),
                    "exposure_digest": run["exposure_digest"],
                    "summary": self.payload(str(run["summary_sha"])),
                    "series": self.payload(str(run["series_sha"])),
                }
            )
        return {"format": 1, "runs": exported}

    def export_bytes(self, grid_id: Optional[str] = None) -> bytes:
        return canonical_json(self.export(grid_id)).encode("utf-8")
