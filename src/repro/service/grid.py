"""Scenario-grid planner: expand parameter axes into digest-grouped jobs.

A :class:`GridSpec` names one registered scenario plus *axes* of overrides
(``days``, ``scale``, ``seed``, or any ``params.<name>`` knob — blocking
windows, monitor fractions, censor coalitions, ...).  :func:`plan_grid`
takes their cartesian product, validates every combination through
:func:`repro.core.scenario.resolve_scenario` (so a bad axis fails at plan
time, not three jobs into a run), and asks the scenario layer which
exposure-cache digest each job will resolve through
(:func:`repro.core.scenario.scenario_exposure_digest`).

The plan is a DAG in the only shape the exposure plane needs: jobs are
grouped by digest and ordered group-by-group, so the first job of a group
builds the ``SharedExposure`` once and every sibling streams from the
in-process LRU or the on-disk bundle.  Jobs with no digest (message-level
kinds) each form their own singleton group.

Everything here is a pure value: specs and jobs round-trip through JSON
(``as_dict`` / ``from_dict``) because the queue persists them, and the
grid id is a content hash of the spec — replanning an identical grid is a
no-op, while editing any axis yields a fresh grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.scenario import (
    ScenarioSpec,
    get_scenario,
    resolve_scenario,
    scenario_exposure_digest,
)

__all__ = [
    "GridAxis",
    "GridSpec",
    "GridJob",
    "GridPlan",
    "parse_axis",
    "plan_grid",
]

#: Axis keys that override run parameters rather than ``spec.params``.
_RUN_AXES = {"days": int, "scale": float, "seed": int}


def _normalize(value: object) -> object:
    """Canonical value form: JSON lists become tuples, recursively."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(item) for item in value)
    return value


def _format_value(value: object) -> str:
    if isinstance(value, tuple):
        return ":".join(_format_value(item) for item in value)
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _parse_scalar(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def parse_axis(text: str) -> "GridAxis":
    """Parse one ``--axis KEY=V1,V2,...`` argument.

    Commas separate axis points; colons build tuple-valued points (e.g.
    ``params.fractions=0.2:0.5,0.3:0.9`` is a two-point axis of fraction
    *pairs*).  Numeric tokens become ints/floats, everything else stays a
    string.
    """
    key, sep, raw = text.partition("=")
    key = key.strip()
    if not sep or not key:
        raise ValueError(f"axis must look like KEY=V1,V2,... (got {text!r})")
    values: List[object] = []
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            values.append(tuple(_parse_scalar(part) for part in token.split(":")))
        else:
            values.append(_parse_scalar(token))
    if not values:
        raise ValueError(f"axis {key!r} needs at least one value")
    return GridAxis(key=key, values=tuple(values))


@dataclass(frozen=True)
class GridAxis:
    """One sweep dimension: a key and the values it takes."""

    key: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.key!r} needs at least one value")
        if self.key not in _RUN_AXES and not self.key.startswith("params."):
            raise ValueError(
                f"unknown axis key {self.key!r}: use days, scale, seed, "
                f"or params.<name>"
            )
        object.__setattr__(self, "values", tuple(_normalize(v) for v in self.values))

    def as_dict(self) -> Dict[str, object]:
        return {"key": self.key, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GridAxis":
        return cls(key=str(data["key"]), values=tuple(data["values"]))  # type: ignore[arg-type]


@dataclass(frozen=True)
class GridSpec:
    """A declarative grid: one registered scenario x axes of overrides."""

    scenario: str
    axes: Tuple[GridAxis, ...] = ()
    scale: float = 1.0
    seed: int = 2018
    days: Optional[int] = None
    retry_budget: int = 3

    def __post_init__(self) -> None:
        if self.retry_budget < 1:
            raise ValueError("retry budget must be at least 1")
        seen = set()
        for axis in self.axes:
            if axis.key in seen:
                raise ValueError(f"axis {axis.key!r} given twice")
            seen.add(axis.key)

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "axes": [axis.as_dict() for axis in self.axes],
            "scale": self.scale,
            "seed": self.seed,
            "days": self.days,
            "retry_budget": self.retry_budget,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GridSpec":
        return cls(
            scenario=str(data["scenario"]),
            axes=tuple(GridAxis.from_dict(axis) for axis in data["axes"]),  # type: ignore[union-attr]
            scale=float(data["scale"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            days=None if data.get("days") is None else int(data["days"]),  # type: ignore[arg-type]
            retry_budget=int(data.get("retry_budget", 3)),  # type: ignore[arg-type]
        )

    @property
    def grid_id(self) -> str:
        """Content-addressed id: identical specs plan identical grids."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, default=str)
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
        return f"{self.scenario}-{digest}"


@dataclass(frozen=True)
class GridJob:
    """One concrete cell of the grid, ready to execute and to persist."""

    name: str
    scenario: str
    scale: float
    seed: int
    days: Optional[int]
    params: Tuple[Tuple[str, object], ...] = ()
    digest: Optional[str] = None

    def resolved_spec(self) -> ScenarioSpec:
        """The validated :class:`ScenarioSpec` this job executes."""
        spec = get_scenario(self.scenario)
        if self.params:
            spec = replace(
                spec, params={**dict(spec.params), **dict(self.params)}
            )
        return resolve_scenario(spec, days=self.days)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "days": self.days,
            "params": [[key, value] for key, value in self.params],
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GridJob":
        return cls(
            name=str(data["name"]),
            scenario=str(data["scenario"]),
            scale=float(data["scale"]),  # type: ignore[arg-type]
            seed=int(data["seed"]),  # type: ignore[arg-type]
            days=None if data.get("days") is None else int(data["days"]),  # type: ignore[arg-type]
            params=tuple(
                (str(key), _normalize(value)) for key, value in data.get("params", ())  # type: ignore[union-attr]
            ),
            digest=None if data.get("digest") is None else str(data["digest"]),
        )


@dataclass
class GridPlan:
    """The planned DAG: jobs in execution order, grouped by digest."""

    spec: GridSpec
    jobs: List[GridJob] = field(default_factory=list)
    #: (digest or None, jobs) in first-seen order; ``jobs`` is their
    #: concatenation, so the queue executes one digest group at a time.
    groups: List[Tuple[Optional[str], List[GridJob]]] = field(default_factory=list)

    @property
    def grid_id(self) -> str:
        return self.spec.grid_id

    @property
    def shared_digests(self) -> List[str]:
        """Digests shared by 2+ jobs — the builds the grid amortises."""
        return [
            digest
            for digest, jobs in self.groups
            if digest is not None and len(jobs) >= 2
        ]


def plan_grid(spec: GridSpec) -> GridPlan:
    """Expand a :class:`GridSpec` into a digest-grouped :class:`GridPlan`.

    Raises ``KeyError`` for an unknown scenario and ``ValueError`` for any
    combination the scenario layer rejects (bad axis key, days override on
    a dayless kind, invalid parameter values caught at resolve time) —
    the same error contract as ``resolve_scenario``, so the CLI maps both
    to one-line exit-2 usage errors.
    """
    get_scenario(spec.scenario)  # raises KeyError with the known-names list
    # No axes -> product() yields one empty combo: a single-job grid.
    combos = itertools.product(*(axis.values for axis in spec.axes))
    jobs: List[GridJob] = []
    names: Dict[str, None] = {}
    for combo in combos:
        days = spec.days
        scale = spec.scale
        seed = spec.seed
        params: Dict[str, object] = {}
        labels: List[str] = []
        for axis, value in zip(spec.axes, combo):
            labels.append(f"{axis.key}={_format_value(value)}")
            if axis.key in _RUN_AXES:
                try:
                    value = _RUN_AXES[axis.key](value)  # type: ignore[operator]
                except (TypeError, ValueError):
                    raise ValueError(
                        f"axis {axis.key!r} needs "
                        f"{_RUN_AXES[axis.key].__name__} values "
                        f"(got {value!r})"
                    ) from None
                if axis.key == "days":
                    days = value  # type: ignore[assignment]
                elif axis.key == "scale":
                    scale = value  # type: ignore[assignment]
                else:
                    seed = value  # type: ignore[assignment]
            else:
                params[axis.key[len("params."):]] = value
        name = ",".join(labels) if labels else "base"
        if name in names:
            raise ValueError(f"duplicate grid cell {name!r} (repeated axis value?)")
        names[name] = None
        job = GridJob(
            name=name,
            scenario=spec.scenario,
            scale=scale,
            seed=seed,
            days=days,
            params=tuple(sorted(params.items())),
        )
        # Plan-time validation: a cell the engine would reject must fail
        # here, before anything is enqueued.
        resolved = job.resolved_spec()
        digest = scenario_exposure_digest(resolved, scale=scale, seed=seed)
        jobs.append(replace(job, digest=digest))

    grouped: Dict[object, List[GridJob]] = {}
    order: List[object] = []
    for job in jobs:
        # Digest-less (message-level) jobs stay singleton groups: there is
        # no exposure to share, so nothing constrains their placement.
        key: object = job.digest if job.digest is not None else ("solo", job.name)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(job)
    groups: List[Tuple[Optional[str], List[GridJob]]] = [
        (key if isinstance(key, str) else None, grouped[key]) for key in order
    ]
    ordered_jobs = [job for _, group in groups for job in group]
    return GridPlan(spec=spec, jobs=ordered_jobs, groups=groups)
