"""Grid execution: drain the job queue through shared exposure engines.

``execute_grid`` is the worker loop behind ``repro grid run|resume``:

1. re-pend any jobs a dead process left ``running`` (crash recovery);
2. claim -> execute -> persist, job by job, with per-phase telemetry
   spans and an ``exposure.cache`` counter-delta event per job (the CI
   gate sums these to prove a digest group built its population once);
3. on success record the result (deterministic run id, so resume is
   idempotent) and mark the job done; on failure hand the traceback to
   the queue's retry/dead-letter policy; on interrupt un-claim the
   in-flight job and re-raise so the CLI's signal handler semantics hold.

Because the planner ordered jobs group-by-group, a single worker with one
:class:`ExposureEngine` touches each ``SharedExposure`` exactly once per
group.  With ``workers > 1`` each thread gets its *own* engine (the engine
is not thread-safe) and leases whole digest groups off a shared iterator —
jobs in a group still share one build, groups run concurrently, and the
on-disk bundle cache is shared by path.

The loop always flushes its engines in a ``finally`` — together with the
CLI's SIGINT/SIGTERM handler this joins background bundle writes, so an
interrupted run leaves no half-written ``.exposure-*`` temp dirs behind.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.scenario import run_scenario
from ..sim.exposure import ExposureEngine
from .queue import ClaimedJob, JobQueue
from .store import ResultStore
from .telemetry import Telemetry

__all__ = ["GridRunResult", "execute_grid"]

#: Test hook: seconds to sleep inside every job execution, so integration
#: tests can interrupt a run deterministically mid-queue.
_JOB_DELAY_ENV = "REPRO_GRID_JOB_DELAY"


@dataclass
class GridRunResult:
    """What one ``execute_grid`` invocation did (not whole-grid state)."""

    grid_id: str
    executed: List[str] = field(default_factory=list)
    done: int = 0
    retried: int = 0
    dead_lettered: int = 0
    wall_seconds: float = 0.0
    job_wall_seconds: Dict[str, float] = field(default_factory=dict)
    exposure_builds: int = 0
    exposure_hits: int = 0
    exposure_disk_hits: int = 0
    interrupted: bool = False


def _job_delay() -> float:
    raw = os.environ.get(_JOB_DELAY_ENV, "").strip()
    if not raw:
        return 0.0
    try:
        return max(0.0, float(raw))
    except ValueError:
        return 0.0


def _run_claimed(
    claimed: ClaimedJob,
    queue: JobQueue,
    store: ResultStore,
    engine: ExposureEngine,
    telemetry: Telemetry,
    out: GridRunResult,
    backoff_base: float,
    progress: Optional[Callable[[str], None]],
    lock: threading.Lock,
) -> None:
    """Execute one leased job through its full lifecycle."""
    job = claimed.job
    span_id = telemetry.span_start(
        "job",
        grid=claimed.grid_id,
        job=job.name,
        digest=job.digest,
        attempt=claimed.attempts,
    )
    queue.set_span(claimed.id, span_id)
    start = time.monotonic()
    try:
        with telemetry.span("phase:resolve", job=job.name):
            spec = job.resolved_spec()
        hits0, misses0, disk0 = engine.hits, engine.misses, engine.disk_hits
        with telemetry.span("phase:execute", job=job.name):
            delay = _job_delay()
            if delay:
                time.sleep(delay)
            result = run_scenario(
                spec, scale=job.scale, seed=job.seed, engine=engine
            )
        builds = engine.misses - misses0
        hits = engine.hits - hits0
        disk_hits = engine.disk_hits - disk0
        telemetry.event(
            "exposure.cache",
            job=job.name,
            digest=result.exposure_digest,
            builds=builds,
            hits=hits,
            disk_hits=disk_hits,
        )
        wall = time.monotonic() - start
        with telemetry.span("phase:persist", job=job.name):
            run_id = store.record_result(
                result,
                grid_id=claimed.grid_id,
                job=job,
                wall_seconds=wall,
            )
        queue.mark_done(claimed.id, run_id)
        telemetry.event("job.done", job=job.name, run_id=run_id)
        telemetry.span_end("job", span_id, status="ok", seconds=round(wall, 6))
        with lock:
            out.done += 1
            out.executed.append(job.name)
            out.job_wall_seconds[job.name] = wall
            out.exposure_builds += builds
            out.exposure_hits += hits
            out.exposure_disk_hits += disk_hits
        if progress is not None:
            progress(f"[done] {job.name} -> run {run_id}")
    except (KeyboardInterrupt, SystemExit, GeneratorExit):
        # Graceful interrupt: the attempt is refunded and the job goes
        # straight back to pending — resume picks it up first.
        queue.mark_interrupted(claimed.id)
        telemetry.event("job.interrupted", job=job.name)
        telemetry.span_end("job", span_id, status="interrupted")
        with lock:
            out.interrupted = True
        raise
    except Exception as error:
        tb = traceback.format_exc()
        outcome = queue.mark_failed(claimed.id, tb, backoff_base=backoff_base)
        telemetry.event(
            f"job.{outcome}",
            job=job.name,
            attempt=claimed.attempts,
            error=f"{type(error).__name__}: {error}",
        )
        telemetry.span_end("job", span_id, status="error")
        with lock:
            out.executed.append(job.name)
            if outcome == "dead_letter":
                out.dead_lettered += 1
            else:
                out.retried += 1
        if progress is not None:
            progress(
                f"[{outcome}] {job.name} (attempt {claimed.attempts}"
                f"/{claimed.retry_budget}): {type(error).__name__}: {error}"
            )


class _Budget:
    """Shared --max-jobs allowance across worker threads."""

    def __init__(self, limit: Optional[int]) -> None:
        self._remaining = limit
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self._remaining is None:
                return True
            if self._remaining <= 0:
                return False
            self._remaining -= 1
            return True

    def refund(self) -> None:
        with self._lock:
            if self._remaining is not None:
                self._remaining += 1


def _drain(
    db_path: str,
    grid_id: str,
    digest_filter: Optional[str],
    worker: str,
    store: ResultStore,
    engine: ExposureEngine,
    telemetry: Telemetry,
    out: GridRunResult,
    budget: _Budget,
    backoff_base: float,
    progress: Optional[Callable[[str], None]],
    lock: threading.Lock,
    stop: threading.Event,
) -> None:
    """Claim-and-run until this slice of the queue is empty."""
    with JobQueue(db_path) as queue:
        while not stop.is_set():
            if not budget.take():
                return
            claimed = queue.claim_next(worker, grid_id=grid_id, digest=digest_filter)
            if claimed is None:
                budget.refund()
                # Distinguish "drained" from "every pending job is backing
                # off": in the latter case wait out the earliest retry.
                eligible_at = queue.next_eligible_at(grid_id, digest_filter)
                if eligible_at is None:
                    return
                wait = max(0.0, eligible_at - time.time())
                if stop.wait(min(wait, 0.5) if wait else 0.01):
                    return
                continue
            _run_claimed(
                claimed,
                queue,
                store,
                engine,
                telemetry,
                out,
                backoff_base,
                progress,
                lock,
            )


def execute_grid(
    db_path: str,
    grid_id: str,
    engine_factory: Callable[[], ExposureEngine],
    telemetry: Optional[Telemetry] = None,
    workers: int = 1,
    max_jobs: Optional[int] = None,
    backoff_base: float = 0.5,
    progress: Optional[Callable[[str], None]] = None,
    worker_name: Optional[str] = None,
) -> GridRunResult:
    """Execute (or resume) one grid's queue until drained or interrupted."""
    if workers < 1:
        raise ValueError("workers must be at least 1")
    telemetry = telemetry if telemetry is not None else Telemetry(None)
    out = GridRunResult(grid_id=grid_id)
    lock = threading.Lock()
    budget = _Budget(max_jobs)
    started = time.monotonic()
    base_name = worker_name or f"worker-{os.getpid()}"
    engines: List[ExposureEngine] = []
    telemetry.event("grid.start", grid=grid_id, workers=workers)
    try:
        with JobQueue(db_path) as control:
            recovered = control.recover_stale(grid_id)
            if recovered:
                telemetry.event("grid.recovered_stale", grid=grid_id, jobs=recovered)
            pending_groups = control.pending_digests(grid_id)
        stop = threading.Event()
        if workers == 1 or len(pending_groups) <= 1:
            # Serial path runs on the calling thread so SIGINT/SIGTERM land
            # inside the in-flight job and its interrupt handling applies.
            engine = engine_factory()
            engines.append(engine)
            store = ResultStore(db_path)
            try:
                _drain(
                    db_path, grid_id, None, base_name, store, engine,
                    telemetry, out, budget, backoff_base, progress, lock, stop,
                )
            finally:
                store.close()
        else:
            # One thread per worker, each leasing whole digest groups off a
            # shared iterator: jobs in a group share that thread's engine.
            group_iter = iter(pending_groups)
            group_lock = threading.Lock()

            def lease() -> Optional[object]:
                with group_lock:
                    return next(group_iter, None)

            def worker_main(index: int) -> None:
                engine = engine_factory()
                with lock:
                    engines.append(engine)
                store = ResultStore(db_path)
                try:
                    while not stop.is_set():
                        digest = lease()
                        if digest is None:
                            return
                        _drain(
                            db_path, grid_id, str(digest),
                            f"{base_name}.{index}", store, engine, telemetry,
                            out, budget, backoff_base, progress, lock, stop,
                        )
                finally:
                    store.close()

            threads = [
                threading.Thread(
                    target=worker_main, args=(index,), daemon=True,
                    name=f"grid-worker-{index}",
                )
                for index in range(workers)
            ]
            for thread in threads:
                thread.start()
            try:
                for thread in threads:
                    while thread.is_alive():
                        thread.join(timeout=0.2)
            except BaseException:
                stop.set()
                out.interrupted = True
                for thread in threads:
                    thread.join(timeout=10.0)
                raise
    finally:
        # Join background bundle writes even on interrupt: no stale
        # .exposure-* temp dirs may survive a killed grid run.
        for engine in engines:
            engine.flush()
        out.wall_seconds = time.monotonic() - started
        telemetry.event(
            "grid.finish",
            grid=grid_id,
            done=out.done,
            retried=out.retried,
            dead_lettered=out.dead_lettered,
            interrupted=out.interrupted,
            seconds=round(out.wall_seconds, 6),
        )
    return out
