"""Campaign service: plan, queue, execute, and persist scenario grids.

The paper's headline results are parameter *sweeps*; this package turns a
sweep into a durable campaign instead of N ad-hoc ``repro run`` calls:

* :mod:`repro.service.grid` — declarative :class:`GridSpec` expansion into
  concrete jobs, grouped by exposure-cache digest so each shared
  ``SharedExposure`` is built exactly once per grid;
* :mod:`repro.service.queue` — SQLite-backed persistent job queue with
  crash-safe claims, retry budgets with exponential backoff, and a
  dead-letter table for poison jobs;
* :mod:`repro.service.store` — durable result store with content-addressed
  payload dedup and deterministic run ids (resume is idempotent);
* :mod:`repro.service.telemetry` — structured JSON-lines span/event traces
  attached to every job row;
* :mod:`repro.service.runner` — the worker loop behind
  ``repro grid run|resume`` tying the four layers together.

All state lives in one SQLite file (``--service-db`` /
``$REPRO_SERVICE_DB``, defaulting next to the exposure cache), so a
campaign survives interrupts, crashes, and process restarts.
"""

from .grid import GridAxis, GridJob, GridPlan, GridSpec, parse_axis, plan_grid
from .queue import ClaimedJob, JobQueue
from .runner import GridRunResult, execute_grid
from .store import ResultStore, canonical_json, summary_payload
from .telemetry import Telemetry, count_events, read_events, span_seconds

__all__ = [
    "GridAxis",
    "GridJob",
    "GridPlan",
    "GridSpec",
    "parse_axis",
    "plan_grid",
    "ClaimedJob",
    "JobQueue",
    "GridRunResult",
    "execute_grid",
    "ResultStore",
    "canonical_json",
    "summary_payload",
    "Telemetry",
    "count_events",
    "read_events",
    "span_seconds",
]
