"""Compiler + mmap-reader tests for the sorted-range geo database."""

import numpy as np
import pytest

from repro.enrichment import (
    SENTINEL_ASN,
    RangeDbProvider,
    RangeRow,
    compile_range_db,
    ipv4_to_int,
    load_rows,
    rows_from_registry,
    split_range_to_prefixes,
)
from repro.enrichment.rangedb import parse_rows_csv, parse_rows_json
from repro.sim.geo import default_registry


def _row(start, end, country="US", asn=1, score=None):
    return RangeRow(ipv4_to_int(start), ipv4_to_int(end), country, asn, score)


class TestCompiler:
    def test_adjacent_same_owner_ranges_coalesce(self, tmp_path):
        rows = [
            _row("10.0.0.0", "10.0.255.255", "US", 7),
            _row("10.1.0.0", "10.1.255.255", "US", 7),
            _row("10.2.0.0", "10.2.255.255", "US", 8),
        ]
        stats = compile_range_db(rows, tmp_path / "geo.db")
        assert stats["source_rows"] == 3
        assert stats["ranges"] == 2  # first two merge, third differs by ASN
        db = RangeDbProvider(tmp_path / "geo.db")
        assert db.lookup("10.0.5.5").asn == 7
        assert db.lookup("10.1.5.5").asn == 7
        assert db.lookup("10.2.5.5").asn == 8

    def test_adjacent_different_country_does_not_coalesce(self, tmp_path):
        rows = [
            _row("10.0.0.0", "10.0.255.255", "US", 7),
            _row("10.1.0.0", "10.1.255.255", "CA", 7),
        ]
        stats = compile_range_db(rows, tmp_path / "geo.db")
        assert stats["ranges"] == 2

    def test_overlap_rejected(self, tmp_path):
        rows = [
            _row("10.0.0.0", "10.0.255.255"),
            _row("10.0.128.0", "10.1.255.255"),
        ]
        with pytest.raises(ValueError, match="overlapping"):
            compile_range_db(rows, tmp_path / "geo.db")

    def test_empty_table_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            compile_range_db([], tmp_path / "geo.db")

    def test_invalid_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="exceeds end"):
            compile_range_db([_row("10.1.0.0", "10.0.0.0")], tmp_path / "geo.db")
        with pytest.raises(ValueError, match="country"):
            compile_range_db(
                [RangeRow(0, 10, "USA", 1)], tmp_path / "geo.db"
            )

    def test_exact_cidr_range_records_prefix(self, tmp_path):
        rows = [
            _row("10.0.0.0", "10.0.255.255", "US", 1),  # one /16
            _row("10.2.0.0", "10.2.0.100", "US", 2),  # not a single CIDR
        ]
        compile_range_db(rows, tmp_path / "geo.db")
        db = RangeDbProvider(tmp_path / "geo.db")
        assert db.lookup("10.0.1.2").prefix == "10.0.0.0/16"
        assert db.lookup("10.2.0.50").prefix is None
        assert db.lookup("10.2.0.50").asn == 2


class TestReader:
    def test_gap_resolves_to_unknown(self, tmp_path):
        compile_range_db(
            [_row("10.0.0.0", "10.0.255.255", "US", 1)], tmp_path / "geo.db"
        )
        db = RangeDbProvider(tmp_path / "geo.db")
        missing = db.lookup("11.0.0.1")
        assert missing.asn == SENTINEL_ASN
        assert missing.country is None
        assert not missing.known

    def test_resolve_ints_matches_scalar(self, tmp_path):
        rows = rows_from_registry(default_registry())
        compile_range_db(rows, tmp_path / "geo.db")
        db = RangeDbProvider(tmp_path / "geo.db")
        rng = np.random.default_rng(99)
        addrs = rng.integers(0, 2**32, size=3000, dtype=np.uint32)
        batch = db.resolve_ints(addrs)
        from repro.enrichment import int_to_ipv4

        scalar = np.array(
            [db.lookup(int_to_ipv4(int(a))).asn for a in addrs], dtype=np.uint32
        )
        assert np.array_equal(batch, scalar)

    def test_country_metadata(self, tmp_path):
        rows = [
            _row("10.0.0.0", "10.0.255.255", "CN", 4134, 78.3),
            _row("20.0.0.0", "20.0.255.255", "US", 7922, 23.7),
        ]
        compile_range_db(rows, tmp_path / "geo.db")
        db = RangeDbProvider(tmp_path / "geo.db")
        assert db.countries() == ("CN", "US")
        assert db.press_freedom_score("CN") == pytest.approx(78.3)
        assert db.press_freedom_score("XX") is None
        assert db.country_prefixes("CN") == ("10.0.0.0/16",)

    def test_country_prefixes_split_non_cidr_ranges(self, tmp_path):
        compile_range_db(
            [_row("10.0.0.0", "10.0.0.11", "US", 1)], tmp_path / "geo.db"
        )
        db = RangeDbProvider(tmp_path / "geo.db")
        start, end = ipv4_to_int("10.0.0.0"), ipv4_to_int("10.0.0.11")
        expected = split_range_to_prefixes(start, end)
        assert db.country_prefixes("US") == tuple(
            f"10.0.0.{network & 255}/{length}" for network, length in expected
        )

    def test_ipv6_and_garbage_are_unknown(self, tmp_path):
        compile_range_db([_row("10.0.0.0", "10.0.0.255")], tmp_path / "geo.db")
        db = RangeDbProvider(tmp_path / "geo.db")
        assert db.lookup("2a01:db8::1").asn == SENTINEL_ASN
        assert db.lookup("bogus").asn == SENTINEL_ASN

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "geo.db"
        path.write_bytes(b"NOTADB00" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            RangeDbProvider(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "geo.db"
        compile_range_db([_row("10.0.0.0", "10.0.0.255")], path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 4])
        with pytest.raises(ValueError, match="truncated"):
            RangeDbProvider(path)


class TestSourceParsing:
    def test_csv_with_header_and_prefix_column(self):
        rows = parse_rows_csv(
            "prefix,country,asn,press_freedom_score\n"
            "10.0.0.0/16,US,7922,23.7\n"
            "10.1.0.0/16,CN,4134,78.3\n"
        )
        assert len(rows) == 2
        assert rows[0].country == "US"
        assert rows[0].end - rows[0].start == 0xFFFF
        assert rows[1].press_freedom_score == pytest.approx(78.3)

    def test_headerless_csv_start_end_form(self):
        rows = parse_rows_csv("10.0.0.0,10.0.0.255,US,1\n")
        assert rows[0].start == ipv4_to_int("10.0.0.0")
        assert rows[0].end == ipv4_to_int("10.0.0.255")

    def test_headerless_csv_prefix_form(self):
        rows = parse_rows_csv("10.0.0.0/24,US,1\n")
        assert rows[0].end - rows[0].start == 255

    def test_json_rows(self):
        rows = parse_rows_json(
            '[{"prefix": "10.0.0.0/16", "country": "us", "asn": 7},'
            ' {"start": "10.1.0.0", "end": "10.1.0.255", "country": "CA",'
            '  "asn": 8, "press_freedom_score": 15.3}]'
        )
        assert rows[0].country == "US"  # codes are upper-cased
        assert rows[1].press_freedom_score == pytest.approx(15.3)

    def test_json_must_be_a_list(self):
        with pytest.raises(ValueError, match="list"):
            parse_rows_json('{"prefix": "10.0.0.0/16"}')

    def test_malformed_rows_rejected(self):
        with pytest.raises(ValueError):
            parse_rows_csv("10.0.0.0,US\n")
        with pytest.raises(ValueError):
            parse_rows_csv("nonsense,more,US,1\n")

    def test_load_rows_by_extension(self, tmp_path):
        csv_path = tmp_path / "rows.csv"
        csv_path.write_text("10.0.0.0/16,US,1\n")
        json_path = tmp_path / "rows.json"
        json_path.write_text('[{"prefix": "10.0.0.0/16", "country": "US", "asn": 1}]')
        assert load_rows(csv_path) == load_rows(json_path)
        with pytest.raises(ValueError, match="format"):
            load_rows(csv_path, "xml")


class TestRegistryExport:
    def test_rows_cover_every_registry_prefix(self):
        registry = default_registry()
        rows = rows_from_registry(registry)
        prefixes = {(row.start >> 24, (row.start >> 16) & 255) for row in rows}
        assert prefixes == {
            asys.ipv4_prefix for asys in registry.autonomous_systems
        }

    def test_duplicate_prefixes_keep_last_as(self, tmp_path):
        # The registry's own prefix->ASN dict keeps the last AS registered
        # for a prefix; the exported rows must replicate that so the range
        # DB resolves identically.
        registry = default_registry()
        rows = {row.start: row for row in rows_from_registry(registry)}
        for (first, second), asn in registry._prefix_to_asn.items():
            start = (first << 24) | (second << 16)
            assert rows[start].asn == asn
