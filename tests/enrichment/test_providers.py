"""Provider construction, the active-provider plumbing, and the synthetic
provider's fidelity to the registry."""

import numpy as np
import pytest

from repro.enrichment import (
    SENTINEL_ASN,
    RangeDbProvider,
    SyntheticProvider,
    build_provider,
    compile_range_db,
    default_provider,
    get_active_provider,
    rows_from_registry,
    set_active_provider,
    use_provider,
)
from repro.sim.geo import default_registry


@pytest.fixture(autouse=True)
def _clean_active_provider():
    set_active_provider(None)
    yield
    set_active_provider(None)


@pytest.fixture()
def range_db_path(tmp_path):
    path = tmp_path / "geo.db"
    compile_range_db(rows_from_registry(default_registry()), path)
    return path


class TestSyntheticProvider:
    def test_matches_registry_resolution(self):
        registry = default_registry()
        provider = SyntheticProvider(registry)
        for asys in registry.autonomous_systems[:25]:
            ip = asys.ipv4_for(3)
            enrichment = provider.lookup(ip)
            expected = registry.resolve(ip)
            assert (enrichment.country, enrichment.asn) == expected
            assert enrichment.prefix == (
                f"{asys.ipv4_prefix[0]}.{asys.ipv4_prefix[1]}.0.0/16"
            )

    def test_ipv6_resolution_matches_registry(self):
        registry = default_registry()
        provider = SyntheticProvider(registry)
        asys = registry.autonomous_system(7922)
        ip = asys.ipv6_for(5)
        enrichment = provider.lookup(ip)
        assert (enrichment.country, enrichment.asn) == registry.resolve(ip)
        assert enrichment.prefix is None  # no IPv4 prefix for a v6 address

    def test_unknown_space(self):
        provider = SyntheticProvider(default_registry())
        missing = provider.lookup("203.0.113.1")
        assert missing.asn == SENTINEL_ASN
        assert missing.country is None

    def test_press_freedom_scores(self):
        registry = default_registry()
        provider = SyntheticProvider(registry)
        assert provider.press_freedom_score("CN") == registry.country(
            "CN"
        ).press_freedom_score
        assert provider.press_freedom_score("XX") is None

    def test_country_prefixes_round_trip(self):
        registry = default_registry()
        provider = SyntheticProvider(registry)
        for prefix in provider.country_prefixes("US"):
            assert provider.lookup(prefix.split("/")[0]).country == "US"


class TestCrossProviderAgreement:
    def test_range_db_matches_synthetic_on_batches(self, range_db_path):
        synthetic = SyntheticProvider(default_registry())
        range_db = RangeDbProvider(range_db_path)
        rng = np.random.default_rng(2018)
        addrs = rng.integers(0, 2**32, size=50_000, dtype=np.uint32)
        assert np.array_equal(
            synthetic.resolve_ints(addrs), range_db.resolve_ints(addrs)
        )

    def test_range_db_matches_synthetic_country_prefixes(self, range_db_path):
        synthetic = SyntheticProvider(default_registry())
        range_db = RangeDbProvider(range_db_path)
        for code in ("US", "CN", "RU", "SG", "TR"):
            assert synthetic.country_prefixes(code) == range_db.country_prefixes(code)


class TestBuildProvider:
    def test_default_is_synthetic(self):
        provider = build_provider()
        assert provider.name == "synthetic"
        assert provider is default_provider()

    def test_env_selects_range_db(self, range_db_path, monkeypatch):
        monkeypatch.setenv("REPRO_GEO_PROVIDER", "range-db")
        monkeypatch.setenv("REPRO_GEO_DB", str(range_db_path))
        provider = build_provider()
        assert provider.name == "range-db"

    def test_db_path_alone_implies_range_db(self, range_db_path):
        assert build_provider(db_path=str(range_db_path)).name == "range-db"

    def test_explicit_kind_beats_env(self, range_db_path, monkeypatch):
        monkeypatch.setenv("REPRO_GEO_PROVIDER", "range-db")
        monkeypatch.setenv("REPRO_GEO_DB", str(range_db_path))
        assert build_provider(kind="synthetic").name == "synthetic"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown geo provider"):
            build_provider(kind="mmdb")

    def test_range_db_without_path_rejected(self):
        with pytest.raises(ValueError, match="--geo-db"):
            build_provider(kind="range-db")

    def test_missing_db_file_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            build_provider(kind="range-db", db_path=str(tmp_path / "absent.db"))


class TestActiveProvider:
    def test_default_active_provider_is_synthetic(self):
        assert get_active_provider().name == "synthetic"

    def test_set_and_reset(self, range_db_path):
        provider = RangeDbProvider(range_db_path)
        set_active_provider(provider)
        assert get_active_provider() is provider
        set_active_provider(None)
        assert get_active_provider().name == "synthetic"

    def test_use_provider_restores_previous(self, range_db_path):
        provider = RangeDbProvider(range_db_path)
        with use_provider(provider) as active:
            assert active is provider
            assert get_active_provider() is provider
        assert get_active_provider().name == "synthetic"
