"""Cross-provider equivalence (the PR 9 acceptance bar).

In the spirit of ``tests/sim/test_out_of_core.py``: with the default
:class:`SyntheticProvider`, every analysis must be byte-identical to the
historical registry-coupled path at a fixed seed; and a *swapped* provider
must change every downstream analysis consistently (the satellite fix for
``press_freedom_summary`` reaching into the registry's tables).
"""

import pytest

from repro.core import run_scenario
from repro.core.blocking import country_blocking_curve, prefix_blocking_curve
from repro.core.geography import press_freedom_summary, summarize_geography
from repro.core.reporting import render_figure
from repro.enrichment import (
    RangeDbProvider,
    RangeRow,
    SyntheticProvider,
    compile_range_db,
    ipv4_to_int,
    rows_from_registry,
    set_active_provider,
    use_provider,
)
from repro.sim.geo import default_registry


@pytest.fixture(autouse=True)
def _clean_active_provider():
    set_active_provider(None)
    yield
    set_active_provider(None)


@pytest.fixture(scope="module")
def registry_range_db(tmp_path_factory):
    """A compiled range DB equivalent to the default registry."""
    path = tmp_path_factory.mktemp("geodb") / "registry.db"
    compile_range_db(rows_from_registry(default_registry()), path)
    return path


class TestDefaultPathIsByteIdentical:
    def test_press_freedom_summary_matches_registry_path(self, small_campaign):
        via_provider = press_freedom_summary(small_campaign.log)
        via_registry = press_freedom_summary(
            small_campaign.log, registry=default_registry()
        )
        assert via_provider == via_registry

    def test_geography_summary_matches_registry_path(self, small_campaign):
        assert summarize_geography(small_campaign.log) == summarize_geography(
            small_campaign.log, registry=default_registry()
        )

    def test_country_blocking_curve_matches_registry_path(self, small_campaign):
        countries = ("US", "RU", "GB")
        via_provider = country_blocking_curve(small_campaign, countries)
        via_registry = country_blocking_curve(
            small_campaign, countries, registry=default_registry()
        )
        assert render_figure(via_provider, ".3f") == render_figure(
            via_registry, ".3f"
        )

    def test_explicit_synthetic_provider_is_a_no_op(self, small_campaign):
        baseline = press_freedom_summary(small_campaign.log)
        with use_provider(SyntheticProvider(default_registry())):
            assert press_freedom_summary(small_campaign.log) == baseline


class TestRangeDbEquivalence:
    def test_registry_equivalent_db_reproduces_analyses(
        self, small_campaign, registry_range_db
    ):
        baseline_press = press_freedom_summary(small_campaign.log)
        baseline_curve = render_figure(
            prefix_blocking_curve(small_campaign, ("US", "CN", "RU")), ".3f"
        )
        with use_provider(RangeDbProvider(registry_range_db)):
            assert press_freedom_summary(small_campaign.log) == baseline_press
            assert (
                render_figure(
                    prefix_blocking_curve(small_campaign, ("US", "CN", "RU")), ".3f"
                )
                == baseline_curve
            )

    def test_prefix_blocking_scenario_reproducible_at_fixed_seed(self, tmp_path):
        runs = [
            run_scenario(
                "prefix-blocking",
                scale=0.02,
                seed=41,
                days=4,
                cache_dir=tmp_path / f"cache{i}",
            )
            for i in range(2)
        ]
        first, second = (
            render_figure(run.figures["scenario_prefix_blocking"], ".6f")
            for run in runs
        )
        assert first == second
        assert runs[0].summaries["prefix_blocking"] == runs[1].summaries[
            "prefix_blocking"
        ]


class TestSwappedProviderChangesAnalyses:
    def test_swapped_scores_flow_into_press_freedom_summary(
        self, small_campaign, tmp_path
    ):
        # A database that declares the US a poor-press-freedom country:
        # the summary must follow the provider, not the baked-in registry.
        registry = default_registry()
        rows = []
        for row in rows_from_registry(registry):
            score = 80.0 if row.country == "US" else row.press_freedom_score
            rows.append(
                RangeRow(row.start, row.end, row.country, row.asn, score)
            )
        path = tmp_path / "us_poor.db"
        compile_range_db(rows, path)

        baseline = press_freedom_summary(small_campaign.log)
        with use_provider(RangeDbProvider(path)):
            swapped = press_freedom_summary(small_campaign.log)
        assert "US" not in dict(baseline["top"])
        assert dict(swapped["top"]).get("US")
        assert swapped["total_peers"] > baseline["total_peers"]
        assert swapped["countries"] == baseline["countries"] + 1

        # ... and consistently into the aggregate geography summary.
        with use_provider(RangeDbProvider(path)):
            swapped_geo = summarize_geography(small_campaign.log)
        assert (
            swapped_geo.poor_press_freedom_peers
            == swapped["total_peers"]
        )

    def test_swapped_prefixes_flow_into_blocking_curve(
        self, small_campaign, tmp_path
    ):
        # A censor database where the US owns only ONE /16: its censor
        # profile shrinks, so the curve's first point must differ from the
        # synthetic provider's 10-prefix US profile.
        rows = [
            RangeRow(
                ipv4_to_int("24.0.0.0"), ipv4_to_int("24.0.255.255"), "US", 7922
            )
        ]
        path = tmp_path / "tiny.db"
        compile_range_db(rows, path)
        baseline = prefix_blocking_curve(small_campaign, ("US",))
        with use_provider(RangeDbProvider(path)):
            swapped = prefix_blocking_curve(small_campaign, ("US",))
        baseline_points = baseline.get("cumulative block").points
        swapped_points = swapped.get("cumulative block").points
        assert baseline_points[0][0] == 10  # all registry US prefixes
        assert swapped_points[0][0] == 1
        assert swapped_points[0][1] < baseline_points[0][1]
