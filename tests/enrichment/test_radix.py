"""Edge-case tests for the longest-prefix-match index (PR 9 satellite).

The contract under test: overlapping prefixes resolve to the *longest*
match, gaps resolve to the sentinel ASN 0, /32 host routes and the /0
default route both work, and ``lookup_batch`` is deterministically
identical to per-address ``lookup``.
"""

import numpy as np
import pytest

from repro.enrichment import SENTINEL_ASN, PrefixIndex, ipv4_to_int


class TestLongestPrefixWins:
    def test_nested_prefixes(self):
        index = PrefixIndex(
            [("10.0.0.0/8", 100), ("10.1.0.0/16", 200), ("10.1.2.0/24", 300)]
        )
        assert index.lookup("10.1.2.3") == (300, "10.1.2.0/24")
        assert index.lookup("10.1.9.9") == (200, "10.1.0.0/16")
        assert index.lookup("10.9.9.9") == (100, "10.0.0.0/8")

    def test_host_route_beats_covering_prefix(self):
        index = PrefixIndex([("192.0.2.0/24", 1), ("192.0.2.55/32", 2)])
        assert index.lookup("192.0.2.55") == (2, "192.0.2.55/32")
        assert index.lookup("192.0.2.54") == (1, "192.0.2.0/24")

    def test_default_route(self):
        index = PrefixIndex([("0.0.0.0/0", 9), ("203.0.113.0/24", 5)])
        assert index.lookup("8.8.8.8") == (9, "0.0.0.0/0")
        assert index.lookup("203.0.113.1") == (5, "203.0.113.0/24")


class TestGapsAndUnknowns:
    def test_gap_resolves_to_sentinel(self):
        index = PrefixIndex([("10.0.0.0/16", 1), ("10.2.0.0/16", 2)])
        assert index.lookup("10.1.0.1") == (SENTINEL_ASN, None)

    def test_empty_index(self):
        index = PrefixIndex([])
        assert len(index) == 0
        assert index.lookup("1.2.3.4") == (SENTINEL_ASN, None)
        assert index.lookup_batch(np.array([1, 2, 3], dtype=np.uint32)).tolist() == [
            0,
            0,
            0,
        ]

    def test_non_ipv4_string_is_unknown(self):
        index = PrefixIndex([("10.0.0.0/8", 1)])
        assert index.lookup("not-an-ip") == (SENTINEL_ASN, None)
        assert index.lookup("2a01:db8::1") == (SENTINEL_ASN, None)


class TestConstruction:
    def test_duplicate_prefix_keeps_last(self):
        index = PrefixIndex([("10.0.0.0/8", 1), ("10.0.0.0/8", 2)])
        assert len(index) == 1
        assert index.lookup("10.0.0.1") == (2, "10.0.0.0/8")

    def test_host_bits_are_canonicalised(self):
        index = PrefixIndex([("10.1.2.3/16", 7)])
        assert index.lookup("10.1.200.200") == (7, "10.1.0.0/16")

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            PrefixIndex([("10.0.0.0", 1)])
        with pytest.raises(ValueError):
            PrefixIndex([("10.0.0.0/33", 1)])
        with pytest.raises(ValueError):
            PrefixIndex([("10.0.0.999/8", 1)])

    def test_bad_asn_rejected(self):
        with pytest.raises(ValueError):
            PrefixIndex([("10.0.0.0/8", -1)])
        with pytest.raises(ValueError):
            PrefixIndex([("10.0.0.0/8", 1 << 32)])

    def test_integer_lookup_matches_string_lookup(self):
        index = PrefixIndex([("10.1.0.0/16", 42)])
        assert index.lookup(ipv4_to_int("10.1.2.3")) == index.lookup("10.1.2.3")


class TestBatchDeterminism:
    def test_batch_matches_scalar_on_fuzzed_addresses(self):
        rng = np.random.default_rng(2018)
        entries = []
        for length in (0, 8, 12, 16, 24, 28, 32):
            for _ in range(8):
                network = int(rng.integers(0, 2**32, dtype=np.uint64))
                entries.append(
                    (f"{network >> 24 & 255}.{network >> 16 & 255}."
                     f"{network >> 8 & 255}.{network & 255}/{length}",
                     int(rng.integers(1, 70000)))
                )
        index = PrefixIndex(entries)
        addrs = rng.integers(0, 2**32, size=5000, dtype=np.uint32)
        batch = index.lookup_batch(addrs)
        scalar = np.array(
            [index.lookup(int(a))[0] for a in addrs], dtype=np.uint32
        )
        assert np.array_equal(batch, scalar)

    def test_batch_accepts_plain_sequences(self):
        index = PrefixIndex([("10.0.0.0/8", 5)])
        out = index.lookup_batch([ipv4_to_int("10.1.1.1"), ipv4_to_int("11.0.0.1")])
        assert out.tolist() == [5, 0]
