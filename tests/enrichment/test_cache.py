"""Hybrid memory+disk cache tier tests."""

import numpy as np
import pytest

from repro.enrichment import (
    Enrichment,
    GeoProvider,
    HybridCacheProvider,
    SENTINEL_ASN,
)


class CountingProvider(GeoProvider):
    """Test double: counts lookups, answers deterministically."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def lookup(self, ip):
        self.calls += 1
        last = int(ip.rsplit(".", 1)[-1])
        return Enrichment(ip=ip, country="US", asn=last, prefix=f"{ip}/32")


class TestCascade:
    def test_memory_hit_after_first_lookup(self):
        cache = HybridCacheProvider(CountingProvider(), capacity=8)
        first, tier1 = cache.lookup_with_tier("10.0.0.1")
        second, tier2 = cache.lookup_with_tier("10.0.0.1")
        assert (tier1, tier2) == ("provider", "memory")
        assert first == second
        assert cache.inner.calls == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.misses == 1

    def test_lru_evicts_to_disk_and_promotes_back(self, tmp_path):
        cache = HybridCacheProvider(
            CountingProvider(), capacity=2, disk_path=tmp_path / "cache.json"
        )
        for ip in ("10.0.0.1", "10.0.0.2", "10.0.0.3"):
            cache.lookup(ip)
        assert cache.stats.evictions == 1  # .1 was pushed out
        _, tier = cache.lookup_with_tier("10.0.0.1")
        assert tier == "disk"
        # Promotion back into memory: the next hit is a memory hit.
        _, tier = cache.lookup_with_tier("10.0.0.1")
        assert tier == "memory"
        assert cache.inner.calls == 3

    def test_lru_recency_order(self):
        cache = HybridCacheProvider(CountingProvider(), capacity=2)
        cache.lookup("10.0.0.1")
        cache.lookup("10.0.0.2")
        cache.lookup("10.0.0.1")  # refresh .1
        cache.lookup("10.0.0.3")  # evicts .2, not .1
        _, tier = cache.lookup_with_tier("10.0.0.1")
        assert tier == "memory"

    def test_flush_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = HybridCacheProvider(CountingProvider(), capacity=8, disk_path=path)
        cache.lookup("10.0.0.7")
        cache.flush()
        assert path.exists()

        fresh = HybridCacheProvider(CountingProvider(), capacity=8, disk_path=path)
        enrichment, tier = fresh.lookup_with_tier("10.0.0.7")
        assert tier == "disk"
        assert enrichment.asn == 7
        assert fresh.inner.calls == 0

    def test_corrupt_disk_cache_is_ignored(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        cache = HybridCacheProvider(CountingProvider(), capacity=8, disk_path=path)
        _, tier = cache.lookup_with_tier("10.0.0.1")
        assert tier == "provider"

    def test_stats_hit_ratio(self):
        cache = HybridCacheProvider(CountingProvider(), capacity=8)
        assert cache.stats.hit_ratio == 0.0
        cache.lookup("10.0.0.1")
        cache.lookup("10.0.0.1")
        cache.lookup("10.0.0.1")
        assert cache.stats.lookups == 3
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)
        payload = cache.stats.as_dict()
        assert payload["memory_hits"] == 2
        assert payload["misses"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            HybridCacheProvider(CountingProvider(), capacity=0)


class TestPassthrough:
    def test_resolve_ints_bypasses_cache(self):
        class IntProvider(CountingProvider):
            def resolve_ints(self, addrs):
                return np.asarray(addrs, dtype=np.uint32) % 7

        cache = HybridCacheProvider(IntProvider(), capacity=8)
        out = cache.resolve_ints(np.array([14, 15], dtype=np.uint32))
        assert out.tolist() == [0, 1]
        assert cache.stats.lookups == 0  # the batch path never touches tiers

    def test_metadata_delegates_to_inner(self):
        class MetaProvider(CountingProvider):
            def press_freedom_score(self, code):
                return 42.0

            def country_prefixes(self, code):
                return ("10.0.0.0/8",)

            def countries(self):
                return ("US",)

        cache = HybridCacheProvider(MetaProvider(), capacity=8)
        assert cache.press_freedom_score("US") == 42.0
        assert cache.country_prefixes("US") == ("10.0.0.0/8",)
        assert cache.countries() == ("US",)

    def test_unknown_results_are_cached_too(self):
        class UnknownProvider(GeoProvider):
            name = "unknown"

            def __init__(self):
                self.calls = 0

            def lookup(self, ip):
                self.calls += 1
                return Enrichment(ip=ip, country=None, asn=SENTINEL_ASN, prefix=None)

        cache = HybridCacheProvider(UnknownProvider(), capacity=8)
        cache.lookup("203.0.113.1")
        _, tier = cache.lookup_with_tier("203.0.113.1")
        assert tier == "memory"
        assert cache.inner.calls == 1
