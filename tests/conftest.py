"""Shared fixtures for the test suite.

Expensive objects (a small measurement campaign, a message-level network)
are built once per session and shared by the analysis tests; individual
tests that need different parameters construct their own objects.
"""

from __future__ import annotations

import random

import pytest

from repro.core import CampaignResult, run_main_campaign
from repro.sim import I2PNetwork, I2PPopulation, PopulationConfig
from repro.netdb.routerinfo import BandwidthTier


@pytest.fixture(autouse=True)
def _isolated_exposure_cache(tmp_path, monkeypatch):
    """Point the CLI's default on-disk exposure cache at a per-test tmp dir.

    Without this, CLI-invoking tests would read/write the developer's real
    ``~/.cache/repro/exposure`` — polluting it and making repeated test
    runs depend on its contents (a second run would hit the disk cache and
    change the printed build counts).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "exposure-cache"))


@pytest.fixture(scope="session")
def small_campaign() -> CampaignResult:
    """A 12-day, ~900-peer campaign with victim client and daily IPs."""
    return run_main_campaign(days=12, scale=0.03, seed=1234)


@pytest.fixture(scope="session")
def small_population() -> I2PPopulation:
    """A small population with all days still unconsumed."""
    return I2PPopulation(
        PopulationConfig(target_daily_population=600, horizon_days=6, seed=99)
    )


@pytest.fixture(scope="session")
def message_network() -> I2PNetwork:
    """A converged message-level network with floodfill and client routers."""
    network = I2PNetwork(seed=7)
    for _ in range(6):
        network.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
    for _ in range(24):
        network.add_router(floodfill=False, bandwidth_tier=BandwidthTier.L)
    network.run_convergence_rounds(rounds=3)
    return network


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(20180201)
