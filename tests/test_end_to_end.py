"""End-to-end integration tests spanning the whole pipeline.

These tests walk the same path as the paper: run a measurement campaign,
produce every figure/table analysis, and run the censorship analyses — all
at a small scale so the suite stays fast.
"""

import pytest

from repro.core import (
    asn_figure,
    asn_span_figure,
    blocking_curve,
    bridge_pool_summary,
    capacity_figure,
    country_figure,
    daily_population_figure,
    estimate_population,
    ip_churn_figure,
    longevity_figure,
    render_campaign_summary,
    render_table1,
    summarize_population,
    unknown_ip_figure,
)


class TestFullPipeline:
    """Every analysis in the paper runs off one shared campaign result."""

    def test_all_figures_regenerate(self, small_campaign):
        log = small_campaign.log
        figures = [
            daily_population_figure(log),
            unknown_ip_figure(log),
            longevity_figure(log, step=2),
            ip_churn_figure(log),
            capacity_figure(log),
            country_figure(log),
            asn_figure(log),
            asn_span_figure(log),
            blocking_curve(small_campaign, router_counts=[1, 5, 10], windows=(1, 5)),
        ]
        for figure in figures:
            text = figure.to_text()
            assert figure.figure_id in text
            assert figure.series
            for series in figure.series.values():
                assert series.points, f"{figure.figure_id}/{series.name} is empty"

    def test_summary_report_is_self_consistent(self, small_campaign):
        summary = summarize_population(small_campaign.log)
        estimate = estimate_population(small_campaign.log)
        # The floodfill extrapolation lands in the same ballpark as both the
        # observed and the ground-truth population.
        assert 0.5 * summary.mean_daily_peers < estimate.estimated_population
        assert estimate.estimated_population < 2.5 * summary.mean_daily_peers
        text = render_campaign_summary(small_campaign)
        assert str(small_campaign.log.days_recorded) in text
        assert render_table1(small_campaign.log)

    def test_censorship_analyses_agree(self, small_campaign):
        """The blocking curve and the bridge-pool analysis are two views of
        the same censor: a high blocking rate must mean a small bridge pool."""
        figure = blocking_curve(small_campaign, router_counts=[10], windows=(5,))
        rate = figure.get("5 days").y_at(10) / 100.0
        pool = bridge_pool_summary(
            small_campaign, censor_routers=10, blacklist_window_days=5
        )
        assert rate > 0.7
        assert pool.unblocked_share < 0.5
        # Firewalled peers remain available as unblockable bridges.
        assert pool.firewalled_pool > 0

    def test_campaign_reproducibility(self):
        from repro.core import run_main_campaign

        a = run_main_campaign(days=3, scale=0.01, seed=42)
        b = run_main_campaign(days=3, scale=0.01, seed=42)
        assert a.log.unique_peer_count == b.log.unique_peer_count
        assert [d.observed_peers for d in a.log.daily] == [
            d.observed_peers for d in b.log.daily
        ]
        assert a.monitors[0].cumulative_peer_ids == b.monitors[0].cumulative_peer_ids
