"""Tests for the ``repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure"])
        assert args.command == "measure"
        assert args.days == 20
        assert args.export_dir is None

    def test_global_options(self):
        args = build_parser().parse_args(["--scale", "0.02", "--seed", "7", "calibrate"])
        assert args.scale == 0.02
        assert args.seed == 7
        assert args.command == "calibrate"


class TestMeasureCommand:
    def test_measure_prints_summary(self, capsys):
        exit_code = main(["--scale", "0.01", "measure", "--days", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Population (Section 5.1)" in captured
        assert "Table 1" in captured
        assert "figure_13" in captured

    def test_measure_exports_figures(self, capsys, tmp_path):
        export_dir = tmp_path / "figures"
        exit_code = main(
            ["--scale", "0.01", "measure", "--days", "3", "--export-dir", str(export_dir)]
        )
        assert exit_code == 0
        csv_files = sorted(p.name for p in export_dir.glob("*.csv"))
        json_files = sorted(p.name for p in export_dir.glob("*.json"))
        assert "figure_05.csv" in csv_files
        assert "figure_13.csv" in csv_files
        assert len(csv_files) == len(json_files) == 9
        payload = json.loads((export_dir / "figure_13.json").read_text())
        assert payload["figure_id"] == "figure_13"
        assert payload["series"]


class TestCalibrateCommand:
    def test_calibrate_prints_all_three_figures(self, capsys):
        exit_code = main(["--scale", "0.01", "calibrate", "--max-routers", "6"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure_02" in captured
        assert "figure_03" in captured
        assert "figure_04" in captured


class TestSuiteCommand:
    def test_suite_prints_figures_and_analyses(self, capsys):
        exit_code = main(
            ["--scale", "0.01", "suite", "--days", "4", "--max-routers", "4"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure_02" in captured
        assert "figure_03" in captured
        assert "figure_04" in captured
        assert "Table 1" in captured
        assert "longevity" in captured
        assert "ip churn" in captured
        # One shared exposure serves the whole suite.
        assert "1 population build(s)" in captured


class TestCensorCommand:
    def test_censor_prints_blocking_and_usability(self, capsys):
        exit_code = main(
            ["--scale", "0.01", "censor", "--days", "3", "--fetches", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure_13" in captured
        assert "figure_14" in captured
