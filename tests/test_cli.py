"""Tests for the ``repro`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_measure_defaults(self):
        args = build_parser().parse_args(["measure"])
        assert args.command == "measure"
        assert args.days == 20
        assert args.export_dir is None

    def test_global_options(self):
        args = build_parser().parse_args(["--scale", "0.02", "--seed", "7", "calibrate"])
        assert args.scale == 0.02
        assert args.seed == 7
        assert args.command == "calibrate"


class TestMeasureCommand:
    def test_measure_prints_summary(self, capsys):
        exit_code = main(["--scale", "0.01", "measure", "--days", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Population (Section 5.1)" in captured
        assert "Table 1" in captured
        assert "figure_13" in captured

    def test_measure_exports_figures(self, capsys, tmp_path):
        export_dir = tmp_path / "figures"
        exit_code = main(
            ["--scale", "0.01", "measure", "--days", "3", "--export-dir", str(export_dir)]
        )
        assert exit_code == 0
        csv_files = sorted(p.name for p in export_dir.glob("*.csv"))
        json_files = sorted(p.name for p in export_dir.glob("*.json"))
        assert "figure_05.csv" in csv_files
        assert "figure_13.csv" in csv_files
        assert len(csv_files) == len(json_files) == 9
        payload = json.loads((export_dir / "figure_13.json").read_text())
        assert payload["figure_id"] == "figure_13"
        assert payload["series"]


class TestCalibrateCommand:
    def test_calibrate_prints_all_three_figures(self, capsys):
        exit_code = main(["--scale", "0.01", "calibrate", "--max-routers", "6"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure_02" in captured
        assert "figure_03" in captured
        assert "figure_04" in captured


class TestSuiteCommand:
    def test_suite_prints_figures_and_analyses(self, capsys):
        exit_code = main(
            ["--scale", "0.01", "suite", "--days", "4", "--max-routers", "4"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure_02" in captured
        assert "figure_03" in captured
        assert "figure_04" in captured
        assert "Table 1" in captured
        assert "longevity" in captured
        assert "ip churn" in captured
        # One shared exposure serves the whole suite.
        assert "1 population build(s)" in captured


class TestCensorCommand:
    def test_censor_prints_blocking_and_usability(self, capsys):
        exit_code = main(
            ["--scale", "0.01", "censor", "--days", "3", "--fetches", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "figure_13" in captured
        assert "figure_14" in captured


class TestScenariosCommand:
    def test_scenarios_lists_registered_specs(self, capsys):
        exit_code = main(["scenarios"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for name in (
            "main_campaign",
            "single_router",
            "bandwidth_sweep",
            "router_count_sweep",
            "figure_suite",
            "monitor_fraction_sweep",
            "country_blocking",
            "reseed_denial",
            "floodfill-takedown",
            "reseed-outage",
            "lossy-network",
        ):
            assert name in captured
        # At least ten registered specs are announced in the header.
        first_line = captured.splitlines()[0]
        assert int(first_line.split()[0]) >= 10

    def test_scenarios_footer_documents_fault_plans(self, capsys):
        assert main(["scenarios"]) == 0
        captured = capsys.readouterr().out
        assert "FaultPlan" in captured
        assert "crash_fraction" in captured


class TestRunCommand:
    def test_run_executes_a_scenario(self, capsys):
        exit_code = main(
            ["--scale", "0.01", "run", "monitor_fraction_sweep", "--days", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario monitor_fraction_sweep" in captured
        assert "scenario_monitor_fraction" in captured
        assert "population build(s)" in captured

    def test_run_unknown_scenario_fails_with_catalogue(self, capsys):
        exit_code = main(["run", "does-not-exist"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "main_campaign" in captured.err


class TestCacheCommandAndReuse:
    def test_second_run_hits_disk_cache(self, capsys):
        argv = ["--scale", "0.01", "run", "bandwidth_sweep", "--days", "2"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "1 population build(s)" in first
        # Same process-external cache (REPRO_CACHE_DIR fixture), new engine:
        # the second run restores the population from npz instead of
        # rebuilding it.
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 population build(s)" in second
        assert "1 disk hit(s)" in second

    def test_cache_ls_and_clear(self, capsys):
        assert main(["--scale", "0.01", "run", "bandwidth_sweep", "--days", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        listing = capsys.readouterr().out
        assert "1 entr" in listing
        assert "days=2" in listing
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cache entr(y/ies)" in capsys.readouterr().out
        assert main(["cache", "ls"]) == 0
        assert "0 entr" in capsys.readouterr().out

    def test_no_cache_flag_disables_disk_cache(self, capsys):
        argv = ["--scale", "0.01", "--no-cache", "run", "bandwidth_sweep", "--days", "2"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        assert "0 entr" in capsys.readouterr().out
        assert main(["--no-cache", "cache", "ls"]) == 2

    def test_cache_ls_uses_human_readable_sizes(self, capsys):
        assert main(["--scale", "0.01", "run", "bandwidth_sweep", "--days", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        listing = capsys.readouterr().out
        # Entry and total sizes are printed in binary units, not raw bytes.
        assert "KiB" in listing or "MiB" in listing

    def test_cache_ls_json(self, capsys):
        assert main(["--scale", "0.01", "run", "bandwidth_sweep", "--days", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_bytes"] > 0
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["days"] == 2
        assert entry["bytes"] > 0
        assert "path" not in entry


class TestExposureBackendFlag:
    def test_out_of_core_backend_runs_and_caches(self, capsys):
        argv = [
            "--scale",
            "0.01",
            "--exposure-backend",
            "out-of-core",
            "run",
            "bandwidth_sweep",
            "--days",
            "2",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        assert "1 entr" in capsys.readouterr().out

    def test_out_of_core_with_no_cache_is_rejected(self, capsys):
        argv = [
            "--no-cache",
            "--exposure-backend",
            "out-of-core",
            "run",
            "bandwidth_sweep",
            "--days",
            "2",
        ]
        with pytest.raises(ValueError, match="cache_dir"):
            main(argv)

    def test_backend_env_variable_is_honoured(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_BACKEND", "out-of-core")
        assert main(["--scale", "0.01", "run", "bandwidth_sweep", "--days", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        assert "1 entr" in capsys.readouterr().out

    def test_cache_max_bytes_flag_is_parsed(self, capsys):
        argv = [
            "--scale",
            "0.01",
            "--cache-max-bytes",
            "10G",
            "run",
            "bandwidth_sweep",
            "--days",
            "2",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        assert "1 entr" in capsys.readouterr().out

    def test_bad_cache_max_bytes_is_rejected(self):
        argv = ["--cache-max-bytes", "lots", "run", "bandwidth_sweep", "--days", "2"]
        with pytest.raises(ValueError, match="cache-max-bytes"):
            main(argv)


class TestSuiteMaxRouters:
    def test_suite_respects_max_routers(self, capsys):
        exit_code = main(
            ["--scale", "0.01", "suite", "--days", "4", "--max-routers", "4"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        figure4 = captured[captured.index("figure_04") :].split("\n\n")[0]
        rows = [line.split()[0] for line in figure4.splitlines() if line[:1].isdigit()]
        assert rows, figure4
        assert max(float(x) for x in rows) == 4.0


class TestRunCommandErrors:
    def test_run_invalid_days_override_fails_cleanly(self, capsys):
        exit_code = main(["run", "reseed_denial", "--days", "5"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no day horizon" in captured.err

    def test_run_router_count_on_exposure_scenario_fails_cleanly(self, capsys):
        exit_code = main(["run", "main_campaign", "--router-count", "300"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no simulated-network size" in captured.err

    @pytest.mark.parametrize("count", ["0", "-5", "1"])
    def test_run_non_positive_router_count_fails_cleanly(self, capsys, count):
        exit_code = main(["run", "netdb-scale", "--router-count", count])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.err.strip() == "router count must be at least 2"


class TestRunNetDbScale:
    def test_parser_accepts_router_count(self):
        args = build_parser().parse_args(["run", "netdb-scale", "--router-count", "60"])
        assert args.command == "run"
        assert args.scenario == "netdb-scale"
        assert args.router_count == 60

    def test_run_pinned_netdb_scale(self, capsys):
        exit_code = main(["run", "netdb-scale", "--router-count", "40"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario netdb-scale" in captured
        assert "scenario_netdb_scale" in captured
        assert "netdb_scale" in captured

    def test_profile_hook_dumps_pstats(self, capsys, tmp_path, monkeypatch):
        """REPRO_PROFILE=1 wraps the run in cProfile and writes a pstats
        file into $REPRO_PROFILE_DIR."""
        import pstats

        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path / "profiles"))
        exit_code = main(["run", "netdb-scale", "--router-count", "30"])
        captured = capsys.readouterr()
        assert exit_code == 0
        profile_path = tmp_path / "profiles" / "repro_profile_netdb-scale.pstats"
        assert profile_path.is_file()
        assert "profile written to" in captured.err
        # The dump must be loadable and contain the publish hot path.
        stats = pstats.Stats(str(profile_path))
        assert stats.total_calls > 0

    def test_profile_disabled_by_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PROFILE", "0")
        monkeypatch.setenv("REPRO_PROFILE_DIR", str(tmp_path))
        assert main(["run", "netdb-scale", "--router-count", "30"]) == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("*.pstats"))


class TestRunFaultInjection:
    def test_run_pinned_floodfill_takedown(self, capsys):
        exit_code = main(["run", "floodfill-takedown", "--router-count", "40"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario floodfill-takedown" in captured
        assert "scenario_fault_injection" in captured
        assert "publish success ratio" in captured
        assert "netDb coverage" in captured
        assert "publish_success_min" in captured

    def test_run_pinned_lossy_network(self, capsys):
        exit_code = main(["run", "lossy-network", "--router-count", "40"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "store_drops_total" in captured

    def test_days_override_rejected_for_fault_scenarios(self, capsys):
        exit_code = main(["run", "lossy-network", "--days", "3"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no day horizon" in captured.err


class TestGeoCommand:
    """``repro geo build-db`` / ``repro geo lookup`` and the provider flags."""

    @pytest.fixture()
    def compiled_db(self, tmp_path):
        from repro.enrichment import compile_range_db, rows_from_registry
        from repro.sim.geo import default_registry

        path = tmp_path / "registry.db"
        compile_range_db(rows_from_registry(default_registry()), path)
        return path

    def test_build_db_from_csv(self, capsys, tmp_path):
        source = tmp_path / "rows.csv"
        source.write_text("prefix,country,asn\n10.0.0.0/16,US,7922\n10.1.0.0/16,CN,4134\n")
        output = tmp_path / "geo.db"
        exit_code = main(["geo", "build-db", str(source), str(output)])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert output.exists()
        assert "compiled 2 range(s) from 2 source row(s)" in captured

    def test_build_db_rejects_malformed_source(self, capsys, tmp_path):
        source = tmp_path / "rows.csv"
        source.write_text("not,a,valid,row,at,all\n")
        exit_code = main(["geo", "build-db", str(source), str(tmp_path / "geo.db")])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "\n" not in captured.err.strip()

    def test_lookup_default_synthetic_provider(self, capsys):
        exit_code = main(["geo", "lookup", "24.0.1.1"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "country=US" in captured
        assert "asn=7922" in captured
        assert "prefix=24.0.0.0/16" in captured
        assert "provider=synthetic" in captured

    def test_lookup_json_payload(self, capsys, compiled_db):
        exit_code = main(
            ["--geo-db", str(compiled_db), "geo", "lookup", "24.0.1.1", "--json"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        payload = json.loads(captured)
        assert payload["country"] == "US"
        assert payload["asn"] == 7922
        assert payload["prefix"] == "24.0.0.0/16"
        assert payload["provider"] == "range-db"
        assert payload["tier"] in {"provider", "memory", "disk"}

    def test_lookup_hits_disk_cache_on_second_invocation(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["geo", "lookup", "24.0.1.1", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["geo", "lookup", "24.0.1.1", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["tier"] == "provider"
        assert second["tier"] == "disk"
        assert (first["country"], first["asn"]) == (second["country"], second["asn"])

    def test_lookup_invalid_ip_fails_cleanly(self, capsys):
        exit_code = main(["geo", "lookup", "not-an-ip"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not a valid IP address" in captured.err

    def test_range_db_without_database_fails_cleanly(self, capsys):
        exit_code = main(["--geo-provider", "range-db", "geo", "lookup", "24.0.1.1"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "--geo-db" in captured.err

    def test_missing_database_file_fails_cleanly(self, capsys, tmp_path):
        exit_code = main(
            ["--geo-db", str(tmp_path / "absent.db"), "geo", "lookup", "24.0.1.1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not found" in captured.err

    def test_run_prefix_blocking_scenario(self, capsys):
        exit_code = main(
            ["--scale", "0.02", "--seed", "41", "run", "prefix-blocking", "--days", "3"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario_prefix_blocking" in captured
        assert "censors by rank" in captured
        assert "total_prefixes" in captured

    def test_run_prefix_blocking_with_range_db_matches_synthetic(self, capsys, compiled_db):
        # --no-cache keeps the cache-statistics footer identical between runs.
        base_args = ["--scale", "0.02", "--seed", "41", "--no-cache"]
        assert main(base_args + ["run", "prefix-blocking", "--days", "3"]) == 0
        synthetic_out = capsys.readouterr().out
        assert (
            main(
                base_args
                + ["--geo-db", str(compiled_db), "run", "prefix-blocking", "--days", "3"]
            )
            == 0
        )
        range_db_out = capsys.readouterr().out
        assert synthetic_out == range_db_out
