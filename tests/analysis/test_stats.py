"""Tests for the statistics helpers."""

import math

import pytest

from repro.analysis.stats import (
    bootstrap_mean_ci,
    cdf_points,
    cumulative_share,
    histogram,
    percentile,
    share,
    summarize,
    survival_points,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        assert set(summarize([1.0]).as_dict()) >= {"mean", "p95", "std", "count"}


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestCdfAndSurvival:
    def test_cdf_points(self):
        points = cdf_points([3, 1, 2])
        assert points[0] == (1.0, pytest.approx(1 / 3))
        assert points[-1] == (3.0, pytest.approx(1.0))

    def test_cdf_empty(self):
        assert cdf_points([]) == []

    def test_survival_points(self):
        points = survival_points([1, 5, 10, 20], thresholds=[1, 7, 30])
        assert points[0] == (1.0, 1.0)
        assert points[1] == (7.0, 0.5)
        assert points[2] == (30.0, 0.0)

    def test_survival_empty(self):
        assert survival_points([], [5]) == [(5.0, 0.0)]

    def test_survival_monotone_nonincreasing(self):
        values = [1, 2, 3, 10, 20, 40, 80]
        points = survival_points(values, thresholds=range(0, 100, 5))
        fractions = [f for _, f in points]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))


class TestHistogram:
    def test_counts(self):
        bins = histogram([1, 2, 2, 3, 9], bin_edges=[0, 2, 4, 10])
        assert bins[0][2] == 1  # [0, 2)
        assert bins[1][2] == 3  # [2, 4)
        assert bins[2][2] == 1  # [4, 10]

    def test_requires_two_edges(self):
        with pytest.raises(ValueError):
            histogram([1], bin_edges=[1])


class TestBootstrap:
    def test_interval_contains_mean(self):
        mean, low, high = bootstrap_mean_ci(list(range(100)), seed=1)
        assert low <= mean <= high
        assert mean == pytest.approx(49.5)

    def test_deterministic_with_seed(self):
        a = bootstrap_mean_ci([1, 2, 3, 4], seed=5)
        b = bootstrap_mean_ci([1, 2, 3, 4], seed=5)
        assert a == b

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([], seed=1)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)


class TestShares:
    def test_share_normalises(self):
        result = share({"a": 2, "b": 6})
        assert result["a"] == pytest.approx(0.25)
        assert result["b"] == pytest.approx(0.75)

    def test_share_zero_total(self):
        assert share({"a": 0}) == {"a": 0.0}

    def test_cumulative_share(self):
        assert cumulative_share([1, 1, 2]) == [0.25, 0.5, 1.0]

    def test_cumulative_share_zero(self):
        assert cumulative_share([0, 0]) == [0.0, 0.0]
