"""Tests for CSV/JSON export of figures and summaries."""

import csv
import json

import pytest

from repro.analysis.export import (
    figure_to_csv,
    figure_to_json,
    figure_to_rows,
    summary_to_json,
    write_figure_csv,
    write_figure_json,
)
from repro.analysis.series import FigureData


@pytest.fixture()
def figure():
    fig = FigureData("figure_99", "Demo figure", "day", "peers")
    a = fig.new_series("alpha")
    b = fig.new_series("beta")
    a.add(1, 10)
    a.add(2, 20)
    b.add(1, 5)
    fig.add_note("demo note")
    return fig


class TestFigureRows:
    def test_rows_cover_all_x_values(self, figure):
        rows = figure_to_rows(figure)
        assert len(rows) == 2
        assert rows[0]["day"] == 1.0
        assert rows[0]["alpha"] == 10.0
        assert rows[0]["beta"] == 5.0
        assert rows[1]["beta"] is None  # missing point


class TestCsv:
    def test_csv_round_trip(self, figure):
        text = figure_to_csv(figure)
        reader = csv.DictReader(text.splitlines())
        rows = list(reader)
        assert reader.fieldnames == ["day", "alpha", "beta"]
        assert rows[0]["alpha"] == "10.0"
        assert rows[1]["beta"] == ""

    def test_write_csv(self, figure, tmp_path):
        target = write_figure_csv(figure, tmp_path / "out" / "fig.csv")
        assert target.exists()
        assert "alpha" in target.read_text()


class TestJson:
    def test_json_structure(self, figure):
        payload = json.loads(figure_to_json(figure))
        assert payload["figure_id"] == "figure_99"
        assert payload["notes"] == ["demo note"]
        assert payload["series"]["alpha"] == [{"x": 1.0, "y": 10.0}, {"x": 2.0, "y": 20.0}]

    def test_write_json(self, figure, tmp_path):
        target = write_figure_json(figure, tmp_path / "fig.json")
        assert json.loads(target.read_text())["title"] == "Demo figure"


class TestSummaryJson:
    def test_plain_dict(self):
        payload = json.loads(summary_to_json({"a": 1, "b": 2.5}))
        assert payload == {"a": 1, "b": 2.5}

    def test_non_serialisable_values_coerced(self):
        payload = json.loads(summary_to_json({"codes": {"US", "DE"}, "pair": (1, 2)}))
        assert payload["codes"] == ["DE", "US"]
        assert payload["pair"] == [1, 2]
