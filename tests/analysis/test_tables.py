"""Tests for table rendering helpers."""

import pytest

from repro.analysis.tables import format_kv, format_percent, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]
        # all data lines padded to the same column positions
        assert lines[2].index("1") == lines[3].index("2.50")

    def test_title_and_separator(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_float_format(self):
        text = format_table(["v"], [[3.14159]], float_format=".3f")
        assert "3.142" in text

    def test_none_rendered_empty(self):
        text = format_table(["a", "b"], [["x", None]])
        assert text.splitlines()[-1].rstrip().endswith("x")

    def test_bool_rendered_as_yes_no(self):
        text = format_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"short": 1, "a-much-longer-key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = format_kv({"a": 1}, title="Summary")
        assert text.splitlines()[0] == "Summary"

    def test_empty(self):
        assert format_kv({}) == ""
        assert format_kv({}, title="T") == "T"


class TestFormatPercent:
    def test_default(self):
        assert format_percent(0.123) == "12.3%"

    def test_decimals(self):
        assert format_percent(0.5, decimals=0) == "50%"
