"""Tests for figure-series containers."""

import pytest

from repro.analysis.series import FigureData, FigureSeries


class TestFigureSeries:
    def test_add_and_accessors(self):
        series = FigureSeries("s")
        series.add(1, 10)
        series.add(2, 20)
        assert series.xs == [1.0, 2.0]
        assert series.ys == [10.0, 20.0]
        assert series.y_at(2) == 20.0
        assert series.y_at(3) is None
        assert series.final() == (2.0, 20.0)

    def test_empty_final(self):
        assert FigureSeries("s").final() is None

    def test_monotonic_check(self):
        increasing = FigureSeries("a", [(1, 1), (2, 2), (3, 2)])
        decreasing = FigureSeries("b", [(1, 3), (2, 1)])
        assert increasing.is_monotonic_nondecreasing()
        assert not decreasing.is_monotonic_nondecreasing()

    def test_y_at_index_updates_after_add(self):
        series = FigureSeries("s")
        series.add(1, 10)
        assert series.y_at(1) == 10.0  # builds the index
        series.add(2, 20)  # must invalidate it
        assert series.y_at(2) == 20.0
        assert series.y_at(1) == 10.0
        assert series.y_at(99) is None

    def test_y_at_duplicate_x_keeps_first(self):
        series = FigureSeries("s", [(1, 10), (1, 99)])
        assert series.y_at(1) == 10.0

    def test_y_at_on_constructor_points(self):
        series = FigureSeries("s", [(3, 30), (4, 40)])
        assert series.y_at(4) == 40.0


class TestFigureData:
    def test_new_series_and_get(self):
        figure = FigureData("fig", "Title", "x", "y")
        series = figure.new_series("a")
        assert figure.get("a") is series

    def test_duplicate_series_rejected(self):
        figure = FigureData("fig", "Title", "x", "y")
        figure.new_series("a")
        with pytest.raises(ValueError):
            figure.new_series("a")

    def test_to_text_contains_all_series_and_points(self):
        figure = FigureData("figure_99", "Demo", "day", "peers")
        a = figure.new_series("alpha")
        b = figure.new_series("beta")
        a.add(1, 10)
        a.add(2, 30)
        b.add(1, 5)
        figure.add_note("a note")
        text = figure.to_text()
        assert "figure_99" in text
        assert "alpha" in text and "beta" in text
        assert "30.00" in text
        assert "note: a note" in text

    def test_to_text_handles_missing_points(self):
        figure = FigureData("fig", "Demo", "x", "y")
        a = figure.new_series("a")
        b = figure.new_series("b")
        a.add(1, 1)
        b.add(2, 2)
        text = figure.to_text()
        assert "1.00" in text and "2.00" in text
