"""Tests for deterministic seeded random streams."""

from repro.sim.rng import SeededStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "churn") == derive_seed(42, "churn")

    def test_differs_per_name(self):
        assert derive_seed(42, "churn") != derive_seed(42, "geo")

    def test_differs_per_master(self):
        assert derive_seed(1, "churn") != derive_seed(2, "churn")

    def test_fits_in_63_bits(self):
        assert 0 <= derive_seed(123456789, "x") < 2**63


class TestSeededStreams:
    def test_python_streams_reproducible(self):
        a = SeededStreams(7).python("churn").random()
        b = SeededStreams(7).python("churn").random()
        assert a == b

    def test_python_streams_independent(self):
        streams = SeededStreams(7)
        assert streams.python("a").random() != streams.python("b").random()

    def test_python_stream_cached(self):
        streams = SeededStreams(7)
        assert streams.python("a") is streams.python("a")

    def test_numpy_streams_reproducible(self):
        a = SeededStreams(7).numpy("obs").random(3)
        b = SeededStreams(7).numpy("obs").random(3)
        assert (a == b).all()

    def test_numpy_stream_cached(self):
        streams = SeededStreams(7)
        assert streams.numpy("x") is streams.numpy("x")

    def test_fork_changes_streams(self):
        parent = SeededStreams(7)
        child = parent.fork("experiment-1")
        assert child.master_seed != parent.master_seed
        assert parent.python("a").random() != child.python("a").random()

    def test_fork_deterministic(self):
        assert SeededStreams(7).fork("x").master_seed == SeededStreams(7).fork("x").master_seed
