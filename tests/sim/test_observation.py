"""Tests for the calibrated statistical observation model."""

import numpy as np
import pytest

from repro.sim.observation import (
    MonitorMode,
    MonitorSpec,
    ObservationModel,
    standard_monitor_fleet,
)
from repro.sim.population import I2PPopulation, PopulationConfig


@pytest.fixture(scope="module")
def day_view():
    population = I2PPopulation(
        PopulationConfig(target_daily_population=1500, horizon_days=2, seed=31)
    )
    return population.day_view(0)


class TestMonitorSpec:
    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MonitorSpec("m", MonitorMode.FLOODFILL, shared_kbps=0)

    def test_fleet_interleaves_modes(self):
        fleet = standard_monitor_fleet(2, 2)
        assert [m.mode for m in fleet] == [
            MonitorMode.FLOODFILL,
            MonitorMode.NON_FLOODFILL,
            MonitorMode.FLOODFILL,
            MonitorMode.NON_FLOODFILL,
        ]

    def test_fleet_uneven_counts(self):
        fleet = standard_monitor_fleet(3, 1)
        assert sum(m.mode is MonitorMode.FLOODFILL for m in fleet) == 3
        assert sum(m.mode is MonitorMode.NON_FLOODFILL for m in fleet) == 1

    def test_fleet_unique_names(self):
        fleet = standard_monitor_fleet(5, 5)
        assert len({m.name for m in fleet}) == 10


class TestCoverageCurves:
    def test_floodfill_better_at_low_bandwidth(self):
        """Figure 3: below ~2 MB/s a floodfill router observes more peers."""
        low = 128.0
        ff = ObservationModel.flood_coverage(MonitorMode.FLOODFILL, low)
        nff_flood = ObservationModel.flood_coverage(MonitorMode.NON_FLOODFILL, low)
        ff_total = ff + ObservationModel.tunnel_coverage(MonitorMode.FLOODFILL, low)
        nff_total = nff_flood + ObservationModel.tunnel_coverage(
            MonitorMode.NON_FLOODFILL, low
        )
        assert ff_total > nff_total

    def test_non_floodfill_better_at_high_bandwidth(self):
        high = 8000.0
        ff_total = ObservationModel.flood_coverage(
            MonitorMode.FLOODFILL, high
        ) + ObservationModel.tunnel_coverage(MonitorMode.FLOODFILL, high)
        nff_total = ObservationModel.flood_coverage(
            MonitorMode.NON_FLOODFILL, high
        ) + ObservationModel.tunnel_coverage(MonitorMode.NON_FLOODFILL, high)
        assert nff_total > ff_total

    def test_tunnel_coverage_grows_with_bandwidth(self):
        for mode in MonitorMode:
            assert ObservationModel.tunnel_coverage(mode, 5000) > ObservationModel.tunnel_coverage(mode, 128)

    def test_client_bias_exponent(self):
        assert ObservationModel.selection_bias(MonitorMode.CLIENT) > 1.0
        assert ObservationModel.selection_bias(MonitorMode.FLOODFILL) == 1.0


class TestDailyObservation:
    def test_single_monitor_sees_roughly_half(self, day_view):
        model = ObservationModel(seed=1)
        monitor = MonitorSpec("m", MonitorMode.FLOODFILL, 8000.0)
        observed = model.observe_day(day_view, [monitor])[0]
        share = len(observed) / day_view.online_count
        assert 0.35 <= share <= 0.65

    def test_probabilities_within_bounds(self, day_view):
        model = ObservationModel(seed=2)
        exposure = model.day_exposure(day_view)
        monitor = MonitorSpec("m", MonitorMode.NON_FLOODFILL, 8000.0)
        probabilities = model.observation_probabilities(exposure, monitor)
        assert probabilities.min() >= 0.0
        assert probabilities.max() <= ObservationModel.MAX_PROBABILITY

    def test_more_monitors_see_more(self, day_view):
        model = ObservationModel(seed=3)
        fleet = standard_monitor_fleet(10, 10)
        observations = model.observe_day(day_view, fleet)
        sizes = ObservationModel.cumulative_union_sizes(observations)
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]
        # Twenty monitors cover the large majority of the daily population.
        assert sizes[-1] / day_view.online_count > 0.85

    def test_diminishing_returns(self, day_view):
        """Figure 4: the marginal router adds fewer and fewer new peers."""
        model = ObservationModel(seed=4)
        fleet = standard_monitor_fleet(10, 10)
        sizes = ObservationModel.cumulative_union_sizes(
            model.observe_day(day_view, fleet)
        )
        first_gain = sizes[1] - sizes[0]
        last_gain = sizes[-1] - sizes[-2]
        assert last_gain < first_gain

    def test_union_coverage_helper(self, day_view):
        model = ObservationModel(seed=5)
        observations = model.observe_day(
            day_view, [MonitorSpec("m", MonitorMode.FLOODFILL, 8000.0)]
        )
        coverage = ObservationModel.union_coverage(observations, day_view.online_count)
        assert 0.0 < coverage < 1.0
        assert ObservationModel.union_coverage(observations, 0) == 0.0

    def test_shared_exposure_correlates_monitors(self, day_view):
        """Two identical monitors overlap far more than independent draws."""
        model = ObservationModel(seed=6)
        exposure = model.day_exposure(day_view)
        specs = [
            MonitorSpec("a", MonitorMode.FLOODFILL, 8000.0),
            MonitorSpec("b", MonitorMode.FLOODFILL, 8000.0),
        ]
        obs_a, obs_b = model.observe_day(day_view, specs, exposure=exposure)
        set_a, set_b = set(obs_a.tolist()), set(obs_b.tolist())
        jaccard = len(set_a & set_b) / len(set_a | set_b)
        assert jaccard > 0.4

    def test_client_view_smaller_than_monitor_view(self, day_view):
        model = ObservationModel(seed=7)
        specs = [
            MonitorSpec("client", MonitorMode.CLIENT, 256.0),
            MonitorSpec("monitor", MonitorMode.FLOODFILL, 8000.0),
        ]
        client_obs, monitor_obs = model.observe_day(day_view, specs)
        assert len(client_obs) < len(monitor_obs)

    def test_client_view_biased_to_visible_peers(self, day_view):
        model = ObservationModel(seed=8)
        client_obs = model.observe_day(
            day_view, [MonitorSpec("client", MonitorMode.CLIENT, 256.0)]
        )[0]
        observed_vis = np.mean(
            [day_view.snapshots[int(i)].base_visibility for i in client_obs]
        )
        overall_vis = np.mean([s.base_visibility for s in day_view.snapshots])
        assert observed_vis > overall_vis

    def test_reproducible_with_same_seed(self, day_view):
        spec = [MonitorSpec("m", MonitorMode.FLOODFILL, 8000.0)]
        a = ObservationModel(seed=99).observe_day(day_view, spec)[0]
        b = ObservationModel(seed=99).observe_day(day_view, spec)[0]
        assert np.array_equal(a, b)
