"""Out-of-core backend equivalence and policy tests.

The acceptance bar for the streamed exposure backend is *byte identity*:
at a fixed seed, a campaign (and every analysis on top of it) must produce
exactly the same output whether the exposure lives in RAM or streams from
a sharded disk bundle.  These tests pin that contract at small scale; the
memory-budget benchmark covers the RSS side at scale 10.
"""

import numpy as np
import pytest

from repro.core import run_scenario
from repro.core.campaign import run_main_campaign
from repro.core.reporting import render_campaign_summary, render_table1
from repro.sim import exposure as exposure_mod
from repro.sim.columns import MemmapPeerColumns, PeerColumns
from repro.sim.exposure import (
    AUTO_WORKER_MONITOR_CROSSOVER,
    ExposureEngine,
    parse_byte_size,
)
from repro.sim.population import I2PPopulation, PopulationConfig


def _engines(tmp_path):
    return (
        ExposureEngine(),
        ExposureEngine(
            cache_dir=tmp_path / "ooc", backend="out_of_core", shard_days=3
        ),
    )


class TestCampaignEquivalence:
    def test_campaign_summary_is_byte_identical(self, tmp_path):
        mem_engine, ooc_engine = _engines(tmp_path)
        mem = run_main_campaign(days=8, scale=0.02, seed=11, engine=mem_engine)
        ooc = run_main_campaign(days=8, scale=0.02, seed=11, engine=ooc_engine)
        assert render_campaign_summary(mem) == render_campaign_summary(ooc)
        assert render_table1(mem.log) == render_table1(ooc.log)
        assert mem.cumulative_union_by_day == ooc.cumulative_union_by_day
        assert mem.daily_online_population == ooc.daily_online_population

    def test_victim_ip_sets_are_identical(self, tmp_path):
        mem_engine, ooc_engine = _engines(tmp_path)
        mem = run_main_campaign(days=6, scale=0.02, seed=12, engine=mem_engine)
        ooc = run_main_campaign(days=6, scale=0.02, seed=12, engine=ooc_engine)
        # The victim collects daily IPs through the lazy (disk re-read)
        # path on the streamed backend; sets must still match exactly.
        assert len(mem.victim.daily_ip_sets) == len(ooc.victim.daily_ip_sets)
        for day in range(len(mem.victim.daily_ip_sets)):
            assert mem.victim.daily_ip_sets[day] == ooc.victim.daily_ip_sets[day]
        assert mem.victim.daily_peer_sets == ooc.victim.daily_peer_sets

    def test_figure_suite_is_byte_identical(self, tmp_path):
        mem_engine, ooc_engine = _engines(tmp_path)
        mem = run_scenario(
            "figure_suite", scale=0.02, seed=13, days=6, engine=mem_engine
        )
        ooc = run_scenario(
            "figure_suite", scale=0.02, seed=13, days=6, engine=ooc_engine
        )
        assert sorted(mem.figures) == sorted(ooc.figures)
        assert {k: f.to_text() for k, f in mem.figures.items()} == {
            k: f.to_text() for k, f in ooc.figures.items()
        }
        assert mem.summaries == ooc.summaries

    def test_fault_free_netdb_round_is_byte_identical(self, tmp_path):
        mem_engine, ooc_engine = _engines(tmp_path)
        mem = run_scenario(
            "netdb-scale", scale=0.02, seed=14, engine=mem_engine, router_count=300
        )
        ooc = run_scenario(
            "netdb-scale", scale=0.02, seed=14, engine=ooc_engine, router_count=300
        )

        def deterministic(summaries):
            # Wall-clock timing fields legitimately vary run to run; the
            # simulated outputs (message counts, coverage, success) must not.
            return {
                section: {
                    name: {
                        key: value
                        for key, value in row.items()
                        if "second" not in key
                    }
                    for name, row in body.items()
                }
                for section, body in summaries.items()
            }

        assert deterministic(mem.summaries) == deterministic(ooc.summaries)


class TestLeanPopulationBuild:
    def test_lean_build_produces_identical_columns(self):
        config = PopulationConfig(
            target_daily_population=600, horizon_days=6, seed=21
        )
        full = I2PPopulation(config=config)
        lean = I2PPopulation(config=config, retain_records=False)
        for day in range(4):
            a = full.day_view(day)
            b = lean.day_view(day)
            np.testing.assert_array_equal(a.columns.indices, b.columns.indices)
            assert a.columns.ip.tolist() == b.columns.ip.tolist()
            assert a.new_arrivals == b.new_arrivals
            assert a.departures == b.departures
        assert full.total_identities() == lean.total_identities()

    def test_lean_population_drops_record_objects(self):
        config = PopulationConfig(
            target_daily_population=600, horizon_days=4, seed=22
        )
        lean = I2PPopulation(config=config, retain_records=False)
        lean.day_view(0)
        assert lean.columns.records == []
        with pytest.raises(RuntimeError):
            lean.peer(b"whatever")


class TestMemmapPeerColumns:
    def _restored_store(self, tmp_path):
        from repro.sim import exposure_cache

        config = PopulationConfig(
            target_daily_population=600, horizon_days=3, seed=23
        )
        exposure = ExposureEngine().get(config, 99, days=2)
        path = exposure_cache.save_exposure(exposure, tmp_path)
        return exposure, exposure_cache.load_exposure(path).population.columns

    def test_columns_match_the_original_store(self, tmp_path):
        exposure, store = self._restored_store(tmp_path)
        original = exposure.population.columns
        assert isinstance(store, MemmapPeerColumns)
        assert isinstance(store, PeerColumns)
        assert store.size == original.size
        np.testing.assert_array_equal(store.tier_code, original.tier_code)
        np.testing.assert_array_equal(store.floodfill, original.floodfill)
        np.testing.assert_array_equal(store.activity, original.activity)
        assert store.peer_ids.tolist() == original.peer_ids.tolist()

    def test_mutation_is_rejected(self, tmp_path):
        _, store = self._restored_store(tmp_path)
        with pytest.raises(RuntimeError, match="read-only"):
            store.append(object(), None, None)
        with pytest.raises(RuntimeError, match="read-only"):
            store.set_assignment(0, None)

    def test_missing_column_error_is_informative(self, tmp_path):
        _, store = self._restored_store(tmp_path)
        with pytest.raises(AttributeError, match="only persists"):
            store.records_by_country


class TestAutoWorkerPolicy:
    def test_single_cpu_never_uses_the_pool(self, monkeypatch):
        monkeypatch.setattr(exposure_mod, "_available_cpus", lambda: 1)
        assert exposure_mod._auto_workers(1000) == 0

    def test_small_fleet_stays_serial_even_with_cpus(self, monkeypatch):
        monkeypatch.setattr(exposure_mod, "_available_cpus", lambda: 8)
        assert (
            exposure_mod._auto_workers(AUTO_WORKER_MONITOR_CROSSOVER - 1) == 0
        )

    def test_large_fleet_enables_the_pool_on_multicore(self, monkeypatch):
        monkeypatch.setattr(exposure_mod, "_available_cpus", lambda: 4)
        assert (
            exposure_mod._auto_workers(AUTO_WORKER_MONITOR_CROSSOVER) == 4
        )

    def test_worker_count_is_capped(self, monkeypatch):
        monkeypatch.setattr(exposure_mod, "_available_cpus", lambda: 64)
        assert exposure_mod._auto_workers(1000) == 8

    def test_env_override_wins_over_auto(self, monkeypatch):
        monkeypatch.setattr(exposure_mod, "_available_cpus", lambda: 8)
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "0")
        assert exposure_mod._env_workers() == 0
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "3")
        assert exposure_mod._env_workers() == 3

    def test_bad_env_worker_count_is_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "-1")
        with pytest.raises(ValueError, match="REPRO_EXPOSURE_WORKERS"):
            exposure_mod._env_workers()
        monkeypatch.setenv("REPRO_EXPOSURE_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_EXPOSURE_WORKERS"):
            exposure_mod._env_workers()

    def test_pooled_prefetch_matches_serial(self, tmp_path):
        from repro.core.campaign import scaled_population_config, standard_monitor_fleet

        config = scaled_population_config(0.02, days=3, seed=31)
        serial = ExposureEngine().get(config, 7, days=3)
        pooled = ExposureEngine().get(config, 7, days=3)
        fleet = standard_monitor_fleet(3, 3, 512.0)
        serial.prefetch_masks(fleet, 3, workers=0)
        pooled.prefetch_masks(fleet, 3, workers=2)
        for spec in fleet:
            for day in range(3):
                np.testing.assert_array_equal(
                    serial.monitor_day_mask(spec, day),
                    pooled.monitor_day_mask(spec, day),
                )


class TestParseByteSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1048576", 1024**2),
            ("512K", 512 * 1024),
            ("2M", 2 * 1024**2),
            ("3g", 3 * 1024**3),
            ("1T", 1024**4),
            ("2GiB", 2 * 1024**3),
            ("500MB", 500 * 1024**2),
            ("1.5G", int(1.5 * 1024**3)),
            ("0", 0),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_byte_size(text, "test") == expected

    @pytest.mark.parametrize("text", ["lots", "", "G", "-1", "12X"])
    def test_rejected_forms(self, text):
        with pytest.raises(ValueError, match="test"):
            parse_byte_size(text, "test")

    def test_env_budget_reaches_the_engine(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "2G")
        engine = ExposureEngine(cache_dir=tmp_path)
        assert engine.max_bytes == 2 * 1024**3

    def test_env_shard_days_reaches_the_engine(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_SHARD_DAYS", "5")
        engine = ExposureEngine(cache_dir=tmp_path)
        assert engine.shard_days == 5
        monkeypatch.setenv("REPRO_CACHE_SHARD_DAYS", "0")
        with pytest.raises(ValueError, match="REPRO_CACHE_SHARD_DAYS"):
            ExposureEngine(cache_dir=tmp_path)
