"""Tests for peer records, day snapshots, and RouterInfo construction."""

import pytest

from repro.netdb.identity import RouterIdentity
from repro.netdb.routerinfo import BandwidthTier, Introducer
from repro.sim.bandwidth import TierAssignment
from repro.sim.churn import PresenceSchedule
from repro.sim.peer import (
    PeerDaySnapshot,
    PeerRecord,
    VisibilityClass,
    build_routerinfo,
)


def make_record(presence=None, visibility=VisibilityClass.PUBLIC):
    schedule = PresenceSchedule(join_day=0, leave_day=10, online_probability=1.0)
    return PeerRecord(
        index=0,
        identity=RouterIdentity.from_seed("peer"),
        tier=TierAssignment(
            primary_tier=BandwidthTier.N,
            advertised_tiers=(BandwidthTier.N,),
            shared_kbps=100.0,
            floodfill=True,
        ),
        visibility_class=visibility,
        schedule=schedule,
        country_code="US",
        home_asn=7922,
        port=12345,
        base_visibility=1.0,
        activity=0.8,
        presence=presence if presence is not None else [True] * 10,
    )


def make_snapshot(**overrides):
    defaults = dict(
        peer_id=RouterIdentity.from_seed("peer").hash,
        index=0,
        day=3,
        ip="24.0.1.2",
        ipv6=None,
        asn=7922,
        country_code="US",
        port=12345,
        bandwidth_tier=BandwidthTier.N,
        advertised_tiers=(BandwidthTier.N,),
        floodfill=True,
        reachable=True,
        firewalled=False,
        hidden=False,
        is_new_today=False,
        base_visibility=1.0,
        activity=0.8,
    )
    defaults.update(overrides)
    return PeerDaySnapshot(**defaults)


class TestPeerRecord:
    def test_identity_properties(self):
        record = make_record()
        assert record.peer_id == RouterIdentity.from_seed("peer").hash
        assert record.is_floodfill
        assert record.bandwidth_tier is BandwidthTier.N

    def test_is_online_respects_presence_vector(self):
        record = make_record(presence=[True, False, True])
        assert record.is_online(0)
        assert not record.is_online(1)
        assert record.is_online(2)
        assert not record.is_online(3)
        assert not record.is_online(-1)

    def test_online_days(self):
        record = make_record(presence=[True, False, True, False])
        assert record.online_days() == [0, 2]

    def test_membership(self):
        record = make_record()
        assert record.is_member(0)
        assert record.is_member(9)
        assert not record.is_member(10)
        assert record.membership_days() == 10


class TestPeerDaySnapshot:
    def test_public_snapshot(self):
        snapshot = make_snapshot()
        assert snapshot.has_valid_ip
        assert not snapshot.unknown_ip
        assert snapshot.ip_addresses == ("24.0.1.2",)

    def test_public_snapshot_with_ipv6(self):
        snapshot = make_snapshot(ipv6="2a02:1ef2::c")
        assert set(snapshot.ip_addresses) == {"24.0.1.2", "2a02:1ef2::c"}

    def test_firewalled_snapshot_hides_ip(self):
        snapshot = make_snapshot(firewalled=True, reachable=False)
        assert snapshot.unknown_ip
        assert not snapshot.has_valid_ip
        assert snapshot.ip_addresses == ()

    def test_hidden_snapshot_hides_ip(self):
        snapshot = make_snapshot(hidden=True, reachable=False)
        assert snapshot.unknown_ip
        assert snapshot.ip_addresses == ()


class TestBuildRouterInfo:
    def test_public_routerinfo(self):
        snapshot = make_snapshot()
        info = build_routerinfo(snapshot, RouterIdentity.from_seed("peer"), published_at=1.0)
        assert info.has_valid_ip
        assert info.ip_addresses == ("24.0.1.2",)
        assert info.is_floodfill
        assert info.is_reachable
        assert info.bandwidth_tier is BandwidthTier.N

    def test_firewalled_routerinfo_has_introducers_but_no_ip(self):
        snapshot = make_snapshot(firewalled=True, reachable=False)
        introducers = (
            Introducer(RouterIdentity.from_seed("intro").hash, "5.6.7.8", 9999, 3),
        )
        info = build_routerinfo(
            snapshot, RouterIdentity.from_seed("peer"), published_at=1.0,
            introducers=introducers,
        )
        assert info.is_firewalled
        assert not info.has_valid_ip
        assert len(info.introducers) == 1

    def test_hidden_routerinfo_has_no_addresses(self):
        snapshot = make_snapshot(hidden=True, reachable=False)
        info = build_routerinfo(snapshot, RouterIdentity.from_seed("peer"), published_at=1.0)
        assert info.is_hidden
        assert info.addresses == ()

    def test_ipv6_included(self):
        snapshot = make_snapshot(ipv6="2a02:1ef2::c")
        info = build_routerinfo(snapshot, RouterIdentity.from_seed("peer"), published_at=1.0)
        assert "2a02:1ef2::c" in info.ipv6_addresses

    def test_routerinfo_classification_matches_snapshot(self):
        """A snapshot and the RouterInfo built from it classify identically."""
        for kwargs in (
            {},
            {"firewalled": True, "reachable": False},
            {"hidden": True, "reachable": False},
        ):
            snapshot = make_snapshot(**kwargs)
            introducers = ()
            if snapshot.firewalled:
                introducers = (
                    Introducer(RouterIdentity.from_seed("i").hash, "5.6.7.8", 9998, 1),
                )
            info = build_routerinfo(
                snapshot, RouterIdentity.from_seed("peer"), 0.0, introducers
            )
            assert info.is_firewalled == snapshot.firewalled
            assert info.is_hidden == snapshot.hidden
            assert info.has_valid_ip == snapshot.has_valid_ip
