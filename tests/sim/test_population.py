"""Tests for the calibrated synthetic population."""

import math

import pytest

from repro.sim.population import DayView, I2PPopulation, PopulationConfig


@pytest.fixture(scope="module")
def population_run():
    """A consumed 8-day run of a small population plus its day views."""
    population = I2PPopulation(
        PopulationConfig(target_daily_population=800, horizon_days=8, seed=5)
    )
    views = list(population.iter_days())
    return population, views


class TestPopulationConfig:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PopulationConfig(public_fraction=0.9, firewalled_fraction=0.9)

    def test_positive_population_required(self):
        with pytest.raises(ValueError):
            PopulationConfig(target_daily_population=0)

    def test_positive_horizon_required(self):
        with pytest.raises(ValueError):
            PopulationConfig(horizon_days=0)


class TestDailyPopulation:
    def test_daily_online_near_target(self, population_run):
        _, views = population_run
        for view in views:
            assert 0.75 * 800 <= view.online_count <= 1.25 * 800

    def test_unknown_ip_share_near_half(self, population_run):
        """Roughly half the daily peers have unknown IPs (Section 5.1)."""
        _, views = population_run
        shares = [
            (view.firewalled_count + view.hidden_count) / view.online_count
            for view in views
        ]
        mean_share = sum(shares) / len(shares)
        assert 0.38 <= mean_share <= 0.62

    def test_firewalled_outnumber_hidden(self, population_run):
        _, views = population_run
        for view in views:
            assert view.firewalled_count > view.hidden_count

    def test_floodfill_share_plausible(self, population_run):
        _, views = population_run
        shares = [view.floodfill_count / view.online_count for view in views]
        assert 0.05 <= sum(shares) / len(shares) <= 0.14

    def test_new_arrivals_each_day(self, population_run):
        _, views = population_run
        assert sum(view.new_arrivals for view in views[1:]) > 0

    def test_known_ip_snapshots_have_resolvable_asn(self, population_run):
        population, views = population_run
        view = views[0]
        for snapshot in view.snapshots[:200]:
            if snapshot.has_valid_ip:
                assert snapshot.asn is not None
                assert snapshot.country_code

    def test_ip_addresses_helper(self, population_run):
        _, views = population_run
        view = views[0]
        ips = view.ip_addresses()
        assert len(ips) == view.known_ip_count
        assert all("." in ip for ip in ips)

    def test_by_peer_id_mapping(self, population_run):
        _, views = population_run
        view = views[0]
        mapping = view.by_peer_id()
        assert len(mapping) == view.online_count
        sample = view.snapshots[0]
        assert mapping[sample.peer_id] is sample


class TestDayOrdering:
    def test_days_must_be_consumed_in_order(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=4, seed=1)
        )
        population.day_view(1)
        with pytest.raises(ValueError):
            population.day_view(0)

    def test_day_outside_horizon_rejected(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=4, seed=1)
        )
        with pytest.raises(ValueError):
            population.day_view(4)
        with pytest.raises(ValueError):
            population.day_view(-1)

    def test_skipping_days_still_consistent(self):
        population = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=6, seed=2)
        )
        view = population.day_view(3)
        assert view.day == 3
        assert view.online_count > 0


class TestPeerAttributes:
    def test_total_identities_grow_with_arrivals(self, population_run):
        population, _ = population_run
        assert population.total_identities() > 800

    def test_peer_lookup(self, population_run):
        population, views = population_run
        snapshot = views[0].snapshots[0]
        record = population.peer(snapshot.peer_id)
        assert record.peer_id == snapshot.peer_id

    def test_reproducible_with_same_seed(self):
        config = PopulationConfig(target_daily_population=300, horizon_days=3, seed=77)
        first = I2PPopulation(config).day_view(0)
        second = I2PPopulation(config).day_view(0)
        assert first.online_count == second.online_count
        assert [s.peer_id for s in first.snapshots[:20]] == [
            s.peer_id for s in second.snapshots[:20]
        ]

    def test_different_seeds_differ(self):
        a = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=3, seed=1)
        ).day_view(0)
        b = I2PPopulation(
            PopulationConfig(target_daily_population=300, horizon_days=3, seed=2)
        ).day_view(0)
        assert {s.peer_id for s in a.snapshots} != {s.peer_id for s in b.snapshots}

    def test_estimated_network_size(self, population_run):
        population, _ = population_run
        assert population.estimated_network_size() == 800
