"""Fault-injection plane tests (``sim/faults.py`` + network integration).

The two load-bearing properties of the design get dedicated coverage:

* **Zero-fault exactness** — an all-zero :class:`FaultPlan` normalises to
  no injector at all, so the fault-free plane (including replay) is
  byte-identical to a network that never attached a plan.
* **Deterministic degradation** — the same plan and seed reproduce the
  exact same per-round curve across runs *and* across the batched and
  legacy message planes (fault coins are stateless, order-independent).
"""

import pytest

from repro.netdb.routerinfo import BandwidthTier
from repro.sim.directory import region_of_hash
from repro.sim.faults import (
    CHANNEL_LOOKUP,
    CHANNEL_STORE,
    CrashWindow,
    FaultInjector,
    FaultPlan,
    LinkBlackout,
    ReseedOutage,
    measure_degradation,
    scenario_fault_plan,
)
from repro.sim.network import I2PNetwork

ROUND_SECONDS = 900.0  # 0.25 simulated hours, the measurement default


def _takedown_plan(start_round=3, end_round=7, fraction=0.5, seed=7):
    return scenario_fault_plan(
        {
            "crash_fraction": fraction,
            "outage_start_round": start_round,
            "outage_end_round": end_round,
            "fault_seed": seed,
        },
        round_seconds=ROUND_SECONDS,
    )


class TestFaultPlanValidation:
    def test_defaults_are_noop(self):
        plan = FaultPlan()
        assert plan.is_noop

    def test_any_fault_source_clears_noop(self):
        assert not FaultPlan(drop_probability=0.1).is_noop
        assert not FaultPlan(floodfill_crashes=(CrashWindow(0.0, 10.0),)).is_noop
        assert not FaultPlan(reseed_outages=(ReseedOutage(0.0, 10.0),)).is_noop
        assert not FaultPlan(link_blackouts=(LinkBlackout(0.0, 10.0),)).is_noop

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultPlan(drop_probability=1.5)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="end after it starts"):
            CrashWindow(start=10.0, end=10.0)

    def test_zero_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            ReseedOutage(start=0.0, end=1.0, fraction=0.0)

    def test_blackout_region_must_fit_plan(self):
        with pytest.raises(ValueError, match="region out of range"):
            FaultPlan(link_blackouts=(LinkBlackout(0.0, 1.0, region=4),), regions=4)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="retry budgets"):
            FaultPlan(store_retry_budget=-1)

    def test_shifted_moves_every_window(self):
        plan = FaultPlan(
            floodfill_crashes=(CrashWindow(0.0, 10.0, 0.5),),
            reseed_outages=(ReseedOutage(5.0, 6.0),),
            link_blackouts=(LinkBlackout(1.0, 2.0, region=1),),
        )
        moved = plan.shifted(100.0)
        assert moved.floodfill_crashes[0].start == 100.0
        assert moved.floodfill_crashes[0].end == 110.0
        assert moved.floodfill_crashes[0].fraction == 0.5
        assert moved.reseed_outages[0].start == 105.0
        assert moved.link_blackouts[0].end == 102.0
        assert moved.link_blackouts[0].region == 1


class TestFaultInjectorDeterminism:
    def test_coins_are_instance_independent(self):
        plan = FaultPlan(seed=11, drop_probability=0.5)
        a, b = FaultInjector(plan), FaultInjector(plan)
        for i in range(64):
            src, dst = bytes([i] * 32), bytes([255 - i] * 32)
            assert a.message_dropped(src, dst, 900.0, CHANNEL_STORE) == (
                b.message_dropped(src, dst, 900.0, CHANNEL_STORE)
            )

    def test_seed_changes_the_coins(self):
        flips = []
        for seed in (1, 2):
            injector = FaultInjector(FaultPlan(seed=seed, drop_probability=0.5))
            flips.append(
                tuple(
                    injector.message_dropped(
                        bytes([i] * 32), bytes([i + 1] * 32), 0.0, CHANNEL_STORE
                    )
                    for i in range(64)
                )
            )
        assert flips[0] != flips[1]

    def test_channels_are_independent(self):
        injector = FaultInjector(FaultPlan(seed=3, drop_probability=0.5))
        src, dst = bytes(32), bytes([1] * 32)
        store = [
            injector.message_dropped(src, dst, float(t), CHANNEL_STORE)
            for t in range(64)
        ]
        lookup = [
            injector.message_dropped(src, dst, float(t), CHANNEL_LOOKUP)
            for t in range(64)
        ]
        assert store != lookup

    def test_crash_window_boundaries(self):
        plan = FaultPlan(floodfill_crashes=(CrashWindow(10.0, 20.0, fraction=1.0),))
        injector = FaultInjector(plan)
        router = bytes([7] * 32)
        assert not injector.crashed(router, 9.9)
        assert injector.crashed(router, 10.0)
        assert injector.crashed(router, 19.9)
        assert not injector.crashed(router, 20.0)

    def test_partial_crash_fraction_is_per_router_stable(self):
        plan = FaultPlan(seed=5, floodfill_crashes=(CrashWindow(0.0, 100.0, 0.5),))
        injector = FaultInjector(plan)
        routers = [bytes([i] * 32) for i in range(32)]
        first = [injector.crashed(r, 1.0) for r in routers]
        second = [injector.crashed(r, 50.0) for r in routers]
        assert first == second  # same window, same verdicts at any instant
        assert any(first) and not all(first)

    def test_reseed_outage_blocks_by_hostname(self):
        plan = FaultPlan(reseed_outages=(ReseedOutage(0.0, 10.0, fraction=1.0),))
        injector = FaultInjector(plan)
        assert injector.reseed_blocked("reseed.example", 5.0)
        assert not injector.reseed_blocked("reseed.example", 10.0)

    def test_blackout_cuts_only_border_links(self):
        plan = FaultPlan(
            link_blackouts=(LinkBlackout(0.0, 10.0, region=0),), regions=2
        )
        injector = FaultInjector(plan)
        inside = next(
            bytes([i] * 32) for i in range(64) if region_of_hash(bytes([i] * 32), 2) == 0
        )
        inside2 = next(
            bytes([i] * 32)
            for i in range(64, 128)
            if region_of_hash(bytes([i] * 32), 2) == 0
        )
        outside = next(
            bytes([i] * 32) for i in range(64) if region_of_hash(bytes([i] * 32), 2) == 1
        )
        outside2 = next(
            bytes([i] * 32)
            for i in range(64, 128)
            if region_of_hash(bytes([i] * 32), 2) == 1
        )
        # Exactly one endpoint in the cut region: dropped, either direction.
        assert injector.message_dropped(inside, outside, 5.0, CHANNEL_STORE)
        assert injector.message_dropped(outside, inside, 5.0, CHANNEL_STORE)
        # Intra-region and fully-outside traffic still flows.
        assert not injector.message_dropped(inside, inside2, 5.0, CHANNEL_STORE)
        assert not injector.message_dropped(outside, outside2, 5.0, CHANNEL_STORE)
        # The window closes: everything flows again.
        assert not injector.message_dropped(inside, outside, 10.0, CHANNEL_STORE)

    def test_extreme_drop_probabilities(self):
        never = FaultInjector(FaultPlan(drop_probability=0.0, seed=1))
        always = FaultInjector(FaultPlan(drop_probability=1.0, seed=1))
        src, dst = bytes(32), bytes([9] * 32)
        assert not never.message_dropped(src, dst, 0.0, CHANNEL_STORE)
        assert always.message_dropped(src, dst, 0.0, CHANNEL_STORE)


class TestZeroFaultNormalisation:
    def test_noop_plan_attaches_no_injector(self):
        net = I2PNetwork(seed=3, fault_plan=FaultPlan())
        assert net.fault_plan is not None
        assert net.faults is None

    def test_real_plan_attaches_and_detaches(self):
        net = I2PNetwork(seed=3)
        net.set_fault_plan(FaultPlan(drop_probability=0.5))
        assert net.faults is not None
        net.set_fault_plan(None)
        assert net.faults is None and net.fault_plan is None

    def test_measure_degradation_rejects_noop_plan(self):
        with pytest.raises(ValueError, match="no-op"):
            measure_degradation(FaultPlan(), router_count=10, rounds=2)


class TestDeterministicDegradation:
    def test_same_seed_reproduces_the_exact_curve(self):
        plan = _takedown_plan()
        curves = [
            measure_degradation(plan, router_count=60, rounds=8).curve()
            for _ in range(2)
        ]
        assert curves[0] == curves[1]

    def test_batched_and_legacy_planes_agree(self):
        plan = _takedown_plan()
        batched = measure_degradation(plan, router_count=60, rounds=8, batched=True)
        legacy = measure_degradation(plan, router_count=60, rounds=8, batched=False)
        assert batched.curve() == legacy.curve()

    def test_lossy_planes_agree_including_lookups(self):
        plan = FaultPlan(seed=13, drop_probability=0.25)
        batched = measure_degradation(
            plan, router_count=50, rounds=6, lookup_probes=6, batched=True
        )
        legacy = measure_degradation(
            plan, router_count=50, rounds=6, lookup_probes=6, batched=False
        )
        assert batched.curve() == legacy.curve()
        assert sum(s.store_drops for s in batched.samples) > 0


class TestFloodfillTakedown:
    @pytest.fixture(scope="class")
    def result(self):
        return measure_degradation(_takedown_plan(), router_count=60, rounds=10)

    def test_success_drops_inside_the_window_and_recovers(self, result):
        ratios = [s.publish_success_ratio for s in result.samples]
        assert all(r == 1.0 for r in ratios[:3])  # healthy before
        assert min(ratios[3:7]) < 1.0  # visibly degraded during
        assert all(r == 1.0 for r in ratios[7:])  # recovered after

    def test_crash_flags_follow_the_window(self, result):
        crashed = [s.crashed_floodfills for s in result.samples]
        assert crashed[0] == 0
        assert max(crashed[3:7]) > 0
        assert crashed[-1] == 0

    def test_retries_only_spent_while_degraded(self, result):
        retries = [s.store_retries for s in result.samples]
        assert sum(retries[3:7]) > 0
        assert sum(retries[:3]) == 0 and sum(retries[7:]) == 0

    def test_summary_scalars(self, result):
        summary = result.summary()
        assert summary["publish_success_min"] < 1.0
        assert summary["publish_success_final"] == 1.0
        assert 0 < summary["degraded_rounds"] <= 4
        assert summary["store_retries_total"] > 0


class TestReseedOutage:
    def test_joiners_fail_to_bootstrap_during_the_outage(self):
        plan = scenario_fault_plan(
            {
                "reseed_fraction": 1.0,
                "outage_start_round": 2,
                "outage_end_round": 5,
            },
            round_seconds=ROUND_SECONDS,
        )
        result = measure_degradation(
            plan, router_count=40, rounds=7, joiners_per_round=2, lookup_probes=0
        )
        samples = result.samples
        assert all(s.bootstrap_attempts == 2 for s in samples)
        # Every bootstrap succeeds outside the window, none inside it.
        for sample in samples[:2] + samples[5:]:
            assert sample.bootstrap_successes == sample.bootstrap_attempts
        for sample in samples[2:5]:
            assert sample.bootstrap_successes == 0


class TestLossyNetwork:
    def test_drops_are_recorded_and_absorbed(self):
        plan = FaultPlan(seed=21, drop_probability=0.2)
        result = measure_degradation(plan, router_count=50, rounds=6, lookup_probes=8)
        summary = result.summary()
        assert summary["store_drops_total"] > 0
        assert summary["store_retries_total"] > 0
        # Retries absorb a 20% loss most of the time.
        assert summary["publish_success_mean"] > 0.6

    def test_lookups_time_out_but_mostly_recover(self):
        """Network lookups (no local hit) under heavy loss: some queries
        time out, the retry/exploration fallback still recovers most."""
        net = I2PNetwork(seed=5)
        for _ in range(5):
            net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        routers = net.batch_add_routers(35)
        net.run_convergence_rounds(rounds=2)
        net.set_fault_plan(FaultPlan(seed=21, drop_probability=0.4))
        requester = routers[0]
        successes = 0
        for target in routers[1:21]:
            requester.store.remove_routerinfo(target.hash)
            if net.lookup_routerinfo(requester.hash, target.hash) is not None:
                successes += 1
        metrics = net.fault_metrics
        assert metrics._lookup_timeouts > 0
        assert successes > 10
        # Timeouts and hops show up as modelled latency.
        assert metrics._lookup_latency_sum > 0.0


class TestScenarioFaultPlan:
    def test_round_windows_convert_to_seconds(self):
        plan = scenario_fault_plan(
            {"crash_fraction": 0.5, "outage_start_round": 8, "outage_end_round": 16},
            round_seconds=ROUND_SECONDS,
        )
        window = plan.floodfill_crashes[0]
        assert window.start == 8 * ROUND_SECONDS
        assert window.end == 16 * ROUND_SECONDS
        assert window.fraction == 0.5

    def test_unspecified_faults_stay_off(self):
        plan = scenario_fault_plan(
            {"drop_probability": 0.2}, round_seconds=ROUND_SECONDS
        )
        assert plan.drop_probability == 0.2
        assert not plan.floodfill_crashes
        assert not plan.reseed_outages
        assert not plan.link_blackouts

    def test_region_counts_cover_the_network(self):
        plan = scenario_fault_plan(
            {"blackout_region": 1, "outage_start_round": 1, "outage_end_round": 2},
            round_seconds=ROUND_SECONDS,
        )
        result = measure_degradation(plan, router_count=40, rounds=3, lookup_probes=0)
        assert sum(result.region_counts) == 40
        assert len(result.region_counts) == plan.regions


class TestCrashedFloodfillBehaviour:
    def test_crashed_floodfill_times_out_lookups(self):
        net = I2PNetwork(seed=9)
        ff = net.add_router(floodfill=True, bandwidth_tier=BandwidthTier.O)
        target = net.add_router(do_bootstrap=False)
        requester = net.add_router(do_bootstrap=False)
        net.run_convergence_rounds(rounds=2)
        # Sanity: reachable while healthy.
        assert net.lookup_routerinfo(requester.hash, target.hash) is not None
        net.set_fault_plan(
            FaultPlan(
                floodfill_crashes=(CrashWindow(0.0, net.clock.now + 1.0),),
                lookup_retry_budget=0,
            )
        )
        # Not in the requester's local store and the only floodfill is
        # down: the lookup must fail (timeouts), not crash.
        requester.store.remove_routerinfo(target.hash)
        assert net.lookup_routerinfo(requester.hash, target.hash) is None
        assert net.fault_metrics._lookup_timeouts > 0
