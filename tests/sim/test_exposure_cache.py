"""Tests for the on-disk npz exposure cache (``sim/exposure_cache.py``)."""

import numpy as np
import pytest

from repro.core.campaign import run_main_campaign, scaled_population_config
from repro.core.reporting import render_campaign_summary, render_table1
from repro.core.blocking import blocking_curve
from repro.core.population import daily_population_figure
from repro.sim.exposure import CachedExposure, ExposureEngine
from repro.sim import exposure_cache
from repro.sim.rng import derive_seed


def _key(scale=0.02, days=4, seed=2018):
    config = scaled_population_config(scale, days=days, seed=seed)
    return config, derive_seed(seed, "observation")


class TestDigest:
    def test_digest_is_stable(self):
        config, obs_seed = _key()
        assert exposure_cache.exposure_digest(
            config, obs_seed
        ) == exposure_cache.exposure_digest(config, obs_seed)

    def test_digest_varies_with_config_and_seed(self):
        config, obs_seed = _key()
        other_config, _ = _key(scale=0.03)
        digests = {
            exposure_cache.exposure_digest(config, obs_seed),
            exposure_cache.exposure_digest(other_config, obs_seed),
            exposure_cache.exposure_digest(config, obs_seed + 1),
        }
        assert len(digests) == 3


class TestRoundTrip:
    def test_save_load_roundtrip_arrays(self, tmp_path):
        config, obs_seed = _key()
        engine = ExposureEngine()
        exposure = engine.get(config, obs_seed, days=3)
        path = exposure_cache.save_exposure(exposure, tmp_path)
        assert path.is_file()

        restored = exposure_cache.load_exposure(path)
        assert isinstance(restored, CachedExposure)
        assert restored.days_materialised == 3
        for day in range(3):
            original = exposure.views[day].columns
            loaded = restored.views[day].columns
            np.testing.assert_array_equal(original.indices, loaded.indices)
            np.testing.assert_array_equal(original.firewalled, loaded.firewalled)
            np.testing.assert_array_equal(original.valid_ip, loaded.valid_ip)
            assert original.ip.tolist() == loaded.ip.tolist()
            assert original.ipv6.tolist() == loaded.ipv6.tolist()
            assert original.country.tolist() == loaded.country.tolist()
            np.testing.assert_array_equal(original.asn, loaded.asn)
            np.testing.assert_array_equal(
                np.asarray(exposure._exposures[day].visibility),
                np.asarray(restored._exposures[day].visibility),
            )
            assert (
                exposure.views[day].columns.peer_ids.tolist()
                == restored.views[day].columns.peer_ids.tolist()
            )

    def test_restored_masks_are_bit_identical(self, tmp_path):
        from repro.sim.observation import MonitorMode, MonitorSpec

        config, obs_seed = _key()
        engine = ExposureEngine()
        exposure = engine.get(config, obs_seed, days=2)
        spec = MonitorSpec("ff-0", MonitorMode.FLOODFILL, 8000.0)
        expected = exposure.monitor_day_mask(spec, 1)
        path = exposure_cache.save_exposure(exposure, tmp_path)
        restored = exposure_cache.load_exposure(path)
        np.testing.assert_array_equal(expected, restored.monitor_day_mask(spec, 1))

    def test_restored_exposure_cannot_extend(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=2)
        restored = exposure_cache.load_exposure(
            exposure_cache.save_exposure(exposure, tmp_path)
        )
        with pytest.raises(RuntimeError, match="restored from the disk cache"):
            restored.ensure_days(3)

    def test_restored_population_is_read_only(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=1)
        restored = exposure_cache.load_exposure(
            exposure_cache.save_exposure(exposure, tmp_path)
        )
        with pytest.raises(RuntimeError, match="read-only"):
            restored.population.day_view(0)
        assert restored.population.total_identities() == exposure.population.columns.size


class TestEngineIntegration:
    def test_second_engine_loads_from_disk_and_skips_build(self, tmp_path):
        first = ExposureEngine(cache_dir=tmp_path)
        result_fresh = run_main_campaign(days=4, scale=0.02, seed=5, engine=first)
        assert first.misses == 1 and first.disk_hits == 0
        assert list(tmp_path.glob("*.npz"))

        second = ExposureEngine(cache_dir=tmp_path)
        result_cached = run_main_campaign(days=4, scale=0.02, seed=5, engine=second)
        assert second.misses == 0
        assert second.disk_hits == 1

        # Full pipeline byte-identity between fresh and cache-restored runs.
        assert render_campaign_summary(result_fresh) == render_campaign_summary(
            result_cached
        )
        assert render_table1(result_fresh.log) == render_table1(result_cached.log)
        assert blocking_curve(result_fresh).to_text() == blocking_curve(
            result_cached
        ).to_text()
        assert daily_population_figure(result_fresh.log).to_text() == (
            daily_population_figure(result_cached.log).to_text()
        )

    def test_restored_run_supports_the_aggregate_compatibility_view(self, tmp_path):
        """log.peers must still materialise on a cache-restored campaign
        (advertised tiers come from the persisted bitmask column, not the
        absent PeerRecord objects)."""
        first = ExposureEngine(cache_dir=tmp_path)
        fresh = run_main_campaign(days=3, scale=0.02, seed=6, engine=first)
        second = ExposureEngine(cache_dir=tmp_path)
        cached = run_main_campaign(days=3, scale=0.02, seed=6, engine=second)
        assert second.disk_hits == 1
        fresh_peers = fresh.log.peers
        cached_peers = cached.log.peers
        assert set(fresh_peers) == set(cached_peers)
        for peer_id, reference in fresh_peers.items():
            restored = cached_peers[peer_id]
            assert restored.days_observed == reference.days_observed
            assert restored.countries == reference.countries
            assert restored.asns == reference.asns
            assert restored.advertised_flag_days == reference.advertised_flag_days
            assert restored.primary_tier_days == reference.primary_tier_days
        assert len(cached.log.known_ip_peers()) == len(fresh.log.known_ip_peers())

    def test_short_cache_entry_is_rebuilt_and_overwritten(self, tmp_path):
        config, obs_seed = _key(days=6)
        short_engine = ExposureEngine(cache_dir=tmp_path)
        short_engine.get(config, obs_seed, days=2)

        long_engine = ExposureEngine(cache_dir=tmp_path)
        entry = long_engine.get(config, obs_seed, days=5)
        # Too short on disk: a fresh build, not a restored entry.
        assert long_engine.misses == 1 and long_engine.disk_hits == 0
        assert not isinstance(entry, CachedExposure)
        assert entry.days_materialised >= 5

        # The overwritten file now serves the longer request.
        third = ExposureEngine(cache_dir=tmp_path)
        third.get(config, obs_seed, days=5)
        assert third.disk_hits == 1

    def test_in_memory_restored_entry_rebuilds_on_longer_request(self, tmp_path):
        config, obs_seed = _key(days=6)
        ExposureEngine(cache_dir=tmp_path).get(config, obs_seed, days=2)
        engine = ExposureEngine(cache_dir=tmp_path)
        restored = engine.get(config, obs_seed, days=2)
        assert isinstance(restored, CachedExposure)
        rebuilt = engine.get(config, obs_seed, days=4)
        assert not isinstance(rebuilt, CachedExposure)
        assert rebuilt.days_materialised >= 4

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        config, obs_seed = _key()
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        engine = ExposureEngine(cache_dir=tmp_path)
        entry = engine.get(config, obs_seed, days=2)
        assert engine.misses == 1 and engine.disk_hits == 0
        assert entry.days_materialised >= 2

    def test_engine_without_cache_dir_writes_nothing(self, tmp_path):
        config, obs_seed = _key()
        ExposureEngine().get(config, obs_seed, days=2)
        assert not list(tmp_path.glob("*.npz"))


class TestCacheMaintenance:
    def test_cache_entries_and_clear(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=2)
        exposure_cache.save_exposure(exposure, tmp_path)
        entries = exposure_cache.cache_entries(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["days"] == 2
        assert entry["peers"] == exposure.population.columns.size
        assert entry["seed"] == config.seed
        assert exposure_cache.clear_cache(tmp_path) == 1
        assert exposure_cache.cache_entries(tmp_path) == []

    def test_cache_entries_flags_unreadable_files(self, tmp_path):
        (tmp_path / "deadbeef.npz").write_bytes(b"junk")
        entries = exposure_cache.cache_entries(tmp_path)
        assert entries and entries[0]["error"] == "unreadable"

    def test_missing_directory_is_empty(self, tmp_path):
        missing = tmp_path / "nope"
        assert exposure_cache.cache_entries(missing) == []
        assert exposure_cache.clear_cache(missing) == 0


class TestCorruptArchives:
    def test_truncated_zip_is_a_miss_not_a_crash(self, tmp_path):
        """A file with a valid PK magic but garbage body (e.g. a torn copy)
        must degrade to a rebuild, not raise zipfile.BadZipFile."""
        config, obs_seed = _key()
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        engine = ExposureEngine(cache_dir=tmp_path)
        entry = engine.get(config, obs_seed, days=2)
        assert engine.misses == 1 and engine.disk_hits == 0
        assert entry.days_materialised >= 2

    def test_cache_entries_survive_truncated_zip(self, tmp_path):
        (tmp_path / "cafecafe.npz").write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        entries = exposure_cache.cache_entries(tmp_path)
        assert entries and entries[0]["error"] == "unreadable"

    def test_evict_corrupt_warns_and_removes(self, tmp_path, caplog):
        import logging

        bad = tmp_path / "deadbeef.npz"
        bad.write_bytes(b"junk")
        with caplog.at_level(logging.WARNING, logger="repro.sim.exposure_cache"):
            assert exposure_cache.evict_corrupt(bad, ValueError("boom"))
        assert not bad.exists()
        assert any(
            "evicting corrupt exposure cache file" in record.message
            and "boom" in record.message
            for record in caplog.records
        )

    def test_evict_corrupt_tolerates_a_missing_file(self, tmp_path):
        assert not exposure_cache.evict_corrupt(
            tmp_path / "gone.npz", OSError("torn")
        )

    def test_corrupt_file_is_warned_evicted_and_regenerated(self, tmp_path, caplog):
        """End to end: a corrupt file at the cache path triggers a warning,
        gets deleted, and the rebuild writes a healthy replacement that the
        next engine restores from disk."""
        import logging

        config, obs_seed = _key()
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        engine = ExposureEngine(cache_dir=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.sim.exposure_cache"):
            engine.get(config, obs_seed, days=2)
        assert any(
            "evicting corrupt exposure cache file" in record.message
            for record in caplog.records
        )
        # The rebuild overwrote the evicted file with a loadable archive.
        assert path.is_file()
        assert exposure_cache.read_meta(path)["days"] >= 2
        fresh = ExposureEngine(cache_dir=tmp_path)
        fresh.get(config, obs_seed, days=2)
        assert fresh.disk_hits == 1 and fresh.misses == 0
