"""Tests for the sharded on-disk exposure bundle (``sim/exposure_cache.py``)."""

import json
import logging

import numpy as np
import pytest

from repro.core.campaign import run_main_campaign, scaled_population_config
from repro.core.reporting import render_campaign_summary, render_table1
from repro.core.blocking import blocking_curve
from repro.core.population import daily_population_figure
from repro.sim.exposure import CachedExposure, ExposureEngine
from repro.sim import exposure_cache
from repro.sim.rng import derive_seed


def _key(scale=0.02, days=4, seed=2018):
    config = scaled_population_config(scale, days=days, seed=seed)
    return config, derive_seed(seed, "observation")


class TestDigest:
    def test_digest_is_stable(self):
        config, obs_seed = _key()
        assert exposure_cache.exposure_digest(
            config, obs_seed
        ) == exposure_cache.exposure_digest(config, obs_seed)

    def test_digest_varies_with_config_and_seed(self):
        config, obs_seed = _key()
        other_config, _ = _key(scale=0.03)
        digests = {
            exposure_cache.exposure_digest(config, obs_seed),
            exposure_cache.exposure_digest(other_config, obs_seed),
            exposure_cache.exposure_digest(config, obs_seed + 1),
        }
        assert len(digests) == 3


class TestBundleLayout:
    def test_bundle_is_a_directory_with_meta_store_and_shards(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=3)
        path = exposure_cache.save_exposure(exposure, tmp_path, shard_days=2)
        assert path.is_dir()
        meta = exposure_cache.read_meta(path)
        assert meta["format_version"] == exposure_cache.FORMAT_VERSION
        assert meta["days"] == 3
        assert meta["shard_days"] == 2
        assert (path / "store").is_dir()
        # days 0-1 in the first shard, day 2 in the second
        assert (path / "days-00000").is_dir()
        assert (path / "days-00002").is_dir()
        assert len(meta["online"]) == 3

    def test_no_temp_directories_left_behind(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=2)
        exposure_cache.save_exposure(exposure, tmp_path)
        leftovers = [
            p for p in tmp_path.iterdir() if p.name.startswith(".exposure-")
        ]
        assert leftovers == []


class TestRoundTrip:
    def test_save_load_roundtrip_arrays(self, tmp_path):
        config, obs_seed = _key()
        engine = ExposureEngine()
        exposure = engine.get(config, obs_seed, days=3)
        path = exposure_cache.save_exposure(exposure, tmp_path)
        assert path.is_dir()

        restored = exposure_cache.load_exposure(path)
        assert isinstance(restored, CachedExposure)
        assert restored.days_materialised == 3
        for day in range(3):
            original = exposure.views[day].columns
            loaded = restored.views[day].columns
            np.testing.assert_array_equal(original.indices, loaded.indices)
            np.testing.assert_array_equal(original.firewalled, loaded.firewalled)
            np.testing.assert_array_equal(original.valid_ip, loaded.valid_ip)
            assert original.ip.tolist() == loaded.ip.tolist()
            assert original.ipv6.tolist() == loaded.ipv6.tolist()
            assert original.country.tolist() == loaded.country.tolist()
            np.testing.assert_array_equal(original.asn, loaded.asn)
            np.testing.assert_array_equal(
                np.asarray(exposure._exposures[day].visibility),
                np.asarray(restored._exposures[day].visibility),
            )
            assert (
                exposure.views[day].columns.peer_ids.tolist()
                == restored.views[day].columns.peer_ids.tolist()
            )

    def test_roundtrip_across_shard_boundaries(self, tmp_path):
        config, obs_seed = _key(days=7)
        exposure = ExposureEngine().get(config, obs_seed, days=7)
        path = exposure_cache.save_exposure(exposure, tmp_path, shard_days=3)
        restored = exposure_cache.load_exposure(path)
        assert restored.day_shard_size == 3
        # Access out of order so the reader's shard window has to rotate.
        for day in (6, 0, 4, 2, 5, 1, 3):
            original = exposure.views[day].columns
            loaded = restored.views[day].columns
            np.testing.assert_array_equal(original.indices, loaded.indices)
            assert original.ip.tolist() == loaded.ip.tolist()

    def test_restored_masks_are_bit_identical(self, tmp_path):
        from repro.sim.observation import MonitorMode, MonitorSpec

        config, obs_seed = _key()
        engine = ExposureEngine()
        exposure = engine.get(config, obs_seed, days=2)
        spec = MonitorSpec("ff-0", MonitorMode.FLOODFILL, 8000.0)
        expected = exposure.monitor_day_mask(spec, 1)
        path = exposure_cache.save_exposure(exposure, tmp_path)
        restored = exposure_cache.load_exposure(path)
        np.testing.assert_array_equal(expected, restored.monitor_day_mask(spec, 1))

    def test_restored_exposure_cannot_extend(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=2)
        restored = exposure_cache.load_exposure(
            exposure_cache.save_exposure(exposure, tmp_path)
        )
        with pytest.raises(RuntimeError, match="restored from the disk cache"):
            restored.ensure_days(3)

    def test_restored_population_is_read_only(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=1)
        restored = exposure_cache.load_exposure(
            exposure_cache.save_exposure(exposure, tmp_path)
        )
        with pytest.raises(RuntimeError, match="read-only"):
            restored.population.day_view(0)
        assert restored.population.total_identities() == exposure.population.columns.size

    def test_restored_store_is_read_only(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=1)
        restored = exposure_cache.load_exposure(
            exposure_cache.save_exposure(exposure, tmp_path)
        )
        with pytest.raises(RuntimeError, match="read-only"):
            restored.population.columns.append(object(), None, None)

    def test_release_day_state_keeps_later_days_readable(self, tmp_path):
        config, obs_seed = _key(days=6)
        exposure = ExposureEngine().get(config, obs_seed, days=6)
        restored = exposure_cache.load_exposure(
            exposure_cache.save_exposure(exposure, tmp_path, shard_days=2)
        )
        _ = restored.views[0], restored.views[1]
        restored.release_day_state(2)
        # Released days can still be re-read (from disk), later days too.
        np.testing.assert_array_equal(
            exposure.views[1].columns.indices, restored.views[1].columns.indices
        )
        np.testing.assert_array_equal(
            exposure.views[5].columns.indices, restored.views[5].columns.indices
        )


class TestEngineIntegration:
    def test_second_engine_loads_from_disk_and_skips_build(self, tmp_path):
        first = ExposureEngine(cache_dir=tmp_path)
        result_fresh = run_main_campaign(days=4, scale=0.02, seed=5, engine=first)
        assert first.misses == 1 and first.disk_hits == 0
        first.flush()
        assert [p for p in tmp_path.iterdir() if exposure_cache._is_bundle(p)]

        second = ExposureEngine(cache_dir=tmp_path)
        result_cached = run_main_campaign(days=4, scale=0.02, seed=5, engine=second)
        assert second.misses == 0
        assert second.disk_hits == 1

        # Full pipeline byte-identity between fresh and cache-restored runs.
        assert render_campaign_summary(result_fresh) == render_campaign_summary(
            result_cached
        )
        assert render_table1(result_fresh.log) == render_table1(result_cached.log)
        assert blocking_curve(result_fresh).to_text() == blocking_curve(
            result_cached
        ).to_text()
        assert daily_population_figure(result_fresh.log).to_text() == (
            daily_population_figure(result_cached.log).to_text()
        )

    def test_restored_run_supports_the_aggregate_compatibility_view(self, tmp_path):
        """log.peers must still materialise on a cache-restored campaign
        (advertised tiers come from the persisted bitmask column, not the
        absent PeerRecord objects)."""
        first = ExposureEngine(cache_dir=tmp_path)
        fresh = run_main_campaign(days=3, scale=0.02, seed=6, engine=first)
        first.flush()
        second = ExposureEngine(cache_dir=tmp_path)
        cached = run_main_campaign(days=3, scale=0.02, seed=6, engine=second)
        assert second.disk_hits == 1
        fresh_peers = fresh.log.peers
        cached_peers = cached.log.peers
        assert set(fresh_peers) == set(cached_peers)
        for peer_id, reference in fresh_peers.items():
            restored = cached_peers[peer_id]
            assert restored.days_observed == reference.days_observed
            assert restored.countries == reference.countries
            assert restored.asns == reference.asns
            assert restored.advertised_flag_days == reference.advertised_flag_days
            assert restored.primary_tier_days == reference.primary_tier_days
        assert len(cached.log.known_ip_peers()) == len(fresh.log.known_ip_peers())

    def test_short_cache_entry_is_rebuilt_and_overwritten(self, tmp_path):
        config, obs_seed = _key(days=6)
        short_engine = ExposureEngine(cache_dir=tmp_path)
        short_engine.get(config, obs_seed, days=2)
        short_engine.flush()

        long_engine = ExposureEngine(cache_dir=tmp_path)
        entry = long_engine.get(config, obs_seed, days=5)
        # Too short on disk: a fresh build, not a restored entry.
        assert long_engine.misses == 1 and long_engine.disk_hits == 0
        assert not isinstance(entry, CachedExposure)
        assert entry.days_materialised >= 5
        long_engine.flush()

        # The overwritten bundle now serves the longer request.
        third = ExposureEngine(cache_dir=tmp_path)
        third.get(config, obs_seed, days=5)
        assert third.disk_hits == 1

    def test_in_memory_restored_entry_rebuilds_on_longer_request(self, tmp_path):
        config, obs_seed = _key(days=6)
        seeder = ExposureEngine(cache_dir=tmp_path)
        seeder.get(config, obs_seed, days=2)
        seeder.flush()
        engine = ExposureEngine(cache_dir=tmp_path)
        restored = engine.get(config, obs_seed, days=2)
        assert isinstance(restored, CachedExposure)
        rebuilt = engine.get(config, obs_seed, days=4)
        assert not isinstance(rebuilt, CachedExposure)
        assert rebuilt.days_materialised >= 4

    def test_corrupt_meta_is_a_miss(self, tmp_path):
        config, obs_seed = _key()
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        path.mkdir(parents=True)
        (path / "meta.json").write_text("not json {")
        engine = ExposureEngine(cache_dir=tmp_path)
        entry = engine.get(config, obs_seed, days=2)
        assert engine.misses == 1 and engine.disk_hits == 0
        assert entry.days_materialised >= 2

    def test_engine_without_cache_dir_writes_nothing(self, tmp_path):
        config, obs_seed = _key()
        ExposureEngine().get(config, obs_seed, days=2)
        assert not list(tmp_path.iterdir())

    def test_synchronous_writes_land_before_get_returns(self, tmp_path):
        config, obs_seed = _key()
        engine = ExposureEngine(cache_dir=tmp_path, background_writes=False)
        engine.get(config, obs_seed, days=2)
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        assert exposure_cache._is_bundle(path)

    def test_background_write_is_joined_by_same_engine_reload(self, tmp_path):
        """An engine that just scheduled a background save must not race
        itself when the entry is evicted from RAM and re-requested."""
        config, obs_seed = _key()
        engine = ExposureEngine(cache_dir=tmp_path, capacity=1)
        engine.get(config, obs_seed, days=2)
        # Evict the in-memory entry while the save may still be in flight.
        other_config, other_seed = _key(seed=3)
        engine.get(other_config, other_seed, days=1)
        engine.get(config, obs_seed, days=2)
        assert engine.disk_hits == 1

    def test_flush_is_idempotent(self, tmp_path):
        engine = ExposureEngine(cache_dir=tmp_path)
        config, obs_seed = _key()
        engine.get(config, obs_seed, days=1)
        engine.flush()
        engine.flush()
        assert exposure_cache._is_bundle(
            exposure_cache.cache_path(tmp_path, config, obs_seed)
        )


class TestOutOfCoreBackend:
    def test_out_of_core_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            ExposureEngine(backend="out_of_core")

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown exposure backend"):
            ExposureEngine(backend="ram")

    def test_hyphenated_backend_name_is_accepted(self, tmp_path):
        engine = ExposureEngine(cache_dir=tmp_path, backend="out-of-core")
        assert engine.backend == "out_of_core"

    def test_miss_builds_a_streamed_entry(self, tmp_path):
        config, obs_seed = _key(days=5)
        engine = ExposureEngine(
            cache_dir=tmp_path, backend="out_of_core", shard_days=2
        )
        entry = engine.get(config, obs_seed, days=5)
        assert isinstance(entry, CachedExposure)
        assert entry.days_materialised == 5
        assert engine.misses == 1
        # The bundle landed on disk as part of the build itself.
        assert exposure_cache._is_bundle(
            exposure_cache.cache_path(tmp_path, config, obs_seed)
        )

    def test_out_of_core_matches_in_memory_bit_for_bit(self, tmp_path):
        config, obs_seed = _key(days=5)
        mem = ExposureEngine().get(config, obs_seed, days=5)
        ooc = ExposureEngine(
            cache_dir=tmp_path, backend="out_of_core", shard_days=2
        ).get(config, obs_seed, days=5)
        for day in range(5):
            a, b = mem.views[day].columns, ooc.views[day].columns
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.firewalled, b.firewalled)
            np.testing.assert_array_equal(a.tier_code, b.tier_code)
            assert a.ip.tolist() == b.ip.tolist()
            assert a.peer_ids.tolist() == b.peer_ids.tolist()
            np.testing.assert_array_equal(
                np.asarray(mem._exposures[day].visibility),
                np.asarray(ooc._exposures[day].visibility),
            )


class TestCacheMaintenance:
    def test_cache_entries_and_clear(self, tmp_path):
        config, obs_seed = _key()
        exposure = ExposureEngine().get(config, obs_seed, days=2)
        exposure_cache.save_exposure(exposure, tmp_path)
        entries = exposure_cache.cache_entries(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["days"] == 2
        assert entry["peers"] == exposure.population.columns.size
        assert entry["seed"] == config.seed
        assert entry["bytes"] > 0
        assert exposure_cache.clear_cache(tmp_path) == 1
        assert exposure_cache.cache_entries(tmp_path) == []

    def test_cache_entries_flags_unreadable_bundles(self, tmp_path):
        bad = tmp_path / "deadbeef"
        bad.mkdir()
        (bad / "meta.json").write_text("junk {")
        entries = exposure_cache.cache_entries(tmp_path)
        assert entries and entries[0]["error"] == "unreadable"

    def test_cache_entries_flags_legacy_npz(self, tmp_path):
        (tmp_path / "cafecafe.npz").write_bytes(b"PK\x03\x04" + b"\x00" * 64)
        entries = exposure_cache.cache_entries(tmp_path)
        assert entries and entries[0]["error"] == "legacy v1 archive"

    def test_clear_cache_sweeps_legacy_and_temp_dirs(self, tmp_path):
        (tmp_path / "cafecafe.npz").write_bytes(b"junk")
        stale = tmp_path / ".exposure-leftover"
        stale.mkdir()
        (stale / "partial.bin").write_bytes(b"\x00")
        assert exposure_cache.clear_cache(tmp_path) == 1
        assert not (tmp_path / "cafecafe.npz").exists()
        assert not stale.exists()

    def test_missing_directory_is_empty(self, tmp_path):
        missing = tmp_path / "nope"
        assert exposure_cache.cache_entries(missing) == []
        assert exposure_cache.clear_cache(missing) == 0

    def test_human_bytes(self):
        assert exposure_cache.human_bytes(512) == "512 B"
        assert exposure_cache.human_bytes(2048) == "2.0 KiB"
        assert exposure_cache.human_bytes(5 * 1024**2) == "5.0 MiB"
        assert exposure_cache.human_bytes(3 * 1024**3) == "3.0 GiB"


class TestCacheBudget:
    def _bundle(self, directory, seed):
        config, obs_seed = _key(seed=seed)
        exposure = ExposureEngine().get(config, obs_seed, days=1)
        return exposure_cache.save_exposure(exposure, directory)

    def test_oldest_entries_are_evicted_first(self, tmp_path, caplog):
        import os
        import time

        first = self._bundle(tmp_path, seed=1)
        second = self._bundle(tmp_path, seed=2)
        # Make the first bundle decisively older than the second.
        old = time.time() - 10_000
        os.utime(first / "meta.json", (old, old))
        budget = exposure_cache.bundle_size(second) + 1
        with caplog.at_level(logging.INFO, logger="repro.sim.exposure_cache"):
            evicted = exposure_cache.enforce_cache_budget(tmp_path, budget)
        assert evicted == [first]
        assert not first.exists()
        assert second.exists()
        assert any("evicted" in record.message for record in caplog.records)

    def test_protected_entry_survives_even_over_budget(self, tmp_path):
        bundle = self._bundle(tmp_path, seed=1)
        evicted = exposure_cache.enforce_cache_budget(tmp_path, 1, protect=bundle)
        assert evicted == []
        assert bundle.exists()

    def test_budget_large_enough_evicts_nothing(self, tmp_path):
        bundle = self._bundle(tmp_path, seed=1)
        assert exposure_cache.enforce_cache_budget(tmp_path, 10 * 1024**3) == []
        assert bundle.exists()

    def test_loading_bumps_recency(self, tmp_path):
        import os
        import time

        bundle = self._bundle(tmp_path, seed=1)
        old = time.time() - 10_000
        os.utime(bundle / "meta.json", (old, old))
        before = exposure_cache._bundle_recency(bundle)
        exposure_cache.load_exposure(bundle)
        assert exposure_cache._bundle_recency(bundle) > before

    def test_engine_enforces_budget_after_save(self, tmp_path):
        config_a, seed_a = _key(seed=1)
        config_b, seed_b = _key(seed=2)
        probe = ExposureEngine(cache_dir=tmp_path, background_writes=False)
        probe.get(config_a, seed_a, days=1)
        bundle_bytes = exposure_cache.bundle_size(
            exposure_cache.cache_path(tmp_path, config_a, seed_a)
        )
        exposure_cache.clear_cache(tmp_path)

        engine = ExposureEngine(
            cache_dir=tmp_path,
            background_writes=False,
            max_bytes=int(bundle_bytes * 1.5),
        )
        engine.get(config_a, seed_a, days=1)
        engine.get(config_b, seed_b, days=1)
        bundles = [p for p in tmp_path.iterdir() if exposure_cache._is_bundle(p)]
        # Only the most recent bundle fits the budget.
        assert len(bundles) == 1
        assert bundles[0] == exposure_cache.cache_path(tmp_path, config_b, seed_b)


class TestCorruptBundles:
    def test_truncated_shard_is_a_miss_not_a_crash(self, tmp_path):
        """A bundle with a torn shard file (e.g. a killed copy) must degrade
        to a rebuild, not raise on load."""
        config, obs_seed = _key()
        engine = ExposureEngine(cache_dir=tmp_path, background_writes=False)
        engine.get(config, obs_seed, days=2)
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        shard_file = path / "days-00000" / "indices.bin"
        shard_file.write_bytes(shard_file.read_bytes()[:-4])

        fresh = ExposureEngine(cache_dir=tmp_path)
        entry = fresh.get(config, obs_seed, days=2)
        assert fresh.misses == 1 and fresh.disk_hits == 0
        assert entry.days_materialised >= 2

    def test_missing_store_file_is_a_miss(self, tmp_path):
        config, obs_seed = _key()
        ExposureEngine(cache_dir=tmp_path, background_writes=False).get(
            config, obs_seed, days=2
        )
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        (path / "store" / "tier_code.bin").unlink()
        fresh = ExposureEngine(cache_dir=tmp_path)
        entry = fresh.get(config, obs_seed, days=2)
        assert fresh.misses == 1 and fresh.disk_hits == 0
        assert entry.days_materialised >= 2

    def test_stale_format_version_is_a_miss(self, tmp_path):
        config, obs_seed = _key()
        ExposureEngine(cache_dir=tmp_path, background_writes=False).get(
            config, obs_seed, days=2
        )
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        meta = exposure_cache.read_meta(path)
        meta["format_version"] = 1
        (path / "meta.json").write_text(json.dumps(meta))
        fresh = ExposureEngine(cache_dir=tmp_path)
        fresh.get(config, obs_seed, days=2)
        assert fresh.misses == 1 and fresh.disk_hits == 0

    def test_evict_corrupt_warns_and_removes(self, tmp_path, caplog):
        bad = tmp_path / "deadbeef"
        bad.mkdir()
        (bad / "meta.json").write_text("junk")
        (bad / "store").mkdir()
        (bad / "store" / "x.bin").write_bytes(b"\x00")
        with caplog.at_level(logging.WARNING, logger="repro.sim.exposure_cache"):
            assert exposure_cache.evict_corrupt(bad, ValueError("boom"))
        assert not bad.exists()
        assert any(
            "evicting corrupt exposure cache entry" in record.message
            and "boom" in record.message
            for record in caplog.records
        )

    def test_evict_corrupt_tolerates_a_missing_entry(self, tmp_path):
        assert not exposure_cache.evict_corrupt(
            tmp_path / "gone", OSError("torn")
        )

    def test_corrupt_bundle_is_warned_evicted_and_regenerated(self, tmp_path, caplog):
        """End to end: a corrupt bundle at the cache path triggers a warning,
        gets deleted, and the rebuild writes a healthy replacement that the
        next engine restores from disk."""
        config, obs_seed = _key()
        ExposureEngine(cache_dir=tmp_path, background_writes=False).get(
            config, obs_seed, days=2
        )
        path = exposure_cache.cache_path(tmp_path, config, obs_seed)
        shard_file = path / "days-00000" / "indices.bin"
        shard_file.write_bytes(b"\x00" * 3)

        engine = ExposureEngine(cache_dir=tmp_path, background_writes=False)
        with caplog.at_level(logging.WARNING, logger="repro.sim.exposure_cache"):
            engine.get(config, obs_seed, days=2)
        assert any(
            "evicting corrupt exposure cache entry" in record.message
            for record in caplog.records
        )
        # The rebuild overwrote the evicted bundle with a loadable one.
        assert exposure_cache._is_bundle(path)
        assert exposure_cache.read_meta(path)["days"] >= 2
        fresh = ExposureEngine(cache_dir=tmp_path)
        fresh.get(config, obs_seed, days=2)
        assert fresh.disk_hits == 1 and fresh.misses == 0
