"""Equivalence-of-distributions tests for the batched bootstrap RNG scheme.

The bootstrap no longer draws per peer from the ``churn``/``attributes``/
``ip`` Python streams; it draws whole columns from the NumPy ``bootstrap``
substream (a documented draw-order break — see
``I2PPopulation._bootstrap_initial_population``).  These tests lock in the
contract that came with the break: at a fixed seed the *marginal
distributions* of every bootstrap attribute match the per-peer reference
sampler (which day-by-day arrivals still use).
"""

import math
import random

import numpy as np
import pytest

from repro.sim.bandwidth import BandwidthModel, DEFAULT_TIER_WEIGHTS
from repro.sim.churn import ChurnModel
from repro.sim.geo import default_registry
from repro.sim.ip import IpAssignmentManager
from repro.sim.population import I2PPopulation, PopulationConfig


SEED = 20180101


@pytest.fixture(scope="module")
def population():
    """A bootstrap-only population, large enough for tight tolerances."""
    return I2PPopulation(
        PopulationConfig(target_daily_population=12_000, horizon_days=30, seed=SEED)
    )


def shares(values):
    total = len(values)
    counts = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return {key: count / total for key, count in counts.items()}


class TestScheduleMarginals:
    def test_lifetime_class_shares_are_length_biased(self, population):
        classes = ChurnModel()._classes
        weights = {
            cls.name: cls.weight * (cls.min_days + cls.max_days) / 2.0
            for cls in classes
        }
        total = sum(weights.values())
        expected = {name: weight / total for name, weight in weights.items()}
        observed = shares([p.schedule.lifetime_class for p in population.peers])
        for name, share in expected.items():
            assert observed.get(name, 0.0) == pytest.approx(share, abs=0.02)

    def test_lifetime_distribution_matches_reference_sampler(self, population):
        """Batched lifetimes vs the per-peer reference, quantile by quantile."""
        classes = ChurnModel()._classes
        weights = [cls.weight * (cls.min_days + cls.max_days) / 2.0 for cls in classes]
        total = sum(weights)
        rng = random.Random(99)
        reference = []
        for _ in range(len(population.peers)):
            point = rng.random() * total
            acc = 0.0
            chosen = classes[-1]
            for cls, weight in zip(classes, weights):
                acc += weight
                if point <= acc:
                    chosen = cls
                    break
            reference.append(
                max(1, int(round(rng.uniform(chosen.min_days, chosen.max_days))))
            )
        batched = sorted(p.schedule.membership_days for p in population.peers)
        reference = sorted(reference)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            i = int(q * (len(batched) - 1))
            assert batched[i] == pytest.approx(reference[i], rel=0.15, abs=2.0)

    def test_backdating_is_uniform(self, population):
        """Elapsed lifetime at day 0 ~ U(0, lifetime-1): mean ≈ (L-1)/2."""
        ratios = [
            -p.schedule.join_day / (p.schedule.membership_days - 1)
            for p in population.peers
            if p.schedule.membership_days > 10
        ]
        assert float(np.mean(ratios)) == pytest.approx(0.5, abs=0.03)

    def test_boundary_days_always_online(self, population):
        horizon = population.config.horizon_days
        for record in population.peers[:500]:
            last = record.schedule.leave_day - 1
            if 0 <= last < horizon:
                assert record.presence[last]
            if 0 <= record.schedule.join_day < horizon:
                assert record.presence[record.schedule.join_day]

    def test_presence_rate_tracks_online_probability(self, population):
        """Interior membership days are online w.p. online_probability."""
        observed = []
        expected = []
        horizon = population.config.horizon_days
        for record in population.peers:
            start = max(0, record.schedule.join_day + 1)
            end = min(horizon, record.schedule.leave_day - 1)
            interior = end - start
            if interior < 5:
                continue
            observed.append(
                float(np.count_nonzero(record.presence[start:end])) / interior
            )
            expected.append(record.schedule.online_probability)
        assert float(np.mean(observed)) == pytest.approx(
            float(np.mean(expected)), abs=0.01
        )


class TestAttributeMarginals:
    def test_tier_shares(self, population):
        total_weight = sum(DEFAULT_TIER_WEIGHTS.values())
        observed = shares([p.tier.primary_tier for p in population.peers])
        for tier, weight in DEFAULT_TIER_WEIGHTS.items():
            assert observed.get(tier, 0.0) == pytest.approx(
                weight / total_weight, abs=0.015
            )

    def test_country_shares(self, population):
        registry = default_registry()
        total = sum(c.weight for c in registry.countries)
        observed = shares([p.country_code for p in population.peers])
        top = sorted(registry.countries, key=lambda c: -c.weight)[:5]
        for country in top:
            assert observed.get(country.code, 0.0) == pytest.approx(
                country.weight / total, abs=0.02
            )

    def test_visibility_class_shares_match_reference(self, population):
        """Batched visibility classes vs the per-peer branchy sampler."""
        registry = population.registry
        cfg = population.config
        rng = random.Random(7)
        reference = []
        codes = [p.country_code for p in population.peers]
        for code in codes:
            roll = rng.random()
            if registry.country(code).poor_press_freedom:
                boost = cfg.poor_press_freedom_hidden_boost
                hidden_cut = cfg.hidden_fraction + cfg.public_fraction * boost
                public_cut = hidden_cut + cfg.public_fraction * (1.0 - boost)
                firewalled_cut = public_cut + cfg.firewalled_fraction
                if roll < hidden_cut:
                    reference.append("hidden")
                elif roll < public_cut:
                    reference.append("public")
                elif roll < firewalled_cut:
                    reference.append("firewalled")
                else:
                    reference.append("flapping")
            else:
                public_cut = cfg.public_fraction
                firewalled_cut = public_cut + cfg.firewalled_fraction
                hidden_cut = firewalled_cut + cfg.hidden_fraction
                if roll < public_cut:
                    reference.append("public")
                elif roll < firewalled_cut:
                    reference.append("firewalled")
                elif roll < hidden_cut:
                    reference.append("hidden")
                else:
                    reference.append("flapping")
        expected = shares(reference)
        observed = shares([p.visibility_class.value for p in population.peers])
        for name, share in expected.items():
            assert observed.get(name, 0.0) == pytest.approx(share, abs=0.02)

    def test_activity_and_visibility_moments(self, population):
        activity = np.asarray([p.activity for p in population.peers])
        assert 0.25 <= activity.min()
        assert activity.max() <= 1.0
        base = np.asarray([p.base_visibility for p in population.peers])
        assert base.max() <= 1.6
        # The mixture's overall mean (before class multipliers) is ≈1.0;
        # multipliers pull it down a bit.
        assert 0.75 <= float(base.mean()) <= 1.05

    def test_ports_in_i2p_range(self, population):
        from repro.transport.ports import WELL_KNOWN_PORTS

        ports = [p.port for p in population.peers]
        assert all(9000 <= port <= 31000 for port in ports)
        assert not any(port in WELL_KNOWN_PORTS for port in ports)


class TestIpProfileMarginals:
    def test_static_and_nomadic_fractions(self, population):
        manager = population.ip_manager
        profiles = [manager.profile(p.peer_id) for p in population.peers]
        static = sum(
            1 for pr in profiles if pr.change_interval_days == float("inf")
        ) / len(profiles)
        nomadic = sum(1 for pr in profiles if pr.nomadic) / len(profiles)
        assert static == pytest.approx(IpAssignmentManager.STATIC_FRACTION, abs=0.02)
        assert nomadic == pytest.approx(IpAssignmentManager.NOMADIC_FRACTION, abs=0.02)

    def test_dynamic_interval_support(self, population):
        manager = population.ip_manager
        dynamic = [
            manager.profile(p.peer_id).change_interval_days
            for p in population.peers
            if not manager.profile(p.peer_id).nomadic
            and manager.profile(p.peer_id).change_interval_days != float("inf")
        ]
        assert set(dynamic) <= set(IpAssignmentManager.DYNAMIC_INTERVALS)

    def test_nomad_pools_plausible(self, population):
        manager = population.ip_manager
        pools = [
            manager.profile(p.peer_id).nomad_as_pool
            for p in population.peers
            if manager.profile(p.peer_id).nomadic
        ]
        assert pools
        sizes = [len(pool) for pool in pools]
        assert min(sizes) >= 2
        assert max(sizes) <= 39
        # Extreme nomads (pool > 10) are roughly half of nomadic peers.
        extreme_share = sum(1 for s in sizes if s > 10) / len(sizes)
        assert extreme_share == pytest.approx(
            IpAssignmentManager.EXTREME_NOMAD_FRACTION, abs=0.06
        )
        for pool in pools[:200]:
            assert len(set(pool)) == len(pool)


class TestDeterminism:
    def test_same_seed_same_bootstrap(self):
        config = PopulationConfig(target_daily_population=500, horizon_days=4, seed=3)
        a = I2PPopulation(config)
        b = I2PPopulation(config)
        assert [p.peer_id for p in a.peers] == [p.peer_id for p in b.peers]
        assert [p.port for p in a.peers] == [p.port for p in b.peers]
        assert np.array_equal(a.columns.presence, b.columns.presence)
        assert np.array_equal(a.columns.advertised_mask, b.columns.advertised_mask)
